"""Engine execution backends for the query service.

Two interchangeable backends answer ``(s, t, delta)`` queries for the
server; both expose the same ``await answer(...)`` coroutine returning
the raw ``(density, interval, flow_value)`` triple:

* :class:`ProcessEnginePool` — a :class:`~concurrent.futures.
  ProcessPoolExecutor` whose workers receive the shared network through
  ``initializer``/``initargs`` with an explicit ``mp_context``, the exact
  pattern :func:`repro.core.batch.answer_many` uses (every start method
  produces identical results).  The pool is **epoch-aware**: streaming
  appends bump the network epoch, and the next query transparently
  rebuilds the pool so workers never answer from a stale snapshot.  A
  :class:`BrokenProcessPool` (crashed/OOM-killed worker) is survived by
  rebuilding the pool once and resubmitting.

* :class:`InlineEngine` — a small thread pool running the solver on the
  *live* network object.  This is the default for modest deployments and
  for the differential-oracle backend: no pickling, no worker processes,
  and the server's reader/writer lock already serialises appends against
  in-flight queries.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.core.batch import answer_many
from repro.core.engine import find_bursting_flow
from repro.core.planner import answer_planned, top_k_bursts
from repro.core.query import BurstingFlowQuery
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: A raw engine answer: (density, interval, flow_value, phase_seconds).
#: The trailing phase dict ({"transform": .., "maxflow": .., "prune": ..})
#: feeds the service's per-algorithm phase metrics; consumers that only
#: need the answer unpack ``answer[:3]``.
RawAnswer = tuple[
    float, "tuple[Timestamp, Timestamp] | None", float, dict[str, float]
]

#: A raw batch answer: per-query (density, interval, flow_value) triples in
#: input order, plus the planner report dict ({} under plan="independent").
RawBatch = tuple[
    "list[tuple[float, tuple[Timestamp, Timestamp] | None, float]]",
    dict[str, object],
]

#: A raw top-k answer: (source, sink, delta, density, interval, flow_value)
#: per surviving burst, densest first.
RawTopK = "list[tuple[NodeId, NodeId, int, float, tuple[Timestamp, Timestamp], float]]"


def _solve_batch_on(
    network: TemporalFlowNetwork,
    queries: tuple[tuple[NodeId, NodeId, int], ...],
    plan: str,
) -> RawBatch:
    """Answer a batch on ``network``; shared work stays in this process.

    The planner's own process fan-out is deliberately not used here: the
    process backend already runs this inside a pool worker (which cannot
    spawn children), and the inline backend's thread pool provides the
    concurrency across independent requests instead.
    """
    batch = [BurstingFlowQuery(s, t, d) for (s, t, d) in queries]
    if plan == "shared":
        results, report = answer_planned(network, batch)
        planner: dict[str, object] = report.as_dict()
    else:
        results = answer_many(network, batch)
        planner = {}
    return (
        [(r.density, r.interval, r.flow_value) for r in results],
        planner,
    )


def _solve_topk_on(
    network: TemporalFlowNetwork,
    pairs: tuple[tuple[NodeId, NodeId], ...],
    delta: int,
    k: int,
) -> RawTopK:
    entries = top_k_bursts(network, pairs, delta, k=k)
    return [
        (e.source, e.sink, e.delta, e.density, e.interval, e.flow_value)
        for e in entries
    ]

# Per-worker state, installed by _init_service_worker in each pool
# process (initargs travel pickled for spawn/forkserver).
_WORKER_NETWORK: TemporalFlowNetwork | None = None


def _init_service_worker(network: TemporalFlowNetwork) -> None:
    """Pool initializer: install the service's network in this worker."""
    global _WORKER_NETWORK
    _WORKER_NETWORK = network
    # Build the lazy timestamp indexes once per worker instead of on the
    # first query it happens to receive.
    _ = network.timestamps


def _solve_one(
    source: NodeId,
    sink: NodeId,
    delta: int,
    algorithm: str,
    kernel: str | None,
    transform: str | None,
) -> RawAnswer:
    """Worker task: one full engine solve on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    result = find_bursting_flow(
        _WORKER_NETWORK,
        BurstingFlowQuery(source, sink, delta),
        algorithm=algorithm,
        kernel=kernel,
        transform=transform,
    )
    return (
        result.density,
        result.interval,
        result.flow_value,
        result.stats.phase_seconds(),
    )


def _solve_batch(
    queries: tuple[tuple[NodeId, NodeId, int], ...], plan: str
) -> RawBatch:
    """Worker task: one whole batch (plan-aware) on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    return _solve_batch_on(_WORKER_NETWORK, queries, plan)


def _solve_topk(
    pairs: tuple[tuple[NodeId, NodeId], ...], delta: int, k: int
) -> RawTopK:
    """Worker task: one top-k burst ranking on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    return _solve_topk_on(_WORKER_NETWORK, pairs, delta, k)


class ProcessEnginePool:
    """Epoch-aware process-pool engine backend with crash recovery.

    Args:
        network: the live network; re-shipped to workers whenever its
            epoch moves (the server guarantees the epoch is stable while
            answers are in flight via its reader/writer lock).
        processes: worker process count; ``0`` means ``os.cpu_count()``.
        mp_context: multiprocessing start method (``"fork"``,
            ``"forkserver"``, ``"spawn"``) or ``None`` for the platform
            default.
        on_restart: callback invoked whenever a broken pool is rebuilt.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        processes: int = 2,
        mp_context: str | None = None,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if processes == 0:
            processes = os.cpu_count() or 1
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._network = network
        self._processes = processes
        self._context = multiprocessing.get_context(mp_context)
        self._on_restart = on_restart
        self._pool: ProcessPoolExecutor | None = None
        self._pool_epoch = -1
        self._rebuild_lock = asyncio.Lock()
        self.restarts = 0

    # ------------------------------------------------------------------
    def _build_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._processes,
            mp_context=self._context,
            initializer=_init_service_worker,
            initargs=(self._network,),
        )

    async def _ensure_fresh(self) -> ProcessPoolExecutor:
        """The current pool, rebuilt if the network epoch moved."""
        if self._pool is not None and self._pool_epoch == self._network.epoch:
            return self._pool
        async with self._rebuild_lock:
            if self._pool is None or self._pool_epoch != self._network.epoch:
                old = self._pool
                self._pool = self._build_pool()
                self._pool_epoch = self._network.epoch
                if old is not None:
                    old.shutdown(wait=False, cancel_futures=True)
        return self._pool

    async def _run(self, fn: Callable, *task: object):
        """Submit one task to a worker; survives one pool crash."""
        pool = await self._ensure_fresh()
        try:
            return await asyncio.wrap_future(pool.submit(fn, *task))
        except BrokenProcessPool:
            # A worker died mid-solve.  Rebuild once and resubmit; a
            # second crash on the same task is systemic and propagates.
            async with self._rebuild_lock:
                if self._pool is pool:
                    self._pool = self._build_pool()
                    self._pool_epoch = self._network.epoch
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.restarts += 1
                    if self._on_restart is not None:
                        self._on_restart()
                fresh = self._pool
            return await asyncio.wrap_future(fresh.submit(fn, *task))

    async def answer(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        algorithm: str,
        kernel: str | None,
        transform: str | None = None,
    ) -> RawAnswer:
        """Solve one query on a worker; survives one pool crash."""
        return await self._run(
            _solve_one, source, sink, delta, algorithm, kernel, transform
        )

    async def answer_batch(
        self,
        queries: tuple[tuple[NodeId, NodeId, int], ...],
        plan: str,
    ) -> RawBatch:
        """Solve one whole batch on a worker (the planner shares skeletons
        and the window memo within the worker process)."""
        return await self._run(_solve_batch, tuple(queries), plan)

    async def answer_topk(
        self,
        pairs: tuple[tuple[NodeId, NodeId], ...],
        delta: int,
        k: int,
    ) -> RawTopK:
        """Rank top-k densest bursts on a worker."""
        return await self._run(_solve_topk, tuple(pairs), delta, k)

    def mark_stale(self) -> None:
        """Force a rebuild before the next answer (appends call this)."""
        self._pool_epoch = -1

    def close(self) -> None:
        """Shut the pool down."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class InlineEngine:
    """Thread-pool engine backend solving on the live network.

    The server's reader/writer lock guarantees no append mutates the
    network while answers are in flight, and forces the lazy timestamp
    indexes after each append — so concurrent solves only ever *read*.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        threads: int = 2,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self._network = network
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-service"
        )
        self.restarts = 0

    async def answer(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        algorithm: str,
        kernel: str | None,
        transform: str | None = None,
    ) -> RawAnswer:
        """Solve one query on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_inline(
                self._network, source, sink, delta, algorithm, kernel, transform
            ),
        )

    async def answer_batch(
        self,
        queries: tuple[tuple[NodeId, NodeId, int], ...],
        plan: str,
    ) -> RawBatch:
        """Solve one whole batch on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_batch_on(self._network, tuple(queries), plan),
        )

    async def answer_topk(
        self,
        pairs: tuple[tuple[NodeId, NodeId], ...],
        delta: int,
        k: int,
    ) -> RawTopK:
        """Rank top-k densest bursts on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_topk_on(self._network, tuple(pairs), delta, k),
        )

    def mark_stale(self) -> None:
        """No-op: inline solves always see the live network."""

    def close(self) -> None:
        """Shut the thread pool down."""
        self._pool.shutdown(wait=False, cancel_futures=True)


def _solve_inline(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    delta: int,
    algorithm: str,
    kernel: str | None,
    transform: str | None,
) -> RawAnswer:
    result = find_bursting_flow(
        network,
        BurstingFlowQuery(source, sink, delta),
        algorithm=algorithm,
        kernel=kernel,
        transform=transform,
    )
    return (
        result.density,
        result.interval,
        result.flow_value,
        result.stats.phase_seconds(),
    )
