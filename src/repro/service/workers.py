"""Engine execution backends for the query service.

Two interchangeable backends answer ``(s, t, delta)`` queries for the
server; both expose the same ``await answer(...)`` coroutine returning
the raw ``(density, interval, flow_value)`` triple:

* :class:`ProcessEnginePool` — a :class:`~concurrent.futures.
  ProcessPoolExecutor` with an explicit ``mp_context``.  By default the
  workers attach to a :class:`~repro.temporal.shared.SharedNetworkStore`
  (an append-only edge log in ``multiprocessing.shared_memory``): the
  pool is built **once**, streaming appends publish only the new edges
  into the log, and each worker replays the suffix at its next task —
  no per-epoch pool teardown, no re-pickling the whole network.  When
  shared memory is unavailable (or ``shared=False``) the pool falls back
  to the classic epoch-aware mode: the network travels through
  ``initializer``/``initargs`` (the exact pattern
  :func:`repro.core.batch.answer_many` uses) and the next query after an
  append transparently rebuilds the pool.  Either way a
  :class:`BrokenProcessPool` (crashed/OOM-killed worker) is survived by
  rebuilding the pool once and resubmitting.

* :class:`InlineEngine` — a small thread pool running the solver on the
  *live* network object.  This is the default for modest deployments and
  for the differential-oracle backend: no pickling, no worker processes,
  and the server's reader/writer lock already serialises appends against
  in-flight queries.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from repro.core.batch import answer_many
from repro.core.engine import find_bursting_flow
from repro.core.planner import answer_planned, top_k_bursts
from repro.core.query import BurstingFlowQuery
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork
from repro.temporal.shared import SharedNetworkReader, SharedNetworkStore

#: A raw engine answer: (density, interval, flow_value, phase_seconds).
#: The trailing phase dict ({"transform": .., "maxflow": .., "prune": ..})
#: feeds the service's per-algorithm phase metrics; consumers that only
#: need the answer unpack ``answer[:3]``.
RawAnswer = tuple[
    float, "tuple[Timestamp, Timestamp] | None", float, dict[str, float]
]

#: A raw batch answer: per-query (density, interval, flow_value) triples in
#: input order, plus the planner report dict ({} under plan="independent").
RawBatch = tuple[
    "list[tuple[float, tuple[Timestamp, Timestamp] | None, float]]",
    dict[str, object],
]

#: A raw top-k answer: (source, sink, delta, density, interval, flow_value)
#: per surviving burst, densest first.
RawTopK = "list[tuple[NodeId, NodeId, int, float, tuple[Timestamp, Timestamp], float]]"


def _solve_batch_on(
    network: TemporalFlowNetwork,
    queries: tuple[tuple[NodeId, NodeId, int], ...],
    plan: str,
) -> RawBatch:
    """Answer a batch on ``network``; shared work stays in this process.

    The planner's own process fan-out is deliberately not used here: the
    process backend already runs this inside a pool worker (which cannot
    spawn children), and the inline backend's thread pool provides the
    concurrency across independent requests instead.
    """
    batch = [BurstingFlowQuery(s, t, d) for (s, t, d) in queries]
    if plan == "shared":
        results, report = answer_planned(network, batch)
        planner: dict[str, object] = report.as_dict()
    else:
        results = answer_many(network, batch)
        planner = {}
    return (
        [(r.density, r.interval, r.flow_value) for r in results],
        planner,
    )


def _solve_topk_on(
    network: TemporalFlowNetwork,
    pairs: tuple[tuple[NodeId, NodeId], ...],
    delta: int,
    k: int,
) -> RawTopK:
    entries = top_k_bursts(network, pairs, delta, k=k)
    return [
        (e.source, e.sink, e.delta, e.density, e.interval, e.flow_value)
        for e in entries
    ]

# Per-worker state, installed by _init_service_worker (classic mode) or
# _init_shared_worker (shared-memory mode) in each pool process
# (initargs travel pickled for spawn/forkserver).
_WORKER_NETWORK: TemporalFlowNetwork | None = None
_WORKER_READER: SharedNetworkReader | None = None


def _init_service_worker(network: TemporalFlowNetwork) -> None:
    """Pool initializer: install the service's network in this worker."""
    global _WORKER_NETWORK
    _WORKER_NETWORK = network
    # Build the lazy timestamp indexes once per worker instead of on the
    # first query it happens to receive.
    _ = network.timestamps


def _init_shared_worker(store_name: str) -> None:
    """Pool initializer: attach to the service's shared edge log.

    Only the short store *name* travels through initargs; the edge
    records themselves are read straight out of shared memory.
    """
    global _WORKER_NETWORK, _WORKER_READER
    _WORKER_READER = SharedNetworkReader(store_name)
    _WORKER_NETWORK = _WORKER_READER.network
    if _WORKER_NETWORK.num_edges:
        _ = _WORKER_NETWORK.timestamps


def _catch_up() -> None:
    """Replay any log suffix published since this worker's last task.

    A no-op in classic mode (no reader) and when nothing was appended
    (two header reads).  Runs at task start, so by the server's
    reader/writer lock the owner is never publishing concurrently.
    """
    if _WORKER_READER is not None and _WORKER_READER.catch_up():
        # Appends invalidated the lazy timestamp indexes; rebuild them
        # here rather than mid-solve.
        _ = _WORKER_READER.network.timestamps


def _solve_one(
    source: NodeId,
    sink: NodeId,
    delta: int,
    algorithm: str,
    kernel: str | None,
    transform: str | None,
) -> RawAnswer:
    """Worker task: one full engine solve on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    _catch_up()
    result = find_bursting_flow(
        _WORKER_NETWORK,
        BurstingFlowQuery(source, sink, delta),
        algorithm=algorithm,
        kernel=kernel,
        transform=transform,
    )
    return (
        result.density,
        result.interval,
        result.flow_value,
        result.stats.phase_seconds(),
    )


def _solve_batch(
    queries: tuple[tuple[NodeId, NodeId, int], ...], plan: str
) -> RawBatch:
    """Worker task: one whole batch (plan-aware) on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    _catch_up()
    return _solve_batch_on(_WORKER_NETWORK, queries, plan)


def _solve_topk(
    pairs: tuple[tuple[NodeId, NodeId], ...], delta: int, k: int
) -> RawTopK:
    """Worker task: one top-k burst ranking on the installed network."""
    assert _WORKER_NETWORK is not None, "worker started outside the service"
    _catch_up()
    return _solve_topk_on(_WORKER_NETWORK, pairs, delta, k)


class ProcessEnginePool:
    """Process-pool engine backend with crash recovery.

    In the default shared-memory mode the network reaches workers as a
    :class:`~repro.temporal.shared.SharedNetworkStore` edge log: the pool
    is built once, :meth:`mark_stale` *publishes* appended edges instead
    of forcing a rebuild, and workers replay the log suffix at their next
    task.  When shared memory cannot be created (or ``shared=False``)
    the pool degrades to the classic epoch-aware mode that re-ships the
    pickled network by rebuilding the pool whenever the epoch moves.

    Args:
        network: the live network (the server guarantees the epoch is
            stable while answers are in flight via its reader/writer
            lock).
        processes: worker process count; ``0`` means ``os.cpu_count()``.
        mp_context: multiprocessing start method (``"fork"``,
            ``"forkserver"``, ``"spawn"``) or ``None`` for the platform
            default.
        on_restart: callback invoked whenever a broken pool is rebuilt.
        shared: ship the network through shared memory (default); pass
            ``False`` to force the classic rebuild-on-epoch mode.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        processes: int = 2,
        mp_context: str | None = None,
        on_restart: Callable[[], None] | None = None,
        shared: bool = True,
    ) -> None:
        if processes == 0:
            processes = os.cpu_count() or 1
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._network = network
        self._processes = processes
        self._context = multiprocessing.get_context(mp_context)
        self._on_restart = on_restart
        self._pool: ProcessPoolExecutor | None = None
        self._pool_epoch = -1
        self._rebuild_lock = asyncio.Lock()
        self.restarts = 0
        self._store: SharedNetworkStore | None = None
        if shared:
            try:
                self._store = SharedNetworkStore(network)
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                self._store = None

    # ------------------------------------------------------------------
    @property
    def shared(self) -> bool:
        """Whether workers attach to the shared-memory edge log."""
        return self._store is not None

    def _build_pool(self) -> ProcessPoolExecutor:
        if self._store is not None:
            initializer: Callable[..., None] = _init_shared_worker
            initargs: tuple = (self._store.name,)
        else:
            initializer = _init_service_worker
            initargs = (self._network,)
        return ProcessPoolExecutor(
            max_workers=self._processes,
            mp_context=self._context,
            initializer=initializer,
            initargs=initargs,
        )

    async def _ensure_fresh(self) -> ProcessPoolExecutor:
        """The current pool, rebuilt if the network epoch moved.

        In shared mode :meth:`mark_stale` keeps ``_pool_epoch`` current
        on publish, so this almost never rebuilds — only an unpublished
        mutation (epoch moved behind the store's back) forces a full
        re-snapshot of the log plus a pool rebuild.
        """
        if self._pool is not None and self._pool_epoch == self._network.epoch:
            return self._pool
        async with self._rebuild_lock:
            if self._pool is None or self._pool_epoch != self._network.epoch:
                if (
                    self._store is not None
                    and self._store.epoch != self._network.epoch
                ):
                    # The network changed in a way nobody published
                    # (mark_stale(None) or a direct mutation): the log
                    # no longer describes it, so re-snapshot from
                    # scratch under a fresh store name.
                    self._store.close()
                    self._store = SharedNetworkStore(self._network)
                old = self._pool
                self._pool = self._build_pool()
                self._pool_epoch = self._network.epoch
                if old is not None:
                    old.shutdown(wait=False, cancel_futures=True)
        return self._pool

    async def _run(self, fn: Callable, *task: object):
        """Submit one task to a worker; survives one pool crash."""
        pool = await self._ensure_fresh()
        try:
            return await asyncio.wrap_future(pool.submit(fn, *task))
        except BrokenProcessPool:
            # A worker died mid-solve.  Rebuild once and resubmit; a
            # second crash on the same task is systemic and propagates.
            async with self._rebuild_lock:
                if self._pool is pool:
                    self._pool = self._build_pool()
                    self._pool_epoch = self._network.epoch
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.restarts += 1
                    if self._on_restart is not None:
                        self._on_restart()
                fresh = self._pool
            return await asyncio.wrap_future(fresh.submit(fn, *task))

    async def answer(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        algorithm: str,
        kernel: str | None,
        transform: str | None = None,
    ) -> RawAnswer:
        """Solve one query on a worker; survives one pool crash."""
        return await self._run(
            _solve_one, source, sink, delta, algorithm, kernel, transform
        )

    async def answer_batch(
        self,
        queries: tuple[tuple[NodeId, NodeId, int], ...],
        plan: str,
    ) -> RawBatch:
        """Solve one whole batch on a worker (the planner shares skeletons
        and the window memo within the worker process)."""
        return await self._run(_solve_batch, tuple(queries), plan)

    async def answer_topk(
        self,
        pairs: tuple[tuple[NodeId, NodeId], ...],
        delta: int,
        k: int,
    ) -> RawTopK:
        """Rank top-k densest bursts on a worker."""
        return await self._run(_solve_topk, tuple(pairs), delta, k)

    def mark_stale(self, edges: "Sequence[TemporalEdge] | None" = None) -> None:
        """Tell the pool the network changed (appends call this).

        With ``edges`` (the appended records, in commit order) in shared
        mode, the edges are published into the shared log and the pool
        keeps running — workers catch up at their next task.  Without
        ``edges`` (or in classic mode) the next answer rebuilds the
        pool.  Must run while the network is quiescent (the server's
        writer lock).
        """
        if self._store is not None and edges is not None:
            self._store.publish(edges, epoch=self._network.epoch)
            self._pool_epoch = self._network.epoch
            return
        self._pool_epoch = -1

    def close(self) -> None:
        """Shut the pool down and unlink the shared segments."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._store is not None:
            self._store.close()
            self._store = None


class InlineEngine:
    """Thread-pool engine backend solving on the live network.

    The server's reader/writer lock guarantees no append mutates the
    network while answers are in flight, and forces the lazy timestamp
    indexes after each append — so concurrent solves only ever *read*.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        threads: int = 2,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self._network = network
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-service"
        )
        self.restarts = 0

    async def answer(
        self,
        source: NodeId,
        sink: NodeId,
        delta: int,
        algorithm: str,
        kernel: str | None,
        transform: str | None = None,
    ) -> RawAnswer:
        """Solve one query on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_inline(
                self._network, source, sink, delta, algorithm, kernel, transform
            ),
        )

    async def answer_batch(
        self,
        queries: tuple[tuple[NodeId, NodeId, int], ...],
        plan: str,
    ) -> RawBatch:
        """Solve one whole batch on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_batch_on(self._network, tuple(queries), plan),
        )

    async def answer_topk(
        self,
        pairs: tuple[tuple[NodeId, NodeId], ...],
        delta: int,
        k: int,
    ) -> RawTopK:
        """Rank top-k densest bursts on a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            lambda: _solve_topk_on(self._network, tuple(pairs), delta, k),
        )

    def mark_stale(self, edges: "Sequence[TemporalEdge] | None" = None) -> None:
        """No-op: inline solves always see the live network."""

    def close(self) -> None:
        """Shut the thread pool down."""
        self._pool.shutdown(wait=False, cancel_futures=True)


def _solve_inline(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    delta: int,
    algorithm: str,
    kernel: str | None,
    transform: str | None,
) -> RawAnswer:
    result = find_bursting_flow(
        network,
        BurstingFlowQuery(source, sink, delta),
        algorithm=algorithm,
        kernel=kernel,
        transform=transform,
    )
    return (
        result.density,
        result.interval,
        result.flow_value,
        result.stats.phase_seconds(),
    )
