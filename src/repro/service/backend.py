"""The differential-oracle backend that exercises the full serve path.

:func:`service_bfq` answers a query by round-tripping it through every
serving layer *in process*: the request is serialized to protocol bytes,
parsed back, admitted, missed in the cache, solved by an engine worker,
cached, re-requested (the second pass MUST hit the cache and agree), and
the reply bytes are deserialized into a
:class:`~repro.core.query.BurstingFlowResult`.  Registered as the
``"service"`` backend in :mod:`repro.oracle.runner`, it lets the fuzzer
diff serialization, caching and worker dispatch against the in-process
engines on every adversarial case.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.exceptions import ReproError
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import BurstingFlowService
from repro.temporal.network import TemporalFlowNetwork


class ServiceBackendError(ReproError):
    """The serve path produced an error or an inconsistent cache replay."""


def service_bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    algorithm: str = "bfq*",
    kernel: str | None = None,
) -> BurstingFlowResult:
    """Answer ``query`` through the full serialize→cache→worker path.

    The cold pass must miss the cache and the immediate replay must hit
    it with a byte-identical answer; any divergence raises
    :class:`ServiceBackendError` (which the differential runner records
    as a crash finding).
    """
    return asyncio.run(_roundtrip(network, query, algorithm, kernel))


async def _roundtrip(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    algorithm: str,
    kernel: str | None,
) -> BurstingFlowResult:
    service = BurstingFlowService(
        network, algorithm=algorithm, kernel=kernel, processes=None
    )
    try:
        payload = {
            "v": PROTOCOL_VERSION,
            "id": "oracle",
            "op": "query",
            "source": query.source,
            "sink": query.sink,
            "delta": query.delta,
        }
        wire = json.dumps(payload).encode("utf-8")
        cold = json.loads(await service.handle_raw(wire))
        if not cold.get("ok"):
            error = cold.get("error", {})
            raise ServiceBackendError(
                f"serve path failed: [{error.get('kind')}] {error.get('message')}"
            )
        warm = json.loads(await service.handle_raw(wire))
        if not warm.get("ok"):
            error = warm.get("error", {})
            raise ServiceBackendError(
                f"cache replay failed: [{error.get('kind')}] {error.get('message')}"
            )
        if not warm["result"]["cached"]:
            raise ServiceBackendError("cache replay did not hit the result cache")
        for field in ("density", "interval", "flow_value"):
            if cold["result"][field] != warm["result"][field]:
                raise ServiceBackendError(
                    f"cache replay changed {field}: "
                    f"{cold['result'][field]!r} -> {warm['result'][field]!r}"
                )
        result = cold["result"]
        interval = result["interval"]
        return BurstingFlowResult(
            density=result["density"],
            interval=tuple(interval) if interval is not None else None,
            flow_value=result["flow_value"],
        )
    finally:
        await service.stop()
