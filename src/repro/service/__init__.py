"""repro.service — a concurrent delta-BFlow query service.

The serving layer over :func:`repro.core.engine.find_bursting_flow`:
an asyncio server (stdlib only) that answers versioned JSON requests
over NDJSON-TCP and HTTP, with

* an **epoch-keyed LRU+TTL result cache** invalidated exactly by the
  network's mutation hooks (streaming appends bump the epoch);
* **admission control** — bounded in-flight work, deadline propagation,
  typed ``overloaded`` load shedding, worker-crash recovery;
* **metrics** — counters and latency histograms behind ``/metrics``.

Quickstart::

    from repro.service import BurstingFlowService, ServiceClient

    service = BurstingFlowService(network, processes=4)
    host, port = await service.start("127.0.0.1", 0)

    with ServiceClient(host, port) as client:
        reply = client.query("alice", "mallory", delta=5)

or from a shell: ``repro-bfq serve edges.csv --port 7461``.
"""

from repro.service.admission import AdmissionController
from repro.service.backend import ServiceBackendError, service_bfq
from repro.service.cache import ResultCache
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.metrics import (
    LatencyHistogram,
    ServiceMetrics,
    aggregate_snapshots,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    AppendReply,
    AppendRequest,
    DeadlineExceededError,
    DrainReply,
    DrainRequest,
    ErrorReply,
    MetricsReply,
    MetricsRequest,
    OverloadedError,
    PingRequest,
    PongReply,
    ProtocolError,
    QueryReply,
    QueryRequest,
    RemoteServiceError,
    StaleEpochError,
    parse_reply,
    parse_request,
)
from repro.service.server import BurstingFlowService
from repro.service.workers import InlineEngine, ProcessEnginePool

__all__ = [
    "PROTOCOL_VERSION",
    "AdmissionController",
    "AppendReply",
    "AppendRequest",
    "BurstingFlowService",
    "DeadlineExceededError",
    "DrainReply",
    "DrainRequest",
    "ErrorReply",
    "InlineEngine",
    "LatencyHistogram",
    "MetricsReply",
    "MetricsRequest",
    "OverloadedError",
    "PingRequest",
    "PongReply",
    "ProcessEnginePool",
    "ProtocolError",
    "QueryReply",
    "QueryRequest",
    "RemoteServiceError",
    "ResultCache",
    "RetryPolicy",
    "ServiceBackendError",
    "ServiceClient",
    "ServiceMetrics",
    "StaleEpochError",
    "aggregate_snapshots",
    "parse_reply",
    "parse_request",
    "service_bfq",
]
