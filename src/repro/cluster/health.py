"""Replica liveness probing with jittered-backoff retry.

The :class:`HealthMonitor` is deliberately decoupled from the
coordinator: it is given three callables — who to probe, how to probe,
and what to do on failure — so the unit tests can drive it with fakes
and a fake clock.  Probing reuses the client's
:class:`~repro.service.client.RetryPolicy` arithmetic: one transient
ping failure does not down a replica; only exhausting the policy's
jittered-backoff budget does, at which point ``on_failure`` fires
exactly once per incident and the replica leaves the routing set until
the supervisor re-joins it.

Probe *sweeps* are jittered too (±25% of the interval) so a fleet of
monitors never synchronises into ping storms.
"""

from __future__ import annotations

import asyncio
import random
from typing import Awaitable, Callable, Iterable

from repro.service.client import RetryPolicy

ProbeFn = Callable[[str], Awaitable[int]]
FailureFn = Callable[[str], Awaitable[None]]
TargetsFn = Callable[[], Iterable[str]]


class HealthMonitor:
    """Periodic ping sweeps over the live replica set.

    Args:
        targets: returns the replica ids currently worth probing.
        probe: pings one replica (returns its epoch; raises on failure).
        on_failure: invoked once when a replica exhausts its retries.
        interval: seconds between sweeps (jittered ±25%).
        policy: per-replica retry budget within one sweep.
        rng: injectable randomness (tests pin it).
        sleep: injectable async sleep (tests use a fake clock).
    """

    def __init__(
        self,
        targets: TargetsFn,
        probe: ProbeFn,
        on_failure: FailureFn,
        *,
        interval: float = 0.5,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        self._targets = targets
        self._probe = probe
        self._on_failure = on_failure
        self.interval = interval
        self.policy = policy or RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=0.5
        )
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._task: asyncio.Task | None = None
        self._stopping = False
        self.sweeps = 0
        self.failures_detected = 0

    def start(self) -> None:
        """Begin sweeping in a background task (idempotent)."""
        if self._task is None or self._task.done():
            self._stopping = False
            self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Cancel the background sweeps.

        The flag backs up the cancellation: should a probe's timeout
        scope ever absorb the CancelledError, the loop still exits at
        its next iteration instead of leaving ``stop`` waiting forever.
        """
        if self._task is not None:
            self._stopping = True
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while not self._stopping:
            await self.sweep()
            jitter = 1.0 + 0.25 * (2.0 * self._rng.random() - 1.0)
            await self._sleep(self.interval * jitter)

    async def sweep(self) -> list[str]:
        """Probe every current target once; returns the ids downed."""
        self.sweeps += 1
        downed = []
        for replica_id in list(self._targets()):
            if not await self.check(replica_id):
                downed.append(replica_id)
        return downed

    async def check(self, replica_id: str) -> bool:
        """Probe one replica through the retry budget; False = downed."""
        for attempt in range(self.policy.max_attempts):
            try:
                await self._probe(replica_id)
                return True
            except Exception:  # noqa: BLE001 - any probe failure counts
                if attempt + 1 >= self.policy.max_attempts:
                    break
                await self._sleep(self.policy.delay_for(attempt))
        self.failures_detected += 1
        await self._on_failure(replica_id)
        return False
