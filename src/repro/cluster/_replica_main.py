"""Child-process entry point for one cluster replica.

``python -m repro.cluster._replica_main`` rather than ``-m
repro.cluster.replica``: this module is *not* imported by the package
``__init__``, so runpy never finds it pre-imported (which would raise
the "found in sys.modules" RuntimeWarning on every replica boot).
"""

import sys

from repro.cluster.replica import main

if __name__ == "__main__":
    sys.exit(main())
