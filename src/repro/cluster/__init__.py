"""repro.cluster — a replicated delta-BFlow serving tier.

A :class:`ClusterCoordinator` fronts N replica
:class:`~repro.service.BurstingFlowService` instances behind one
client-facing port, speaking the same NDJSON-over-TCP + HTTP/1.1
protocol as a single service — existing clients work unchanged.  The
tier adds:

* **durable append replication** — appends hit a write-ahead
  :class:`~repro.store.AppendLog` (fsync-able) before fanning out to
  every replica; per-replica epoch acks give read-your-writes;
* **affinity routing** — consistent hash on ``(source, sink)`` with
  least-in-flight failover (at most once per surviving replica), so
  per-replica result caches shard the hot set instead of copying it;
* **self-healing** — jittered health probes, typed failover, and
  crash re-join by replaying the shared log under the append lock (a
  ``kill -9``-ed replica loses no acked appends by construction);
* **cluster-wide metrics** — per-replica snapshots plus the
  :func:`~repro.service.metrics.aggregate_snapshots` fold on
  ``GET /metrics``.

Quickstart::

    from repro.cluster import ClusterCoordinator, InlineReplica

    replicas = [InlineReplica(f"r{i}", "cluster.log") for i in range(2)]
    coordinator = ClusterCoordinator("cluster.log", replicas)
    host, port = await coordinator.start("127.0.0.1", 0)

or from a shell: ``repro-bfq cluster edges.csv --replicas 2``.
"""

from repro.cluster.backend import ClusterBackendError, cluster_bfq
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ReplicaUnavailableError,
)
from repro.cluster.health import HealthMonitor
from repro.cluster.replica import InlineReplica, ProcessReplica, ReplicaError
from repro.cluster.replication import (
    append_record,
    apply_record,
    network_edges,
    replay_network,
    seed_log,
)
from repro.cluster.router import ConsistentHashRouter, shard_key

__all__ = [
    "ClusterBackendError",
    "ClusterCoordinator",
    "ConsistentHashRouter",
    "HealthMonitor",
    "InlineReplica",
    "ProcessReplica",
    "ReplicaError",
    "ReplicaUnavailableError",
    "append_record",
    "apply_record",
    "cluster_bfq",
    "network_edges",
    "replay_network",
    "seed_log",
    "shard_key",
]
