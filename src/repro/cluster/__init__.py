"""repro.cluster — a replicated delta-BFlow serving tier.

A :class:`ClusterCoordinator` fronts N replica
:class:`~repro.service.BurstingFlowService` instances behind one
client-facing port, speaking the same NDJSON-over-TCP + HTTP/1.1
protocol as a single service — existing clients work unchanged.  The
tier adds:

* **durable append replication** — appends hit a write-ahead
  :class:`~repro.store.AppendLog` (fsync-able) before fanning out to
  every replica; per-replica epoch acks give read-your-writes;
* **affinity routing** — consistent hash on ``(source, sink)`` with
  least-in-flight failover (at most once per surviving replica), so
  per-replica result caches shard the hot set instead of copying it;
* **self-healing** — jittered health probes, typed failover, and
  crash re-join by snapshot restore + log-suffix replay under the
  append lock (a ``kill -9``-ed replica loses no acked appends by
  construction, and rejoin cost is bounded by the suffix, not history);
* **bounded recovery** — periodic checkpoints write a crash-atomic
  snapshot of the replayed state (:class:`~repro.store.SnapshotStore`)
  and compact the covered log prefix away, and a restarted coordinator
  rebuilds its committed epoch from those durable artifacts alone;
* **cluster-wide metrics** — per-replica snapshots plus the
  :func:`~repro.service.metrics.aggregate_snapshots` fold on
  ``GET /metrics``.

Quickstart::

    from repro.cluster import ClusterCoordinator, InlineReplica

    replicas = [InlineReplica(f"r{i}", "cluster.log") for i in range(2)]
    coordinator = ClusterCoordinator("cluster.log", replicas)
    host, port = await coordinator.start("127.0.0.1", 0)

or from a shell: ``repro-bfq cluster edges.csv --replicas 2``.
"""

from repro.cluster.backend import ClusterBackendError, cluster_bfq
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ReplicaUnavailableError,
)
from repro.cluster.health import HealthMonitor
from repro.cluster.replica import InlineReplica, ProcessReplica, ReplicaError
from repro.cluster.replication import (
    BootstrapResult,
    append_record,
    apply_record,
    bootstrap_network,
    default_snapshot_dir,
    network_edges,
    network_state_record,
    replay_network,
    restore_network,
    seed_log,
)
from repro.cluster.router import ConsistentHashRouter, shard_key

__all__ = [
    "BootstrapResult",
    "ClusterBackendError",
    "ClusterCoordinator",
    "ConsistentHashRouter",
    "HealthMonitor",
    "InlineReplica",
    "ProcessReplica",
    "ReplicaError",
    "ReplicaUnavailableError",
    "append_record",
    "apply_record",
    "bootstrap_network",
    "cluster_bfq",
    "default_snapshot_dir",
    "network_edges",
    "network_state_record",
    "replay_network",
    "restore_network",
    "seed_log",
    "shard_key",
]
