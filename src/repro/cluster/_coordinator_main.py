"""Child-process entry point for a whole cluster: coordinator + replicas.

``python -m repro.cluster._coordinator_main --log cluster.log --replicas 2``
boots a :class:`~repro.cluster.ClusterCoordinator` over fresh replica
handles, announces the bound client-facing port as one JSON line on
stdout::

    {"event": "listening", "host": ..., "port": ...,
     "committed_epoch": ..., "replayed_records": ..., "from_snapshot": ...}

and serves until SIGTERM/SIGINT (graceful drain) — or until ``kill -9``,
which is exactly what the coordinator-restart e2e and the CI recovery
smoke inject: the process group dies mid-stream, and a fresh coordinator
on the same log + snapshot directory must recover every committed append
from the snapshot manifest and the log suffix alone.

Like :mod:`repro.cluster._replica_main`, this lives in a ``_main``
module the package ``__init__`` never imports, so runpy does not warn.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cluster._coordinator_main",
        description="a delta-BFlow cluster (coordinator + N replicas) "
        "recovering from a shared log + snapshot directory",
    )
    parser.add_argument("--log", required=True, type=Path)
    parser.add_argument(
        "--snapshots",
        type=Path,
        default=None,
        help="snapshot directory (default: <log>.snapshots)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--replica-mode", default="inline", choices=["inline", "process"]
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="checkpoint (snapshot + compaction) after this many "
        "committed appends (default: no automatic checkpoints)",
    )
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--algorithm", default="bfq*")
    parser.add_argument("--kernel", default=None)
    parser.add_argument("--fsync", action="store_true")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.replica import InlineReplica, ProcessReplica

    shape = ProcessReplica if args.replica_mode == "process" else InlineReplica
    replicas = [
        shape(
            f"r{index}",
            args.log,
            snapshots=args.snapshots,
            cache_capacity=args.cache_capacity,
            max_pending=args.max_pending,
            algorithm=args.algorithm,
            kernel=args.kernel,
        )
        for index in range(args.replicas)
    ]
    coordinator = ClusterCoordinator(
        args.log,
        replicas,
        fsync=args.fsync,
        snapshot_dir=args.snapshots,
        snapshot_every=args.snapshot_every,
    )
    host, port = await coordinator.start(args.host, args.port)
    print(
        json.dumps(
            {
                "event": "listening",
                "host": host,
                "port": port,
                "committed_epoch": coordinator.committed_epoch,
                "replayed_records": coordinator.recovery["replayed_records"],
                "from_snapshot": coordinator.recovery["from_snapshot"],
            }
        ),
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    await coordinator.drain(timeout=10.0)
    await coordinator.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cluster._coordinator_main``."""
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
