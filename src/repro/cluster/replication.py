"""Replication log glue: the one record schema every replica replays.

The cluster's durability story is a single shared
:class:`repro.store.AppendLog`, written by exactly one process — the
coordinator — and replayed by every replica at boot.  One record per
client append::

    {"op": "append", "edges": [[u, v, tau, capacity], ...]}

**Epoch determinism** is the invariant everything above this module
leans on: a replica's network epoch is a pure function of the log
prefix it has applied, because :func:`apply_record` feeds edges through
the same :meth:`~repro.temporal.network.TemporalFlowNetwork.add_edge`
path the live service's append handler uses (one epoch bump per edge,
capacity merges included).  Two replicas that have applied the same
records therefore report byte-identical epochs, which is what lets the
coordinator use the epoch itself as the replication ack.

Partially-invalid appends stay deterministic too: like the service
handler, :func:`apply_record` applies edges in order and stops at the
first invalid one, so every replica keeps exactly the same prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.exceptions import DatasetError, ReproError
from repro.store.log import AppendLog
from repro.store.snapshot import SnapshotManifest, SnapshotStore
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: The single record op the cluster log carries.
RECORD_APPEND = "append"

EdgeTuple = tuple[NodeId, NodeId, Timestamp, float]


def append_record(edges: Sequence[EdgeTuple]) -> dict:
    """The log record for one client append of ``edges``."""
    return {
        "op": RECORD_APPEND,
        "edges": [[u, v, tau, capacity] for u, v, tau, capacity in edges],
    }


def seed_log(log: AppendLog, edges: Iterable[EdgeTuple]) -> int:
    """Write the base edge set as the log's first record; returns count.

    Called once, before any replica boots, so the seed network is part
    of the same replayable history as every later append.  An empty
    edge set writes nothing (an empty log is a valid genesis).
    """
    edges = list(edges)
    if edges:
        log.append(append_record(edges))
    log.flush()
    return len(edges)


def apply_record(network: TemporalFlowNetwork, record: dict) -> int:
    """Apply one log record to ``network``; returns edges applied.

    Mirrors the service append handler exactly: edges apply in order
    and application stops at the first invalid edge (the valid prefix
    stays in, epochs bumped per edge) — deterministic across replicas.

    Raises:
        ReproError: on a record with an unknown ``op``.
    """
    op = record.get("op")
    if op != RECORD_APPEND:
        raise ReproError(f"unknown cluster log record op {op!r}")
    applied = 0
    for u, v, tau, capacity in record.get("edges", ()):
        try:
            network.add_edge(TemporalEdge(u, v, tau, capacity))
        except ReproError:
            break
        applied += 1
    return applied


def replay_network(log: AppendLog) -> TemporalFlowNetwork:
    """Rebuild the served network by replaying the *whole* log.

    Kept for callers that hold a never-compacted log; the bounded path —
    snapshot restore + suffix replay — is :func:`bootstrap_network`.
    """
    return bootstrap_network(log, None).network


def default_snapshot_dir(log_path: str | Path) -> Path:
    """The snapshot directory convention every cluster member shares.

    Derived from the log path alone, so a coordinator and its replicas
    agree on where snapshots live without any extra coordination.
    """
    path = Path(log_path)
    return path.with_name(path.name + ".snapshots")


def network_state_record(network: TemporalFlowNetwork) -> dict:
    """The JSON snapshot payload of a fully-replayed network state.

    Carries the *merged* edge tuples plus the network's epoch: merges
    collapse the append history, so the epoch cannot be recomputed from
    the edges and must ride along (restored via
    :meth:`~repro.temporal.network.TemporalFlowNetwork.adopt_epoch`).
    """
    return {
        "edges": [[u, v, tau, capacity] for u, v, tau, capacity in network_edges(network)],
        "epoch": network.epoch,
    }


def restore_network(payload: Mapping) -> TemporalFlowNetwork:
    """Rebuild a network from a snapshot payload, epoch included."""
    network = TemporalFlowNetwork()
    for u, v, tau, capacity in payload.get("edges", ()):
        network.add_edge(TemporalEdge(u, v, tau, capacity))
    network.adopt_epoch(int(payload.get("epoch", network.epoch)))
    return network


@dataclass(frozen=True, slots=True)
class BootstrapResult:
    """What :func:`bootstrap_network` recovered, and how.

    Attributes:
        network: the recovered state, lazy indexes built, ready to serve.
        replayed_records: log records applied on top of the snapshot
            (the whole log when no snapshot was used) — the quantity
            bounded recovery keeps small.
        total_records: absolute record count of the covered history
            (snapshot-covered records + replayed suffix).
        from_snapshot: whether a snapshot seeded the state.
        manifest: the manifest of the snapshot used, or ``None``.
    """

    network: TemporalFlowNetwork
    replayed_records: int
    total_records: int
    from_snapshot: bool
    manifest: SnapshotManifest | None


def bootstrap_network(
    log: AppendLog, snapshots: SnapshotStore | None
) -> BootstrapResult:
    """Recover the served network: snapshot restore + streaming suffix replay.

    With a usable snapshot, only the log records *after* the manifest's
    ``log_offset`` are replayed — recovery cost is bounded by the suffix
    length, not total history.  Without one, the whole log streams
    through (never materialized in memory).  Either way the resulting
    epoch equals what a genesis replay of the full history would have
    produced, so epoch comparison remains the catch-up proof.

    Raises:
        DatasetError: the log was prefix-compacted but no snapshot
            covers the dropped records (unrecoverable without the
            snapshot that drove the compaction).
    """
    manifest: SnapshotManifest | None = None
    loaded = snapshots.load() if snapshots is not None else None
    if loaded is not None:
        payload, manifest = loaded
        network = restore_network(payload)
        from_offset: int | None = manifest.log_offset
        covered = manifest.records
    else:
        if log.base_offset:
            raise DatasetError(
                f"{log.path}: log was compacted to logical offset "
                f"{log.base_offset} but no snapshot covers the dropped "
                f"prefix — recovery needs the snapshot directory"
            )
        network = TemporalFlowNetwork()
        from_offset = None
        covered = 0
    replayed = 0
    for record in log.replay(from_offset=from_offset):
        apply_record(network, record)
        replayed += 1
    if network.num_edges:
        _ = network.timestamps  # build the lazy indexes before serving
    return BootstrapResult(
        network=network,
        replayed_records=replayed,
        total_records=covered + replayed,
        from_snapshot=manifest is not None,
        manifest=manifest,
    )


def network_edges(network: TemporalFlowNetwork) -> list[EdgeTuple]:
    """The (merged) edge tuples of ``network``, ready for :func:`seed_log`."""
    return [
        (edge.u, edge.v, edge.tau, edge.capacity)
        for edge in network.edges()
    ]
