"""Replication log glue: the one record schema every replica replays.

The cluster's durability story is a single shared
:class:`repro.store.AppendLog`, written by exactly one process — the
coordinator — and replayed by every replica at boot.  One record per
client append::

    {"op": "append", "edges": [[u, v, tau, capacity], ...]}

**Epoch determinism** is the invariant everything above this module
leans on: a replica's network epoch is a pure function of the log
prefix it has applied, because :func:`apply_record` feeds edges through
the same :meth:`~repro.temporal.network.TemporalFlowNetwork.add_edge`
path the live service's append handler uses (one epoch bump per edge,
capacity merges included).  Two replicas that have applied the same
records therefore report byte-identical epochs, which is what lets the
coordinator use the epoch itself as the replication ack.

Partially-invalid appends stay deterministic too: like the service
handler, :func:`apply_record` applies edges in order and stops at the
first invalid one, so every replica keeps exactly the same prefix.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.store.log import AppendLog
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: The single record op the cluster log carries.
RECORD_APPEND = "append"

EdgeTuple = tuple[NodeId, NodeId, Timestamp, float]


def append_record(edges: Sequence[EdgeTuple]) -> dict:
    """The log record for one client append of ``edges``."""
    return {
        "op": RECORD_APPEND,
        "edges": [[u, v, tau, capacity] for u, v, tau, capacity in edges],
    }


def seed_log(log: AppendLog, edges: Iterable[EdgeTuple]) -> int:
    """Write the base edge set as the log's first record; returns count.

    Called once, before any replica boots, so the seed network is part
    of the same replayable history as every later append.  An empty
    edge set writes nothing (an empty log is a valid genesis).
    """
    edges = list(edges)
    if edges:
        log.append(append_record(edges))
    log.flush()
    return len(edges)


def apply_record(network: TemporalFlowNetwork, record: dict) -> int:
    """Apply one log record to ``network``; returns edges applied.

    Mirrors the service append handler exactly: edges apply in order
    and application stops at the first invalid edge (the valid prefix
    stays in, epochs bumped per edge) — deterministic across replicas.

    Raises:
        ReproError: on a record with an unknown ``op``.
    """
    op = record.get("op")
    if op != RECORD_APPEND:
        raise ReproError(f"unknown cluster log record op {op!r}")
    applied = 0
    for u, v, tau, capacity in record.get("edges", ()):
        try:
            network.add_edge(TemporalEdge(u, v, tau, capacity))
        except ReproError:
            break
        applied += 1
    return applied


def replay_network(log: AppendLog) -> TemporalFlowNetwork:
    """Rebuild the served network from the log, oldest record first.

    This is the replica bootstrap path: the returned network's epoch
    equals the epoch of any live replica that has applied the same
    records, so a freshly restarted replica can prove it caught up by
    comparing epochs alone.
    """
    network = TemporalFlowNetwork()
    for record in log.replay():
        apply_record(network, record)
    if network.num_edges:
        _ = network.timestamps  # build the lazy indexes before serving
    return network


def network_edges(network: TemporalFlowNetwork) -> list[EdgeTuple]:
    """The (merged) edge tuples of ``network``, ready for :func:`seed_log`."""
    return [
        (edge.u, edge.v, edge.tau, edge.capacity)
        for edge in network.edges()
    ]
