"""The differential-oracle backend that exercises the full cluster path.

:func:`cluster_bfq` answers a query by standing up a real (if small)
cluster: the case's network is seeded into a temporary append log, two
inline replicas replay it and serve on real TCP ports, and the query is
routed through a :class:`~repro.cluster.coordinator.ClusterCoordinator`
— cold, then again warm (the warm pass must hit the affinity replica's
cache and agree exactly), then once more *after a replicated no-op-free
append path check*: the coordinator's committed epoch must match what
the replicas report.  Registered as the ``"cluster"`` backend in
:mod:`repro.oracle.runner`, it lets the fuzzer diff durable logging,
replication, affinity routing and the epoch fence against the
in-process engines on adversarial cases.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path

from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.exceptions import ReproError
from repro.service.protocol import PROTOCOL_VERSION
from repro.store.log import AppendLog
from repro.temporal.network import TemporalFlowNetwork

#: Replicas the oracle cluster runs (inline mode: in-process, real TCP).
ORACLE_REPLICAS = 2


class ClusterBackendError(ReproError):
    """The cluster path produced an error or an inconsistent replay."""


def cluster_bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    algorithm: str = "bfq*",
    kernel: str | None = None,
) -> BurstingFlowResult:
    """Answer ``query`` through a live 2-replica cluster.

    The cold pass and the warm (cache-hit) replay must agree exactly;
    any divergence, routing failure or epoch disagreement raises
    :class:`ClusterBackendError` (recorded by the differential runner
    as a crash finding).
    """
    return asyncio.run(_roundtrip(network, query, algorithm, kernel))


async def _roundtrip(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    algorithm: str,
    kernel: str | None,
) -> BurstingFlowResult:
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.replica import InlineReplica
    from repro.cluster.replication import network_edges, seed_log

    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        log_path = Path(tmp) / "cluster.log"
        with AppendLog(log_path) as log:
            seed_log(log, network_edges(network))
        replicas = [
            InlineReplica(
                f"r{index}", log_path, algorithm=algorithm, kernel=kernel
            )
            for index in range(ORACLE_REPLICAS)
        ]
        coordinator = ClusterCoordinator(log_path, replicas)
        await coordinator.start("127.0.0.1", 0)
        try:
            payload = {
                "v": PROTOCOL_VERSION,
                "id": "oracle",
                "op": "query",
                "source": query.source,
                "sink": query.sink,
                "delta": query.delta,
            }
            wire = json.dumps(payload).encode("utf-8")
            cold = json.loads(await coordinator.handle_raw(wire))
            if not cold.get("ok"):
                error = cold.get("error", {})
                raise ClusterBackendError(
                    f"cluster path failed: [{error.get('kind')}] "
                    f"{error.get('message')}"
                )
            warm = json.loads(await coordinator.handle_raw(wire))
            if not warm.get("ok"):
                error = warm.get("error", {})
                raise ClusterBackendError(
                    f"cluster replay failed: [{error.get('kind')}] "
                    f"{error.get('message')}"
                )
            if not warm["result"]["cached"]:
                raise ClusterBackendError(
                    "warm replay missed the affinity replica's cache"
                )
            for field in ("density", "interval", "flow_value"):
                if cold["result"][field] != warm["result"][field]:
                    raise ClusterBackendError(
                        f"cluster replay changed {field}: "
                        f"{cold['result'][field]!r} -> {warm['result'][field]!r}"
                    )
            if cold["result"]["epoch"] != coordinator.committed_epoch:
                raise ClusterBackendError(
                    f"replica answered at epoch {cold['result']['epoch']}, "
                    f"committed is {coordinator.committed_epoch}"
                )
            result = cold["result"]
            interval = result["interval"]
            return BurstingFlowResult(
                density=result["density"],
                interval=tuple(interval) if interval is not None else None,
                flow_value=result["flow_value"],
            )
        finally:
            await coordinator.stop()
