"""The cluster coordinator: one client-facing port, N replicas behind it.

:class:`ClusterCoordinator` speaks exactly the protocol a single
:class:`~repro.service.BurstingFlowService` speaks — NDJSON over TCP and
HTTP/1.1 sniffed on one port — so every existing client, the oracle
backend and ``netcat`` work against a cluster unchanged.  Behind the
port it adds the replicated serving tier:

* **Durable appends.**  An append is written to the shared
  :class:`~repro.store.AppendLog` and flushed *before* it is fanned out
  to the replicas.  Every replica applies it through the same
  ``add_edge`` path, so the ``AppendReply.epoch`` values double as
  replication acks — deterministic, comparable across replicas.  An
  append is committed once *any* replica acks it (laggards are dropped
  and catch up from the log); one that **no** replica applied is rolled
  back out of the log before the typed retryable error is returned, so
  a client retry can never duplicate it.
* **Committed epoch / read-your-writes.**  The cluster's *committed
  epoch* is the epoch every live replica has acked.  Every routed query
  is stamped with ``min_epoch = committed``, so a replica that somehow
  lags answers with a typed ``stale`` error and the router fails over —
  a client can never read a state older than the last acked append.
* **Affinity routing with typed failover.**  Queries route by
  consistent hash on ``(source, sink)`` (per-replica caches become
  additive shards), falling back least-in-flight-first, trying each
  surviving replica **at most once** per round; ``overloaded`` rounds
  back off under the shared :class:`~repro.service.RetryPolicy`.
* **Self-healing.**  A replica that fails a probe or drops a forwarded
  request is taken out of rotation and re-joined by restoring the
  latest snapshot and replaying the log suffix behind it — under the
  append lock, so its recovered state provably covers the committed
  state (epoch comparison; the log is the source of truth, so a replay
  *ahead* of the acked view advances the committed epoch rather than
  blocking the re-join) before it serves again.  A ``kill -9``-ed
  replica therefore loses no acked appends and can never serve a stale
  answer: both properties hold by construction.
* **Bounded recovery.**  The coordinator maintains a *mirror* of the
  replayed network (applied through the same code path as the
  replicas), and after every ``snapshot_every`` committed appends it
  checkpoints: write a crash-atomic snapshot of the mirror
  (:class:`~repro.store.SnapshotStore`), then compact the covered log
  prefix away (:meth:`~repro.store.AppendLog.truncate_prefix`).
  Replica rejoin and coordinator restart both become *snapshot load +
  suffix replay* — bounded by the records since the last checkpoint,
  not by total history — and a ``kill -9``-ed coordinator rebuilds its
  committed epoch from the durable artifacts alone at construction.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from statistics import median
from typing import Any, Mapping, Sequence

from repro.cluster.health import HealthMonitor
from repro.cluster.replica import InlineReplica, ProcessReplica, ReplicaError
from repro.cluster.replication import (
    append_record,
    apply_record,
    bootstrap_network,
    default_snapshot_dir,
    network_state_record,
)
from repro.cluster.router import ConsistentHashRouter
from repro.exceptions import ReproError
from repro.service.client import RetryPolicy
from repro.service.metrics import aggregate_snapshots
from repro.service.protocol import (
    ERROR_INTERNAL,
    ERROR_INVALID,
    ERROR_OVERLOADED,
    ERROR_STALE,
    ERROR_UNSUPPORTED_VERSION,
    AppendReply,
    AppendRequest,
    BatchAnswer,
    BatchReply,
    BatchRequest,
    DrainReply,
    DrainRequest,
    ErrorReply,
    MetricsReply,
    MetricsRequest,
    PatternsReply,
    PatternsRequest,
    PingRequest,
    PongReply,
    ProtocolError,
    QueryRequest,
    Reply,
    Request,
    ScanReply,
    ScanRequest,
    TopKBurst,
    TopKReply,
    TopKRequest,
    encode,
    parse_reply,
    parse_request,
    reply_payload,
    request_payload,
)
from repro.mining.pipeline import flag_entries, persist_entries
from repro.mining.prefilter import NodeIntensity, rank_candidates_for_network
from repro.mining.stats import modified_z_score
from repro.mining.store import PatternStore
from repro.service.server import (
    _http_respond,
    _http_status,
    _patterns_message_from_target,
)
from repro.store.log import AppendLog
from repro.store.snapshot import SnapshotStore

ReplicaHandle = InlineReplica | ProcessReplica


class ReplicaUnavailableError(ReproError):
    """The replica's connection dropped or could not be established."""


class _ReplicaChannel:
    """A pool of persistent NDJSON connections to one replica.

    The replica serves one request at a time per connection, so the
    coordinator keeps up to ``size`` of them and borrows one per
    forwarded request.  Connections open lazily and broken ones are
    dropped (the next borrow redials).
    """

    def __init__(
        self, host: str, port: int, *, size: int = 8, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._free: asyncio.Queue = asyncio.Queue()
        for _ in range(size):
            self._free.put_nowait(None)  # lazy-connect slots
        self._closed = False

    async def request(self, payload: Mapping[str, Any]) -> Reply:
        """Forward one message; returns the parsed (typed) reply.

        Raises:
            ReplicaUnavailableError: connect/read/write failure — the
                caller treats the replica as down.
        """
        if self._closed:
            raise ReplicaUnavailableError("channel is closed")
        connection = await self._free.get()
        broken = True
        try:
            if connection is None:
                try:
                    connection = await asyncio.open_connection(self.host, self.port)
                except OSError as exc:
                    raise ReplicaUnavailableError(
                        f"connect to {self.host}:{self.port} failed: {exc}"
                    ) from exc
            reader, writer = connection
            try:
                writer.write(encode(payload))
                await writer.drain()
                # asyncio.timeout, not wait_for: on 3.11 wait_for can
                # swallow an outside cancellation that races the reply's
                # arrival, leaving the cancelled caller (health monitor,
                # rejoin task) looping forever after stop().
                async with asyncio.timeout(self.timeout):
                    line = await reader.readline()
            except (OSError, asyncio.TimeoutError) as exc:
                raise ReplicaUnavailableError(
                    f"request to {self.host}:{self.port} failed: {exc}"
                ) from exc
            if not line:
                raise ReplicaUnavailableError(
                    f"{self.host}:{self.port} closed the connection"
                )
            broken = False
            return parse_reply(line)
        finally:
            if broken:
                if connection is not None:
                    connection[1].close()
                self._free.put_nowait(None)
            else:
                self._free.put_nowait(connection)

    async def close(self) -> None:
        """Close every pooled connection (waiting out the transports,
        so replica-side handlers see EOF before any loop teardown)."""
        self._closed = True
        while not self._free.empty():
            connection = self._free.get_nowait()
            if connection is not None:
                connection[1].close()
                try:
                    async with asyncio.timeout(1.0):
                        await connection[1].wait_closed()
                except (OSError, asyncio.TimeoutError):
                    pass


@dataclass
class _ReplicaState:
    """Everything the coordinator tracks about one replica."""

    handle: ReplicaHandle
    channel: _ReplicaChannel | None = None
    live: bool = False
    acked_epoch: int = -1
    inflight: int = 0
    rejoining: bool = False
    failures: int = 0
    restarts: int = 0


@dataclass
class _Counters:
    """Coordinator-level counters (replica metrics aggregate separately)."""

    queries: int = 0
    batches: int = 0
    topks: int = 0
    scans: int = 0
    appends: int = 0
    failovers: int = 0
    restarts: int = 0
    rejoin_failures: int = 0
    rollbacks: int = 0
    shed: int = 0
    stale_retries: int = 0
    snapshots: int = 0
    compactions: int = 0
    records_compacted: int = 0
    checkpoint_failures: int = 0
    requests: dict[str, int] = field(default_factory=dict)


class ClusterCoordinator:
    """A replicated delta-BFlow serving tier behind one port.

    Args:
        log_path: the shared append log (created if absent).  The
            coordinator is the log's only writer; replicas replay it.
        replicas: replica handles to supervise (see
            :mod:`repro.cluster.replica`); booted by :meth:`start`.
        retry: backoff policy for ``overloaded`` replica replies and
            re-join attempts (defaults to a small jittered budget).
        fsync: fsync the log on every append (durable to media, not
            just to the OS page cache).
        health_interval: seconds between liveness sweeps.
        request_timeout: per-forwarded-request ceiling, seconds.
        snapshot_dir: where durable snapshots of the replayed state
            live (default: the shared ``<log>.snapshots`` convention
            replicas derive too).
        snapshot_every: checkpoint — snapshot + log prefix compaction —
            automatically after this many committed append records
            (``None`` disables automatic checkpoints; :meth:`checkpoint`
            stays available).
        patterns_dir: directory of the cluster's durable pattern store,
            enabling the ``scan``/``patterns`` ops: the coordinator
            pre-filters candidates on its committed mirror, scatters the
            δ-BFlow confirmation across the replicas by pair affinity
            (the top-k shard machinery), and persists flagged patterns
            here.  ``None`` (default) answers those ops with a typed
            ``invalid`` error.

    Construction *recovers*: the coordinator rebuilds its committed
    state — a mirror of the replayed network, the committed epoch and
    the durable record count — from the snapshot manifest plus the log
    suffix, before any replica boots.  A ``kill -9``-ed coordinator
    therefore restarts with zero lost committed appends and without
    replaying the compacted history.
    """

    def __init__(
        self,
        log_path: str | Path,
        replicas: Sequence[ReplicaHandle],
        *,
        retry: RetryPolicy | None = None,
        fsync: bool = False,
        health_interval: float = 0.5,
        request_timeout: float = 600.0,
        snapshot_dir: str | Path | None = None,
        snapshot_every: int | None = None,
        patterns_dir: str | Path | None = None,
    ) -> None:
        if not replicas:
            raise ReproError("a cluster needs at least one replica")
        if snapshot_every is not None and snapshot_every < 1:
            raise ReproError(f"snapshot_every must be >= 1, got {snapshot_every}")
        ids = [replica.replica_id for replica in replicas]
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate replica ids: {ids!r}")
        self.log = AppendLog(log_path, fsync=fsync)
        self.snapshots = SnapshotStore(
            snapshot_dir if snapshot_dir is not None
            else default_snapshot_dir(log_path)
        )
        self.snapshot_every = snapshot_every
        # Cold-start recovery: committed epoch and state come from the
        # durable artifacts alone (snapshot manifest + log suffix), not
        # from the replicas — the log is the source of truth.
        boot = bootstrap_network(self.log, self.snapshots)
        self._mirror = boot.network
        self._records_total = boot.total_records
        self._records_since_snapshot = boot.replayed_records
        self.recovery = {
            "from_snapshot": boot.from_snapshot,
            "replayed_records": boot.replayed_records,
            "total_records": boot.total_records,
        }
        # Finish a compaction a crash interrupted after the manifest
        # became durable (idempotent; a no-op when none is pending).
        if boot.manifest is not None and boot.manifest.log_offset > self.log.base_offset:
            dropped = self.log.truncate_prefix(boot.manifest.log_offset)
            if dropped:
                self.recovery["resumed_compaction"] = dropped
        self._replicas: dict[str, _ReplicaState] = {
            replica.replica_id: _ReplicaState(handle=replica)
            for replica in replicas
        }
        self.patterns: PatternStore | None = (
            PatternStore(patterns_dir, fsync=fsync)
            if patterns_dir is not None
            else None
        )
        self.router = ConsistentHashRouter(ids)
        self.retry = retry or RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=1.0
        )
        self.request_timeout = request_timeout
        self.counters = _Counters()
        self.committed_epoch = self._mirror.epoch
        self._append_lock = asyncio.Lock()
        self._draining = False
        self._inflight = 0
        self._server: asyncio.base_events.Server | None = None
        self._rejoin_tasks: set[asyncio.Task] = set()
        self.health = HealthMonitor(
            targets=self._live_ids,
            probe=self._probe,
            on_failure=self._on_probe_failure,
            interval=health_interval,
            policy=self.retry,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Boot every replica, verify epoch agreement, bind the port.

        The committed epoch was already recovered from the durable
        snapshot + log suffix at construction; every replica boots from
        the same artifacts and must report exactly that epoch — a
        mismatch means the shared state diverged and serving would be
        unsafe.
        """
        epochs = {}
        for replica_id, state in self._replicas.items():
            address = await state.handle.start()
            state.channel = _ReplicaChannel(
                *address, timeout=self.request_timeout
            )
            pong = await state.channel.request(
                request_payload(PingRequest(id="boot"))
            )
            assert isinstance(pong, PongReply), pong
            epochs[replica_id] = pong.epoch
            state.live = True
            state.acked_epoch = pong.epoch
        diverged = {
            rid: epoch for rid, epoch in epochs.items()
            if epoch != self.committed_epoch
        }
        if diverged:
            raise ReproError(
                f"replicas replayed the shared snapshot + log to epochs "
                f"{epochs!r}, but the recovered committed epoch is "
                f"{self.committed_epoch}"
            )
        self.health.start()
        self._server = await asyncio.start_server(self._on_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have been called)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting work; wait for in-flight requests to finish."""
        self._draining = True
        deadline = time.monotonic() + timeout
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        return self._inflight == 0

    async def stop(self) -> None:
        """Drainless shutdown: close the port, replicas and the log."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.health.stop()
        for task in list(self._rejoin_tasks):
            task.cancel()
        if self._rejoin_tasks:
            await asyncio.gather(*self._rejoin_tasks, return_exceptions=True)
        self._rejoin_tasks.clear()
        for state in self._replicas.values():
            if state.channel is not None:
                await state.channel.close()
            state.live = False
        # One tick so replica-side connection handlers drain their EOFs
        # before the replicas (and possibly the loop) shut down.
        await asyncio.sleep(0.01)
        for state in self._replicas.values():
            await state.handle.terminate()
        if self.patterns is not None:
            self.patterns.close()
        self.log.close()

    async def __aenter__(self) -> "ClusterCoordinator":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Health / membership
    # ------------------------------------------------------------------
    def _live_ids(self) -> list[str]:
        return [rid for rid, state in self._replicas.items() if state.live]

    async def _probe(self, replica_id: str) -> int:
        state = self._replicas[replica_id]
        if state.channel is None:
            raise ReplicaUnavailableError(f"{replica_id} has no channel")
        pong = await state.channel.request(
            request_payload(PingRequest(id="health"))
        )
        if not isinstance(pong, PongReply):
            raise ReplicaUnavailableError(f"{replica_id} ping answered {pong!r}")
        return pong.epoch

    async def _on_probe_failure(self, replica_id: str) -> None:
        self._mark_dead(replica_id)

    def _mark_dead(self, replica_id: str) -> None:
        """Take a replica out of rotation and schedule its re-join."""
        state = self._replicas[replica_id]
        if not state.live:
            return
        state.live = False
        state.failures += 1
        if not state.rejoining:
            state.rejoining = True
            task = asyncio.ensure_future(self._rejoin(replica_id))
            self._rejoin_tasks.add(task)
            task.add_done_callback(self._rejoin_tasks.discard)

    async def _rejoin(self, replica_id: str) -> None:
        """Restart a dead replica from the log and re-admit it.

        Runs under the append lock, so the replica replays a *stable*
        log: its post-replay epoch must be at least the committed epoch,
        which is the proof it holds every acked append (an epoch *above*
        the committed one means the log carries records no replica ever
        acked — the log is the source of truth, so the committed epoch
        advances to match).  Appends stall for the duration of one
        replica boot — the documented trade-off for making "re-joined"
        mean "provably caught up".
        """
        state = self._replicas[replica_id]
        try:
            for attempt in range(self.retry.max_attempts):
                try:
                    async with self._append_lock:
                        if state.channel is not None:
                            await state.channel.close()
                        address = await state.handle.restart()
                        state.channel = _ReplicaChannel(
                            *address, timeout=self.request_timeout
                        )
                        epoch = await self._probe(replica_id)
                        if epoch < self.committed_epoch:
                            # The replay lost acked appends — the log is
                            # behind the committed state.  Never admit.
                            raise ReplicaError(
                                f"{replica_id} replayed to epoch {epoch}, "
                                f"committed is {self.committed_epoch}"
                            )
                        if epoch > self.committed_epoch:
                            # The durable log is *ahead* of every ack we
                            # ever saw (e.g. an append was logged, then
                            # all replicas dropped before acking).  The
                            # log is the source of truth and the replay
                            # is the catch-up: adopt its epoch.  We hold
                            # the append lock, so no fan-out races this.
                            self.committed_epoch = epoch
                        state.acked_epoch = epoch
                        state.live = True
                        state.restarts += 1
                        self.counters.restarts += 1
                        return
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 - retry, then give up
                    if attempt + 1 >= self.retry.max_attempts:
                        self.counters.rejoin_failures += 1
                        return
                    await asyncio.sleep(self.retry.delay_for(attempt))
        finally:
            state.rejoining = False

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def handle_request(self, request: Request) -> Reply:
        """Dispatch one parsed request (programmatic entry point)."""
        op = request.op
        self.counters.requests[op] = self.counters.requests.get(op, 0) + 1
        if (
            isinstance(
                request,
                (
                    QueryRequest,
                    BatchRequest,
                    TopKRequest,
                    AppendRequest,
                    ScanRequest,
                ),
            )
            and self._draining
        ):
            self.counters.shed += 1
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                "coordinator is draining",
                retry_after_ms=1000,
            )
        self._inflight += 1
        try:
            if isinstance(request, QueryRequest):
                self.counters.queries += 1
                return await self._route_query(request)
            if isinstance(request, BatchRequest):
                self.counters.batches += 1
                return await self._route_batch(request)
            if isinstance(request, TopKRequest):
                self.counters.topks += 1
                return await self._route_topk(request)
            if isinstance(request, ScanRequest):
                self.counters.scans += 1
                return await self._route_scan(request)
            if isinstance(request, PatternsRequest):
                return self._handle_patterns(request)
            if isinstance(request, AppendRequest):
                self.counters.appends += 1
                return await self._replicate_append(request)
            if isinstance(request, MetricsRequest):
                return MetricsReply(id=request.id, snapshot=await self.snapshot())
            if isinstance(request, PingRequest):
                return PongReply(id=request.id, epoch=self.committed_epoch)
            if isinstance(request, DrainRequest):
                self._draining = True
                return DrainReply(
                    id=request.id, draining=True, inflight=self._inflight - 1
                )
            return ErrorReply(  # pragma: no cover - parse_request is exhaustive
                request.id, ERROR_INTERNAL, "unknown request type"
            )
        finally:
            self._inflight -= 1

    async def handle_raw(self, line: bytes | str) -> bytes:
        """Full serve path for one wire message: parse → handle → encode."""
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            return encode(reply_payload(ErrorReply("", exc.kind, str(exc))))
        reply = await self.handle_request(request)
        return encode(reply_payload(reply))

    # ------------------------------------------------------------------
    # Queries: affinity route, failover at most once per replica
    # ------------------------------------------------------------------
    def _stale_fence_reply(self, request_id: str, fence: int) -> ErrorReply:
        return ErrorReply(
            request_id,
            ERROR_STALE,
            f"cluster committed epoch {self.committed_epoch} is behind "
            f"required min_epoch {fence}",
            retry_after_ms=25,
            epoch=self.committed_epoch,
        )

    async def _forward_keyed(
        self, payload: Mapping[str, Any], source: Any, sink: Any, fence: int
    ) -> Reply | None:
        """Route one encoded request to the ``(source, sink)`` shard.

        Walks the affinity/failover order, trying each surviving replica
        at most once per round; ``overloaded``/``stale`` rounds back off
        under the retry policy.  Returns the reply — possibly a typed
        error that is not failover-able (invalid / timeout / internal:
        every replica would answer the same way) or the last retryable
        error after the budget — or ``None`` when no replica was
        available at all (the caller sheds).
        """
        last_error: ErrorReply | None = None
        for round_index in range(self.retry.max_attempts):
            eligible = [
                rid
                for rid, state in self._replicas.items()
                if state.live and state.acked_epoch >= fence
            ]
            order = self.router.order(
                source,
                sink,
                eligible,
                {rid: self._replicas[rid].inflight for rid in eligible},
            )
            for position, replica_id in enumerate(order):
                state = self._replicas[replica_id]
                state.inflight += 1
                try:
                    reply = await state.channel.request(payload)
                except ReplicaUnavailableError:
                    self.counters.failovers += 1
                    self._mark_dead(replica_id)
                    continue
                finally:
                    state.inflight -= 1
                if not isinstance(reply, ErrorReply):
                    if position > 0:
                        self.counters.failovers += 1
                    return reply
                if reply.kind == ERROR_STALE:
                    # Paranoia path: the eligibility filter said this
                    # replica was caught up.  Resync our view, fail over.
                    state.acked_epoch = reply.epoch if reply.epoch is not None else -1
                    self.counters.stale_retries += 1
                    last_error = reply
                    continue
                if reply.kind == ERROR_OVERLOADED:
                    # Every replica gets one chance this round; if all
                    # are saturated we back off below and try again.
                    last_error = reply
                    continue
                # invalid / timeout / internal are not failover-able:
                # every replica would answer the same way.
                return reply
            if round_index + 1 < self.retry.max_attempts:
                hint = (
                    last_error.retry_after_ms
                    if last_error is not None
                    else None
                )
                await asyncio.sleep(self.retry.delay_for(round_index, hint))
        return last_error

    async def _route_query(self, request: QueryRequest) -> Reply:
        fence = max(self.committed_epoch, request.min_epoch or 0)
        if fence > self.committed_epoch:
            # The client demands a state no replica has acked yet.
            return self._stale_fence_reply(request.id, fence)
        forwarded = replace(request, min_epoch=fence)
        reply = await self._forward_keyed(
            request_payload(forwarded), request.source, request.sink, fence
        )
        if reply is None:
            self.counters.shed += 1
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                "no live replica available",
                retry_after_ms=200,
            )
        if isinstance(reply, ErrorReply):
            return replace(reply, id=request.id)
        return reply

    # ------------------------------------------------------------------
    # Batches / top-k: whole (source, sink) groups go to the shard owner
    # ------------------------------------------------------------------
    async def _route_batch(self, request: BatchRequest) -> Reply:
        """Split a batch by ``(source, sink)`` and route each group whole.

        The replica owning a pair's shard holds (or will compile and
        cache) that pair's :class:`~repro.core.skeleton.WindowSkeleton`
        and its planner cache entries, so sending the *entire* group
        there — instead of scattering its queries — is what keeps the
        planner's amortization intact across the cluster: one skeleton
        per (pair, replica), never one per query.  Groups solve
        concurrently on their distinct owners.
        """
        started = time.perf_counter()
        fence = max(self.committed_epoch, request.min_epoch or 0)
        if fence > self.committed_epoch:
            return self._stale_fence_reply(request.id, fence)
        groups: dict[tuple[Any, Any], list[int]] = {}
        for index, (source, sink, _delta) in enumerate(request.queries):
            groups.setdefault((source, sink), []).append(index)

        async def solve_group(key: tuple[Any, Any], indices: list[int]) -> Reply | None:
            source, sink = key
            sub = BatchRequest(
                id=f"{request.id}.g{indices[0]}",
                queries=tuple(request.queries[i] for i in indices),
                plan=request.plan,
                timeout=request.timeout,
                min_epoch=fence,
            )
            return await self._forward_keyed(
                request_payload(sub), source, sink, fence
            )

        replies = await asyncio.gather(
            *(solve_group(key, indices) for key, indices in groups.items())
        )
        results: list[BatchAnswer | None] = [None] * len(request.queries)
        planner: dict[str, Any] = {}
        epoch: int | None = None
        for (key, indices), reply in zip(groups.items(), replies):
            if reply is None:
                self.counters.shed += 1
                return ErrorReply(
                    request.id,
                    ERROR_OVERLOADED,
                    f"no live replica available for group {key!r}",
                    retry_after_ms=200,
                )
            if isinstance(reply, ErrorReply):
                return replace(reply, id=request.id)
            assert isinstance(reply, BatchReply), reply
            epoch = reply.epoch if epoch is None else min(epoch, reply.epoch)
            for position, index in enumerate(indices):
                results[index] = reply.results[position]
            for name, value in reply.planner.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    planner[name] = planner.get(name, 0) + value
        if "windows_total" in planner:
            planner["amortization"] = planner["windows_total"] / max(
                1, planner.get("windows_solved", 0)
            )
        planner["groups_routed"] = len(groups)
        return BatchReply(
            id=request.id,
            results=tuple(results),  # type: ignore[arg-type]
            epoch=epoch if epoch is not None else self.committed_epoch,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            planner=planner,
        )

    async def _route_topk(self, request: TopKRequest) -> Reply:
        """Scatter a top-k request by shard owner; merge at the coordinator.

        Pairs are grouped by the replica whose shard owns them, each
        owner ranks its own pairs (its local top-k), and the coordinator
        merges with the planner's exact canonical order — density
        descending, then earlier start, shorter interval, and first
        appearance in the request's pair list — so the routed answer is
        byte-identical to a single node ranking every pair.
        """
        started = time.perf_counter()
        fence = max(self.committed_epoch, request.min_epoch or 0)
        if fence > self.committed_epoch:
            return self._stale_fence_reply(request.id, fence)
        positions: dict[tuple[Any, Any], int] = {}
        for pair in request.pairs:
            positions.setdefault(tuple(pair), len(positions))
        eligible = [
            rid
            for rid, state in self._replicas.items()
            if state.live and state.acked_epoch >= fence
        ]
        by_owner: dict[str | None, list[tuple[Any, Any]]] = {}
        for pair in positions:
            owner = self.router.affinity(pair[0], pair[1], eligible)
            by_owner.setdefault(owner, []).append(pair)
        if None in by_owner:
            self.counters.shed += 1
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                "no live replica available",
                retry_after_ms=200,
            )

        async def solve_shard(pairs: list[tuple[Any, Any]]) -> Reply | None:
            sub = TopKRequest(
                id=f"{request.id}.s{positions[pairs[0]]}",
                pairs=tuple(pairs),
                delta=request.delta,
                k=request.k,
                timeout=request.timeout,
                min_epoch=fence,
            )
            # Keyed by the shard's first pair: its affinity IS this
            # owner, and failover falls through the same ring walk.
            return await self._forward_keyed(
                request_payload(sub), pairs[0][0], pairs[0][1], fence
            )

        shards = list(by_owner.values())
        replies = await asyncio.gather(*(solve_shard(pairs) for pairs in shards))
        merged: list[TopKBurst] = []
        cached = True
        epoch: int | None = None
        for pairs, reply in zip(shards, replies):
            if reply is None:
                self.counters.shed += 1
                return ErrorReply(
                    request.id,
                    ERROR_OVERLOADED,
                    f"no live replica available for pairs {pairs!r}",
                    retry_after_ms=200,
                )
            if isinstance(reply, ErrorReply):
                return replace(reply, id=request.id)
            assert isinstance(reply, TopKReply), reply
            merged.extend(reply.entries)
            cached = cached and reply.cached
            epoch = reply.epoch if epoch is None else min(epoch, reply.epoch)
        merged.sort(
            key=lambda entry: (
                -entry.density,
                entry.interval[0],
                entry.interval[1] - entry.interval[0],
                positions[(entry.source, entry.sink)],
            )
        )
        return TopKReply(
            id=request.id,
            entries=tuple(merged[: request.k]),
            epoch=epoch if epoch is not None else self.committed_epoch,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            cached=cached,
        )

    # ------------------------------------------------------------------
    # Mining: pre-filter on the mirror, confirm across shards, persist
    # ------------------------------------------------------------------
    async def _route_scan(self, request: ScanRequest) -> Reply:
        """One cluster-wide funnel pass over the committed network.

        Candidates are ranked on the coordinator's committed mirror
        (the same streaming statistics a standalone pipeline keeps), the
        δ-BFlow confirmation is scattered across the replicas grouped by
        the shard that owns each pair — exactly the top-k routing, so
        per-replica caches and failover apply — and flagged patterns are
        persisted to the coordinator's durable pattern store.
        """
        started = time.perf_counter()
        if self.patterns is None:
            return ErrorReply(
                request.id,
                ERROR_INVALID,
                "mining is not enabled on this coordinator "
                "(start it with patterns_dir)",
            )
        fence = max(self.committed_epoch, request.min_epoch or 0)
        if fence > self.committed_epoch:
            return self._stale_fence_reply(request.id, fence)
        top = request.top if request.top is not None else 8
        min_volume = request.min_volume or 0.0
        intensity_index: dict[Any, NodeIntensity] = {}
        funnel: dict[str, Any]
        if request.pairs is not None:
            pairs = [
                (source, sink)
                for source, sink in request.pairs
                if source != sink
                and source in self._mirror
                and sink in self._mirror
            ]
            nodes_scored = 0
            exhaustive = len(pairs)
        else:
            try:
                candidates = rank_candidates_for_network(
                    self._mirror,
                    window=request.delta,
                    top_sources=top,
                    top_sinks=top,
                    min_volume=min_volume,
                )
            except ReproError as exc:
                return ErrorReply(request.id, ERROR_INVALID, str(exc))
            pairs = [candidate.pair for candidate in candidates]
            for candidate in candidates:
                intensity_index.setdefault(
                    candidate.source, candidate.source_intensity
                )
                intensity_index.setdefault(
                    candidate.sink, candidate.sink_intensity
                )
            nodes_scored = self._mirror.num_nodes
            exhaustive = max(
                self._mirror.num_nodes * (self._mirror.num_nodes - 1), 0
            )
        funnel = {
            "nodes_scored": nodes_scored,
            "exhaustive_pairs": exhaustive,
            "candidates": len(pairs),
            "solves": len(pairs),
            "confirmed": 0,
            "flagged": 0,
            "amortization": (exhaustive / len(pairs)) if pairs else 1.0,
        }
        if not pairs:
            return ScanReply(
                id=request.id,
                new_ids=(),
                deduped=0,
                funnel=funnel,
                epoch=self.committed_epoch,
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
            )
        # Confirm by scattering a k=len(pairs) top-k through the shard
        # owners — the routed entries are byte-identical to a single
        # node solving every pair (the _route_topk contract).
        confirm = await self._route_topk(
            TopKRequest(
                id=f"{request.id}.confirm",
                pairs=tuple(pairs),
                delta=request.delta,
                k=len(pairs),
                timeout=request.timeout,
                min_epoch=fence,
            )
        )
        if isinstance(confirm, ErrorReply):
            return replace(confirm, id=request.id)
        assert isinstance(confirm, TopKReply), confirm
        entries = list(confirm.entries)
        funnel["confirmed"] = len(entries)
        horizon = (
            self._mirror.t_max - self._mirror.t_min
            if self._mirror.num_edges
            else 0
        )
        if request.persist == "flagged":
            selected = flag_entries(entries, horizon=horizon)
        else:
            positives = [e for e in entries if e.density > 0]
            densities = [e.density for e in positives]
            mid = median(densities) if densities else 0.0
            mad = (
                median(abs(d - mid) for d in densities) if densities else 0.0
            )
            selected = [
                (entry, modified_z_score(entry.density, mid, mad))
                for entry in positives
            ]
        funnel["flagged"] = len(selected)
        records, new_ids, deduped = persist_entries(
            self.patterns,
            self._mirror,
            selected,
            epoch=self.committed_epoch,
            intensities=intensity_index,
        )
        del records  # dict replies carry ids; full rows serve via patterns
        return ScanReply(
            id=request.id,
            new_ids=tuple(new_ids),
            deduped=deduped,
            funnel=funnel,
            epoch=self.committed_epoch,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    def _handle_patterns(self, request: PatternsRequest) -> Reply:
        if self.patterns is None:
            return ErrorReply(
                request.id,
                ERROR_INVALID,
                "mining is not enabled on this coordinator "
                "(start it with patterns_dir)",
            )
        try:
            records = self.patterns.query(
                source=request.source,
                sink=request.sink,
                since=request.since,
                until=request.until,
                min_density=request.min_density,
                limit=request.limit,
            )
        except ReproError as exc:
            return ErrorReply(request.id, ERROR_INVALID, str(exc))
        return PatternsReply(
            id=request.id,
            patterns=tuple(record.as_dict() for record in records),
        )

    # ------------------------------------------------------------------
    # Appends: log first (durability), then fan out (replication)
    # ------------------------------------------------------------------
    async def _replicate_append(self, request: AppendRequest) -> Reply:
        async with self._append_lock:
            # Write-ahead: the append is durable before any replica
            # sees it, so a replica crash mid-fan-out can never lose an
            # *acked* append (the re-join replay picks it up from the
            # log).  If no replica ends up applying any of it, the
            # record is rolled back below, so a client retry of the
            # failed append cannot duplicate its edges.
            rollback_offset = self.log.tail_offset()
            record = append_record(request.edges)
            self.log.append(record)
            self.log.flush()
            payload = request_payload(request)
            live = self._live_ids()
            outcomes = await asyncio.gather(
                *(self._append_to(rid, payload) for rid in live)
            )
            acked: dict[str, int] = {}
            success: AppendReply | None = None
            rejected: ErrorReply | None = None
            transient: ErrorReply | None = None
            errored: list[str] = []
            for replica_id, reply in zip(live, outcomes):
                if reply is None:
                    self._mark_dead(replica_id)
                elif isinstance(reply, AppendReply):
                    acked[replica_id] = reply.epoch
                    success = reply
                elif isinstance(reply, ErrorReply):
                    errored.append(replica_id)
                    if reply.kind in (ERROR_INVALID, ERROR_UNSUPPORTED_VERSION):
                        # Deterministic rejection: the replica applied
                        # the valid prefix and stopped at the bad edge.
                        rejected = reply
                    else:
                        # overloaded / internal — non-deterministic and
                        # per-replica; this replica applied nothing.
                        transient = reply
            if success is not None:
                # Committed: at least one replica applied the append,
                # and the record is durable — the client must see
                # success even if other replicas errored.  A replica
                # that answered a typed error instead of an ack missed
                # a committed append: out of rotation until the log
                # replay catches it up.
                for replica_id in errored:
                    self._mark_dead(replica_id)
                committed = self._apply_committed(record, acked)
                return AppendReply(
                    id=request.id,
                    appended=success.appended,
                    epoch=committed,
                    invalidated=success.invalidated,
                )
            if rejected is not None:
                # Every answering replica rejected deterministically
                # and kept the same valid prefix (epochs bumped per
                # applied edge), so the record stays — replay re-applies
                # exactly that prefix.  Ping for the post-prefix epoch.
                for replica_id in errored:
                    try:
                        acked[replica_id] = await self._probe(replica_id)
                    except ReplicaUnavailableError:
                        self._mark_dead(replica_id)
                if acked:
                    committed = self._apply_committed(record, acked)
                    return replace(rejected, id=request.id, epoch=committed)
            # No replica applied any of it (every fan-out dropped, or
            # every replica shed it).  Take the record back out of the
            # log: an append that was never acked must not replicate
            # later via replay, or the client's retry would double it.
            self.log.truncate_to(rollback_offset)
            self.counters.rollbacks += 1
            if transient is not None:
                return replace(transient, id=request.id)
            return ErrorReply(
                request.id,
                ERROR_OVERLOADED,
                "append applied by no live replica; rolled back — "
                "safe to retry",
                retry_after_ms=200,
            )

    def _apply_committed(self, record: Mapping[str, Any], acked: dict[str, int]) -> int:
        """A logged append record is staying: fold it into the mirror,
        advance the committed epoch, and checkpoint when due.

        The mirror applies the record through the exact replica code
        path (:func:`apply_record`), so its post-apply epoch *is* the
        committed epoch — a replica whose ack diverges from it (should
        be impossible — epochs are a pure function of the applied log
        prefix) is dropped so the log replay restores determinism.
        Runs under the append lock.  Returns the new committed epoch.
        """
        apply_record(self._mirror, record)
        self._records_total += 1
        self._records_since_snapshot += 1
        committed = self._mirror.epoch
        for replica_id, epoch in acked.items():
            if epoch != committed:
                self._mark_dead(replica_id)
            else:
                self._replicas[replica_id].acked_epoch = epoch
        self.committed_epoch = committed
        if (
            self.snapshot_every is not None
            and self._records_since_snapshot >= self.snapshot_every
        ):
            try:
                self._checkpoint_locked()
            except Exception:  # noqa: BLE001 - the append itself committed;
                # a failed checkpoint must not turn it into an error reply.
                self.counters.checkpoint_failures += 1
        return committed

    async def checkpoint(self) -> dict[str, Any]:
        """Snapshot the committed state and compact the covered log prefix.

        Runs under the append lock, so the snapshot is a consistent
        point-in-time view.  Returns ``{"records", "epoch",
        "log_offset", "compacted_records"}`` describing the checkpoint.
        """
        async with self._append_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict[str, Any]:
        """The checkpoint sequence — every step crash-atomic, ordered so
        any interleaving recovers (see :mod:`repro.store.snapshot`):
        durable snapshot payload, durable manifest, then log prefix
        compaction.  A crash between manifest and compaction is finished
        at the next coordinator construction."""
        offset = self.log.tail_offset()
        manifest = self.snapshots.save(
            network_state_record(self._mirror),
            log_offset=offset,
            records=self._records_total,
            epoch=self._mirror.epoch,
        )
        self.counters.snapshots += 1
        dropped = self.log.truncate_prefix(offset)
        self.counters.compactions += 1
        self.counters.records_compacted += dropped
        self._records_since_snapshot = 0
        return {
            "records": manifest.records,
            "epoch": manifest.epoch,
            "log_offset": manifest.log_offset,
            "compacted_records": dropped,
        }

    async def _append_to(
        self, replica_id: str, payload: Mapping[str, Any]
    ) -> Reply | None:
        state = self._replicas[replica_id]
        try:
            return await state.channel.request(payload)
        except ReplicaUnavailableError:
            return None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    async def snapshot(self) -> dict[str, Any]:
        """Cluster-wide metrics: per-replica snapshots + the aggregate."""
        per_replica: dict[str, Any] = {}
        for replica_id in self._live_ids():
            state = self._replicas[replica_id]
            try:
                reply = await state.channel.request(
                    request_payload(MetricsRequest(id="agg"))
                )
            except ReplicaUnavailableError:
                self._mark_dead(replica_id)
                continue
            if isinstance(reply, MetricsReply):
                per_replica[replica_id] = dict(reply.snapshot)
        return {
            "coordinator": {
                "committed_epoch": self.committed_epoch,
                "draining": self._draining,
                "inflight": self._inflight,
                "counters": {
                    "queries": self.counters.queries,
                    "batches": self.counters.batches,
                    "topks": self.counters.topks,
                    "scans": self.counters.scans,
                    "appends": self.counters.appends,
                    "failovers": self.counters.failovers,
                    "restarts": self.counters.restarts,
                    "rejoin_failures": self.counters.rejoin_failures,
                    "rollbacks": self.counters.rollbacks,
                    "stale_retries": self.counters.stale_retries,
                    "shed": self.counters.shed,
                    "snapshots": self.counters.snapshots,
                    "compactions": self.counters.compactions,
                    "records_compacted": self.counters.records_compacted,
                    "checkpoint_failures": self.counters.checkpoint_failures,
                    "requests": dict(sorted(self.counters.requests.items())),
                },
                "recovery": dict(self.recovery),
                "mining": (
                    {"patterns": len(self.patterns)}
                    if self.patterns is not None
                    else None
                ),
                "durability": {
                    "records_total": self._records_total,
                    "records_since_snapshot": self._records_since_snapshot,
                    "log_base_offset": self.log.base_offset,
                    "log_base_records": self.log.base_records,
                    "snapshot_every": self.snapshot_every,
                },
                "replicas": {
                    replica_id: {
                        "live": state.live,
                        "acked_epoch": state.acked_epoch,
                        "inflight": state.inflight,
                        "failures": state.failures,
                        "restarts": state.restarts,
                        "mode": state.handle.mode,
                    }
                    for replica_id, state in sorted(self._replicas.items())
                },
            },
            "replicas": per_replica,
            "aggregate": aggregate_snapshots(per_replica),
        }

    def health_payload(self) -> dict[str, Any]:
        """The ``/healthz`` body: live set, committed epoch, drain state."""
        live = self._live_ids()
        return {
            "ok": bool(live) and not self._draining,
            "committed_epoch": self.committed_epoch,
            "draining": self._draining,
            "replicas": {
                replica_id: state.live
                for replica_id, state in sorted(self._replicas.items())
            },
        }

    # ------------------------------------------------------------------
    # TCP / HTTP front end (same sniffing as the single service)
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            head = first.split(b" ", 1)[0]
            if head in (b"GET", b"POST", b"HEAD", b"PUT", b"DELETE"):
                await self._serve_http(first, reader, writer)
                return
            line = first
            while line:
                if line.strip():
                    writer.write(await self.handle_raw(line))
                    await writer.drain()
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                pass

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            _http_respond(writer, 400, {"error": "malformed request line"})
            await writer.drain()
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    _http_respond(writer, 400, {"error": "bad Content-Length"})
                    await writer.drain()
                    return
        body = await reader.readexactly(content_length) if content_length else b""

        if method == "GET" and target in ("/metrics", "/metrics/"):
            _http_respond(writer, 200, await self.snapshot())
        elif method == "GET" and target in ("/healthz", "/healthz/"):
            health = self.health_payload()
            _http_respond(writer, 200 if health["ok"] else 503, health)
        elif method == "POST" and target in ("/drain", "/drain/"):
            self._draining = True
            _http_respond(
                writer, 200, {"draining": True, "inflight": self._inflight}
            )
        elif method == "GET" and (
            target in ("/patterns", "/patterns/")
            or target.startswith("/patterns?")
        ):
            message = _patterns_message_from_target(target)
            payload = json.loads(await self.handle_raw(encode(message)))
            status = 200 if payload.get("ok") else _http_status(payload)
            _http_respond(writer, status, payload)
        elif method == "POST" and target in (
            "/query", "/append", "/batch", "/topk", "/scan", "/patterns",
            "/query/", "/append/", "/batch/", "/topk/", "/scan/", "/patterns/",
        ):
            payload = json.loads(await self.handle_raw(body))
            status = 200 if payload.get("ok") else _http_status(payload)
            _http_respond(writer, status, payload)
        else:
            _http_respond(writer, 404, {"error": f"no route {method} {target}"})
        await writer.drain()
