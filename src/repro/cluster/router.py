"""Query routing: consistent-hash affinity with least-in-flight fallback.

Every query carries a natural shard key — its ``(source, sink)`` pair —
and routing the same pair to the same replica is what makes the
replicas' epoch-keyed result caches *additive*: N replicas hold N
disjoint hot sets instead of N copies of one.  The router therefore
places replicas on a consistent-hash ring (many virtual points per
replica, so load stays balanced and a dead replica's keys spread over
the survivors instead of dog-piling one), and answers two questions:

* :meth:`ConsistentHashRouter.affinity` — which eligible replica owns
  this key right now;
* :meth:`ConsistentHashRouter.order` — the full failover order for a
  query: the affinity owner first, every other eligible replica after
  it sorted by in-flight load (ties broken by id for determinism).

The coordinator walks that order **at most once per replica** when
forwarding a query, which bounds failover work per request by the
cluster size.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping, Sequence

from repro.temporal.edge import NodeId

#: Virtual ring points per replica (smooths the hash distribution).
VNODES = 64


def _point(data: str) -> int:
    return int.from_bytes(
        hashlib.sha1(data.encode("utf-8")).digest()[:8], "big"
    )


def shard_key(source: NodeId, sink: NodeId) -> str:
    """The routing key of a query — its ``(source, sink)`` pair."""
    return f"{source!r}\x00{sink!r}"


class ConsistentHashRouter:
    """A consistent-hash ring over a fixed replica id set.

    The ring is built once per cluster membership; *eligibility* (live,
    caught up to the epoch fence) is passed per call, so a dead replica
    needs no ring rebuild — lookups simply walk past its points.
    """

    def __init__(
        self, replica_ids: Iterable[str], *, vnodes: int = VNODES
    ) -> None:
        self.replica_ids = sorted(set(replica_ids))
        if not self.replica_ids:
            raise ValueError("a router needs at least one replica id")
        ring = []
        for replica_id in self.replica_ids:
            for vnode in range(vnodes):
                ring.append((_point(f"{replica_id}#{vnode}"), replica_id))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [owner for _, owner in ring]

    def affinity(
        self, source: NodeId, sink: NodeId, eligible: Iterable[str]
    ) -> str | None:
        """The eligible replica owning ``(source, sink)``, or None.

        Walks the ring clockwise from the key's hash to the first point
        owned by an eligible replica — so when the true owner is out,
        ownership falls to the next replica on the ring, deterministic
        for as long as the outage lasts.
        """
        allowed = set(eligible)
        if not allowed:
            return None
        start = bisect.bisect_left(self._points, _point(shard_key(source, sink)))
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner in allowed:
                return owner
        return None

    def order(
        self,
        source: NodeId,
        sink: NodeId,
        eligible: Iterable[str],
        inflight: Mapping[str, int] | None = None,
    ) -> Sequence[str]:
        """Failover order: affinity owner, then least-in-flight first."""
        allowed = sorted(set(eligible))
        owner = self.affinity(source, sink, allowed)
        if owner is None:
            return []
        inflight = inflight or {}
        rest = sorted(
            (replica_id for replica_id in allowed if replica_id != owner),
            key=lambda replica_id: (inflight.get(replica_id, 0), replica_id),
        )
        return [owner, *rest]
