"""Replica supervision: boot, restart and (for tests) kill replicas.

Two interchangeable replica shapes sit behind one tiny lifecycle
interface (``start`` / ``restart`` / ``terminate`` / ``kill``):

* :class:`InlineReplica` — a :class:`~repro.service.BurstingFlowService`
  living in the coordinator's own event loop, bound to a real ephemeral
  TCP port.  Zero boot cost; what the differential-oracle ``cluster``
  backend and the fast tests use.
* :class:`ProcessReplica` — ``python -m repro.cluster.replica`` as a
  child process.  The real deployment shape: it can be ``kill -9``-ed
  mid-stream (the failover e2e does exactly that), drains on SIGTERM,
  and announces its bound port as one JSON line on stdout::

      {"event": "listening", "host": ..., "port": ..., "replica": ...,
       "epoch": ...}

Either way a replica boots the same way: restore the latest durable
snapshot (when one exists) and stream-replay only the log suffix behind
it (:func:`repro.cluster.replication.bootstrap_network`) into a fresh
network, then serve it.  A restarted replica therefore *cannot* lose
acked appends — they are in the snapshot or the suffix it replays — its
post-boot epoch proves to the coordinator that it caught up, and the
work it does to rejoin is bounded by the suffix length, not by total
history.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError
from repro.service.server import BurstingFlowService
from repro.store.log import AppendLog


class ReplicaError(ReproError):
    """A replica failed to boot or announce itself."""


class InlineReplica:
    """An in-process replica service on a real TCP port.

    Args:
        replica_id: stable name (routing hashes it; metrics report it).
        log_path: the shared cluster log to replay at every (re)start.
        snapshots: snapshot directory for bounded rejoin (default: the
            shared :func:`~repro.cluster.replication.default_snapshot_dir`
            convention next to the log).
        service_kwargs: forwarded to :class:`BurstingFlowService`
            (cache sizing, admission bounds, default algorithm, ...).
    """

    mode = "inline"

    def __init__(
        self,
        replica_id: str,
        log_path: str | Path,
        *,
        snapshots: str | Path | None = None,
        **service_kwargs: Any,
    ) -> None:
        from repro.cluster.replication import default_snapshot_dir

        self.replica_id = replica_id
        self.log_path = Path(log_path)
        self.snapshot_dir = (
            Path(snapshots) if snapshots is not None
            else default_snapshot_dir(log_path)
        )
        self.service_kwargs = service_kwargs
        self.service: BurstingFlowService | None = None
        self.address: tuple[str, int] | None = None

    async def start(self) -> tuple[str, int]:
        """Snapshot + suffix bootstrap, boot the service; returns the address."""
        from repro.cluster.replication import bootstrap_network

        from repro.store.snapshot import SnapshotStore

        log = AppendLog(self.log_path)
        try:
            boot = bootstrap_network(log, SnapshotStore(self.snapshot_dir))
        finally:
            log.close()
        self.service = BurstingFlowService(
            boot.network, replica_id=self.replica_id, **self.service_kwargs
        )
        self.service.metrics.observe_recovery(
            boot.replayed_records, from_snapshot=boot.from_snapshot
        )
        self.address = await self.service.start("127.0.0.1", 0)
        return self.address

    async def terminate(self) -> None:
        """Graceful shutdown: drain in-flight work, then stop."""
        if self.service is not None:
            await self.service.drain(timeout=10.0)
            await self.service.stop()
            self.service = None
            self.address = None

    async def kill(self) -> None:
        """Abrupt shutdown (no drain) — the closest in-process crash."""
        if self.service is not None:
            await self.service.stop()
            self.service = None
            self.address = None

    async def restart(self) -> tuple[str, int]:
        """Kill (if running) and boot fresh from the current log."""
        await self.kill()
        return await self.start()


class ProcessReplica:
    """A replica as a ``python -m repro.cluster.replica`` child process.

    Args:
        replica_id / log_path / snapshots: as for :class:`InlineReplica`.
        cache_capacity / max_pending / algorithm / kernel: forwarded to
            the child's service via command-line flags.
        boot_timeout: seconds to wait for the listening announcement.
    """

    mode = "process"

    def __init__(
        self,
        replica_id: str,
        log_path: str | Path,
        *,
        snapshots: str | Path | None = None,
        cache_capacity: int = 4096,
        max_pending: int = 64,
        algorithm: str = "bfq*",
        kernel: str | None = None,
        boot_timeout: float = 30.0,
    ) -> None:
        from repro.cluster.replication import default_snapshot_dir

        self.replica_id = replica_id
        self.log_path = Path(log_path)
        self.snapshot_dir = (
            Path(snapshots) if snapshots is not None
            else default_snapshot_dir(log_path)
        )
        self.cache_capacity = cache_capacity
        self.max_pending = max_pending
        self.algorithm = algorithm
        self.kernel = kernel
        self.boot_timeout = boot_timeout
        self.process: asyncio.subprocess.Process | None = None
        self.address: tuple[str, int] | None = None

    def _command(self) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.cluster._replica_main",
            "--log",
            str(self.log_path),
            "--snapshots",
            str(self.snapshot_dir),
            "--replica-id",
            self.replica_id,
            "--port",
            "0",
            "--cache-capacity",
            str(self.cache_capacity),
            "--max-pending",
            str(self.max_pending),
            "--algorithm",
            self.algorithm,
        ]
        if self.kernel is not None:
            command += ["--kernel", self.kernel]
        return command

    def _environment(self) -> dict[str, str]:
        # The child must import the same repro package as this process,
        # installed or straight off a source tree.
        package_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{package_root}{os.pathsep}{existing}" if existing else package_root
        )
        return env

    async def start(self) -> tuple[str, int]:
        """Spawn the child and wait for its listening announcement."""
        self.process = await asyncio.create_subprocess_exec(
            *self._command(),
            stdout=asyncio.subprocess.PIPE,
            env=self._environment(),
        )
        assert self.process.stdout is not None
        try:
            # asyncio.timeout, not wait_for: 3.11's wait_for can swallow
            # an outside cancellation racing the readline (this runs in
            # rejoin tasks that stop() cancels).
            async with asyncio.timeout(self.boot_timeout):
                line = await self.process.stdout.readline()
        except asyncio.TimeoutError:
            self.process.kill()
            raise ReplicaError(
                f"replica {self.replica_id} did not announce a port "
                f"within {self.boot_timeout}s"
            ) from None
        if not line:
            raise ReplicaError(
                f"replica {self.replica_id} exited before listening "
                f"(rc={self.process.returncode})"
            )
        announcement = json.loads(line)
        if announcement.get("event") != "listening":
            raise ReplicaError(
                f"replica {self.replica_id} announced {announcement!r}"
            )
        self.address = (announcement["host"], announcement["port"])
        return self.address

    async def terminate(self) -> None:
        """SIGTERM — the child drains in-flight work and exits."""
        if self.process is not None and self.process.returncode is None:
            self.process.terminate()
            try:
                async with asyncio.timeout(15.0):
                    await self.process.wait()
            except asyncio.TimeoutError:
                self.process.kill()
                await self.process.wait()
        self.process = None
        self.address = None

    async def kill(self) -> None:
        """SIGKILL — the crash the failover e2e injects."""
        if self.process is not None and self.process.returncode is None:
            self.process.kill()
            await self.process.wait()
        self.process = None
        self.address = None

    async def restart(self) -> tuple[str, int]:
        """Kill any stale child and boot a fresh one from the log."""
        await self.kill()
        return await self.start()


# ----------------------------------------------------------------------
# python -m repro.cluster.replica
# ----------------------------------------------------------------------
def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.cluster.replica",
        description="one delta-BFlow cluster replica (boots from the log)",
    )
    parser.add_argument("--log", required=True, type=Path)
    parser.add_argument(
        "--snapshots",
        type=Path,
        default=None,
        help="snapshot directory (default: <log>.snapshots)",
    )
    parser.add_argument("--replica-id", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--algorithm", default="bfq*")
    parser.add_argument("--kernel", default=None)
    return parser


async def _serve(args) -> int:
    from repro.cluster.replication import bootstrap_network, default_snapshot_dir

    from repro.store.snapshot import SnapshotStore

    snapshot_dir = args.snapshots or default_snapshot_dir(args.log)
    log = AppendLog(args.log)
    try:
        boot = bootstrap_network(log, SnapshotStore(snapshot_dir))
    finally:
        log.close()
    service = BurstingFlowService(
        boot.network,
        replica_id=args.replica_id,
        cache_capacity=args.cache_capacity,
        max_pending=args.max_pending,
        algorithm=args.algorithm,
        kernel=args.kernel,
    )
    service.metrics.observe_recovery(
        boot.replayed_records, from_snapshot=boot.from_snapshot
    )
    host, port = await service.start(args.host, args.port)
    print(
        json.dumps(
            {
                "event": "listening",
                "host": host,
                "port": port,
                "replica": args.replica_id,
                "epoch": boot.network.epoch,
                "replayed_records": boot.replayed_records,
                "from_snapshot": boot.from_snapshot,
            }
        ),
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    await service.drain(timeout=10.0)
    await service.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.cluster.replica``."""
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
