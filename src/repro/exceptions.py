"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The subclasses are deliberately fine grained:
each one corresponds to a distinct misuse of the public API or a distinct
invariant violation detected at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Structural misuse of a graph object (unknown node, bad edge, ...)."""


class UnknownNodeError(GraphError):
    """An operation referenced a node that is not part of the network."""

    def __init__(self, node: object) -> None:
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class InvalidEdgeError(GraphError):
    """An edge definition violates the network's constraints."""


class InvalidCapacityError(InvalidEdgeError):
    """An edge was given a non-positive or non-finite capacity."""

    def __init__(self, capacity: object) -> None:
        super().__init__(f"capacity must be a positive finite number, got {capacity!r}")
        self.capacity = capacity


class InvalidTimestampError(InvalidEdgeError):
    """A temporal edge was given a timestamp outside the network horizon."""

    def __init__(self, timestamp: object, detail: str = "") -> None:
        message = f"invalid timestamp: {timestamp!r}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.timestamp = timestamp


class InvalidQueryError(ReproError):
    """A delta-BFlow query is malformed (e.g. s == t or delta < 1)."""


class BatchQueryError(ReproError):
    """One item of a batch failed and the rest of the batch was abandoned.

    Raised by the batch layers (:func:`repro.core.batch.answer_many`,
    :func:`repro.core.batch.bfq_parallel`, the planner) when a worker
    raises an ordinary exception: outstanding futures are cancelled and
    this error identifies exactly which item failed.

    Attributes:
        index: position of the failing item in the submitted batch.
        item: the failing item itself (e.g. the ``BurstingFlowQuery``).
    """

    def __init__(self, index: int, item: object, cause: BaseException) -> None:
        super().__init__(
            f"batch item {index} ({item!r}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.item = item


class ScanQueryError(ReproError):
    """One (source, sink, delta) combination of a detector sweep failed.

    Raised by :meth:`repro.anomaly.detector.BurstDetector.scan` (in its
    default fail-fast mode) so a failing combination names itself
    instead of aborting the sweep with a bare engine exception; the
    PR 7 :class:`BatchQueryError` semantics, applied to the case-study
    sweep.

    Attributes:
        source / sink / delta: the failing combination.
    """

    def __init__(
        self,
        source: object,
        sink: object,
        delta: int,
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"scan query ({source!r} -> {sink!r}, delta={delta}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.source = source
        self.sink = sink
        self.delta = delta


class InvalidIntervalError(ReproError):
    """A time interval [tau_s, tau_e] is malformed or outside the horizon."""


class FlowValidationError(ReproError):
    """A (temporal) flow violates capacity, conservation or time constraints.

    Raised by the flow validators in :mod:`repro.temporal.flow` and
    :mod:`repro.flownet.residual` when an alleged flow is inconsistent.
    """


class SolverError(ReproError):
    """A maxflow solver could not produce a result (e.g. LP infeasible)."""


class DatasetError(ReproError):
    """A dataset could not be generated, parsed, or found in the registry."""


class TruncatedHistoryError(DatasetError):
    """A log read asked for records that compaction already truncated away.

    Raised by :meth:`repro.store.AppendLog.replay` when ``from_offset``
    falls before the log's base offset — the caller must restore from the
    snapshot that drove the compaction instead of replaying the log.
    """
