"""repro — bursting flow queries on large temporal flow networks.

A from-scratch reproduction of *Bursting Flow Query on Large Temporal Flow
Networks* (SIGMOD 2025): the delta-BFlow problem, the BFQ / BFQ+ / BFQ*
solutions, the classical-Maxflow substrate they run on, dataset replicas,
and an anomaly-detection case study.

Quickstart::

    from repro import TemporalFlowNetworkBuilder, find_bursting_flow

    network = (
        TemporalFlowNetworkBuilder()
        .edge("s", "a", tau=1, capacity=4.0)
        .edge("a", "t", tau=2, capacity=4.0)
        .edge("s", "t", tau=5, capacity=1.0)
        .build()
    )
    result = find_bursting_flow(network, source="s", sink="t", delta=1)
    print(result.density, result.interval)
"""

from repro.core import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    BurstingFlowQuery,
    BurstingFlowResult,
    bfq,
    bfq_plus,
    bfq_star,
    find_bursting_flow,
)
from repro.temporal import (
    TemporalEdge,
    TemporalFlowNetwork,
    TemporalFlowNetworkBuilder,
    load_edge_list,
    load_jsonl,
    network_stats,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "find_bursting_flow",
    "bfq",
    "bfq_plus",
    "bfq_star",
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "BurstingFlowQuery",
    "BurstingFlowResult",
    "TemporalEdge",
    "TemporalFlowNetwork",
    "TemporalFlowNetworkBuilder",
    "load_edge_list",
    "load_jsonl",
    "network_stats",
]
