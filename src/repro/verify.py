"""Installation self-check.

``python -c "import repro.verify as v; v.self_check()"`` (or
``repro-bfq`` users calling :func:`self_check` programmatically) runs a
battery of fast, deterministic invariants that certify the install:

1. the paper's Figure-2 Maxflow (= 7) across every solver;
2. the differential oracle (:mod:`repro.oracle`): every backend — BFQ,
   BFQ+, BFQ*, naive, NetworkX — on seeded adversarial networks, with
   flow-certificate checking and pruning on/off invariance;
3. a Lemma-1 round trip (transformed Maxflow -> valid temporal flow);
4. the streaming monitor vs the offline answer on a seeded stream.

Raises :class:`repro.exceptions.ReproError` on the first failed check;
returns a dict of check names to human-readable outcomes otherwise.
"""

from __future__ import annotations

import random

from repro.core import build_transformed_network, find_bursting_flow
from repro.core.transform import extract_temporal_flow
from repro.exceptions import ReproError
from repro.extensions import StreamingBurstMonitor
from repro.flownet import SOLVERS, FlowNetwork, dinic
from repro.temporal import TemporalEdge, TemporalFlowNetwork, validate_temporal_flow


class SelfCheckError(ReproError):
    """A self-check invariant failed — the installation is unhealthy."""


def self_check(*, seed: int = 20240705, trials: int = 10) -> dict[str, str]:
    """Run all checks; returns check-name -> outcome summary."""
    outcomes = {}
    outcomes["figure2_maxflow"] = _check_figure2()
    outcomes["oracle_agreement"] = _check_oracle_agreement(seed, trials)
    outcomes["lemma1_round_trip"] = _check_lemma1(seed)
    outcomes["streaming_equivalence"] = _check_streaming(seed)
    return outcomes


def _check_figure2() -> str:
    edges = [
        ("s", "v1", 3.0), ("s", "v2", 4.0), ("v1", "v3", 3.0),
        ("v2", "v3", 4.0), ("v3", "v4", 2.0), ("v3", "v5", 5.0),
        ("v4", "t", 2.0), ("v5", "t", 5.0),
    ]
    for name, solver in SOLVERS.items():
        network = FlowNetwork()
        for u, v, capacity in edges:
            network.add_edge_labeled(u, v, capacity)
        value = solver(network, network.index_of("s"), network.index_of("t")).value
        if abs(value - 7.0) > 1e-6:
            raise SelfCheckError(
                f"solver {name!r} got {value} on Figure 2 (expected 7)"
            )
    return f"{len(SOLVERS)} solvers agree (Maxflow = 7)"


def _random_network(rng: random.Random) -> TemporalFlowNetwork:
    nodes = [f"n{i}" for i in range(rng.randint(3, 6))]
    horizon = rng.randint(3, 9)
    network = TemporalFlowNetwork()
    for _ in range(rng.randint(5, 18)):
        u, v = rng.sample(nodes, 2)
        network.add_edge(
            TemporalEdge(u, v, rng.randint(1, horizon), float(rng.randint(1, 9)))
        )
    network.add_node("n0")
    network.add_node("n1")
    return network


def _check_oracle_agreement(seed: int, trials: int) -> str:
    from repro.oracle import fuzz

    report = fuzz(trials=trials, seed=seed, shrink=False)
    if not report.ok:
        raise SelfCheckError(
            f"differential oracle: {len(report.failures)} of {report.trials} "
            f"trials failed; first failure:\n"
            f"{report.failures[0].outcome.describe()}"
        )
    return (
        f"{report.trials} adversarial cases x {len(report.backends)} backends "
        f"+ certificates"
    )


def _check_lemma1(seed: int) -> str:
    rng = random.Random(seed + 1)
    network = _random_network(rng)
    transformed = build_transformed_network(
        network, "n0", "n1", network.t_min, network.t_max
    )
    value = dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    ).value
    flow = extract_temporal_flow(transformed)
    validate_temporal_flow(network, flow)
    if abs(flow.flow_value() - value) > 1e-6:
        raise SelfCheckError("Lemma-1 round trip lost flow value")
    return f"temporal flow of value {value:g} validated"


def _check_streaming(seed: int) -> str:
    rng = random.Random(seed + 2)
    nodes = [f"n{i}" for i in range(5)]
    events = []
    for _ in range(30):
        u, v = rng.sample(nodes, 2)
        events.append((u, v, rng.randint(1, 12), float(rng.randint(1, 9))))
    events.sort(key=lambda e: e[2])
    monitor = StreamingBurstMonitor("n0", "n1", 2)
    monitor.observe_batch(events)
    record = monitor.finalize()
    offline = find_bursting_flow(
        TemporalFlowNetwork.from_tuples(events), source="n0", sink="n1", delta=2
    )
    if abs(record.density - offline.density) > 1e-7:
        raise SelfCheckError("streaming monitor disagrees with offline answer")
    return f"stream of {len(events)} events matches offline"


if __name__ == "__main__":  # pragma: no cover - manual entry point
    for check, outcome in self_check().items():
        print(f"{check:<24} OK  ({outcome})")
