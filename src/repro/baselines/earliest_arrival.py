"""Earliest-arrival flow baselines (related work [14, 34, 44]).

The related-work section cites the *earliest arrival flow* problem: "to
determine the earliest time that a flow comes from a source node to a sink
node".  These baselines implement the two natural variants on our temporal
flow model, reusing the network transformation:

* :func:`earliest_arrival_time` — the smallest ``tau_e`` such that a
  positive temporal flow reaches the sink by ``tau_e`` (binary search over
  the sink's in-stamps with reachability checks);
* :func:`max_flow_by_deadline` — the maximum temporal flow value achievable
  with all value arriving by a deadline (one transformed-network Maxflow);
* :func:`arrival_profile` — the full step function deadline -> max value,
  evaluated at every sink in-stamp (the classical "earliest arrival flow
  pattern" summary), computed incrementally with the Lemma-3 machinery.

They contrast with delta-BFlow the same way the paper positions them:
earliest-arrival optimises *when* flow can arrive, delta-BFlow optimises
*how concentrated* it is.
"""

from __future__ import annotations

from repro.core.incremental import IncrementalTransformedNetwork
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork
from repro.temporal.reachability import earliest_arrival


def earliest_arrival_time(
    network: TemporalFlowNetwork, source: NodeId, sink: NodeId
) -> Timestamp | None:
    """The earliest time any positive flow from ``source`` reaches ``sink``.

    With positive capacities this equals temporal reachability's earliest
    arrival, so no Maxflow is needed.  Returns ``None`` when unreachable.
    """
    if source not in network or sink not in network:
        raise InvalidQueryError("query endpoints must be in the network")
    arrival = earliest_arrival(network, source)
    value = arrival.get(sink)
    return None if value is None else int(value)


def max_flow_by_deadline(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    deadline: Timestamp,
) -> float:
    """Maximum temporal flow value with everything arriving by ``deadline``."""
    if source not in network or sink not in network:
        raise InvalidQueryError("query endpoints must be in the network")
    t_min = network.t_min
    if deadline < t_min:
        return 0.0
    if deadline == t_min:
        # Instantaneous window: only same-instant transfers count.
        state = IncrementalTransformedNetwork(
            network, source, sink, t_min, t_min + 1
        )
        state.run_maxflow()
        # Restrict to flow that arrived exactly at t_min by re-solving the
        # degenerate window through the static transformation.
        from repro.core.transform import build_transformed_network
        from repro.flownet.algorithms.dinic import dinic

        transformed = build_transformed_network(
            network, source, sink, t_min, t_min
        )
        return dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value
    state = IncrementalTransformedNetwork(network, source, sink, t_min, deadline)
    state.run_maxflow()
    return state.flow_value()


def arrival_profile(
    network: TemporalFlowNetwork, source: NodeId, sink: NodeId
) -> list[tuple[Timestamp, float]]:
    """The step function deadline -> maximum arrived flow value.

    Evaluated at every in-stamp of the sink (the only points where the
    function can step), computed with one incremental window that extends
    through the stamps — each step costs only the *new* augmenting paths
    (Lemma 3), mirroring how BFQ+ sweeps candidate endings.
    """
    if source not in network or sink not in network:
        raise InvalidQueryError("query endpoints must be in the network")
    stamps = list(network.tistamp_in(sink))
    if not stamps:
        return []
    t_min = network.t_min
    profile: list[tuple[Timestamp, float]] = []
    state: IncrementalTransformedNetwork | None = None
    for stamp in stamps:
        if stamp <= t_min:
            from repro.core.transform import build_transformed_network
            from repro.flownet.algorithms.dinic import dinic

            transformed = build_transformed_network(
                network, source, sink, t_min, stamp
            )
            value = dinic(
                transformed.flow_network,
                transformed.source_index,
                transformed.sink_index,
            ).value
            profile.append((stamp, value))
            continue
        if state is None:
            state = IncrementalTransformedNetwork(
                network, source, sink, t_min, stamp
            )
        elif state.tau_e < stamp:
            state.extend_end(stamp)
        state.run_maxflow()
        profile.append((stamp, state.flow_value()))
    return profile
