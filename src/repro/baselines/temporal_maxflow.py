"""Whole-horizon temporal Maxflow baselines (Kosyfaki et al. [27] style).

The related work computes the *absolute* maximum temporal flow over the
entire horizon — "such maximization on temporal flow may happen during a
long time interval, which cannot quantify the speed of temporal flows".
These baselines exist to reproduce that contrast experimentally:

* :func:`temporal_maxflow` — exact whole-horizon Maxflow via the network
  transformation over ``[T_min, T_max]``.
* :func:`greedy_transfer_flow` — the greedy flow-transfer heuristic of
  [27]: scan temporal edges in time order and push the maximum possible
  quantity over each edge, given what has accumulated at its tail.  A lower
  bound on the exact value, orders of magnitude cheaper.

Both return the value together with the (trivially whole-horizon) interval
so they can be compared against a delta-BFlow's density in examples and
case studies.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.dinic import dinic
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class TemporalMaxflowResult:
    """Whole-horizon temporal Maxflow value plus its interval and density."""

    value: float
    interval: tuple[Timestamp, Timestamp]

    @property
    def density(self) -> float:
        """Value divided by the (whole-horizon) interval length."""
        lo, hi = self.interval
        return self.value / (hi - lo) if hi > lo else 0.0


def temporal_maxflow(
    network: TemporalFlowNetwork, source: NodeId, sink: NodeId
) -> TemporalMaxflowResult:
    """Exact maximum temporal flow over the whole horizon ``[T_min, T_max]``."""
    t_min, t_max = network.t_min, network.t_max
    if t_max <= t_min:
        return TemporalMaxflowResult(0.0, (t_min, t_max))
    transformed = build_transformed_network(network, source, sink, t_min, t_max)
    run = dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    )
    return TemporalMaxflowResult(run.value, (t_min, t_max))


def greedy_transfer_flow(
    network: TemporalFlowNetwork, source: NodeId, sink: NodeId
) -> TemporalMaxflowResult:
    """The greedy flow-transfer model of [27].

    Value accumulates at nodes: the source holds unbounded supply; scanning
    temporal edges in timestamp order, each edge transfers
    ``min(capacity, available at tail)`` to its head.  The amount that ends
    up at the sink is a (often loose) lower bound on the exact temporal
    Maxflow — the greedy model cannot "hold back" value for a better later
    route.
    """
    available: dict[NodeId, float] = defaultdict(float)
    available[source] = float("inf")
    t_min, t_max = network.t_min, network.t_max
    for edge in network.edges_in_window(t_min, t_max):
        if edge.u == sink:
            continue  # value never leaves the sink
        transfer = min(edge.capacity, available[edge.u])
        if transfer <= 0:
            continue
        available[edge.u] -= transfer
        available[edge.v] += transfer
    return TemporalMaxflowResult(available[sink], (t_min, t_max))
