"""The naive delta-BFlow solution: enumerate all ``O(|T|^2)`` windows.

Section 4.2 dismisses this enumeration as impractical ("the dataset of the
bitcoin transaction network in 2011 has 59K timestamps"), which is exactly
why it is valuable here: on *small* networks it is an independent oracle
for Lemma 2 — the test-suite asserts that BFQ's ``O(d^2)`` candidate plan
reaches the same optimal density as brute force over every window.
"""

from __future__ import annotations

from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord
from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.dinic import dinic
from repro.temporal.network import TemporalFlowNetwork


def naive_bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    max_windows: int | None = 250_000,
) -> BurstingFlowResult:
    """Brute-force delta-BFlow over every window ``[tau_s, tau_e]``.

    Windows range over all integer pairs with ``T_min <= tau_s``,
    ``tau_e <= T_max`` and ``tau_e - tau_s >= delta``.

    Args:
        max_windows: safety valve — raise instead of grinding through an
            accidentally huge enumeration (``None`` disables the check).

    Raises:
        ValueError: when the enumeration would exceed ``max_windows``.
    """
    query.validate_against(network)
    stats = QueryStats()
    best = BestRecord()

    if network.num_timestamps == 0:
        return BurstingFlowResult(0.0, None, 0.0, stats)
    t_min = network.t_min
    t_max = network.t_max
    horizon = t_max - t_min
    if horizon < query.delta:
        return BurstingFlowResult(0.0, None, 0.0, stats)
    total = sum(
        max(0, (t_max - query.delta) - tau_s + 1)
        for tau_s in range(t_min, t_max - query.delta + 1)
    )
    if max_windows is not None and total > max_windows:
        raise ValueError(
            f"naive enumeration would evaluate {total} windows "
            f"(> max_windows={max_windows})"
        )

    for tau_s in range(t_min, t_max - query.delta + 1):
        for tau_e in range(tau_s + query.delta, t_max + 1):
            stats.candidates_enumerated += 1
            transformed = build_transformed_network(
                network, query.source, query.sink, tau_s, tau_e
            )
            run = dinic(
                transformed.flow_network,
                transformed.source_index,
                transformed.sink_index,
            )
            stats.maxflow_runs += 1
            stats.augmenting_paths += run.augmenting_paths
            stats.record_sample(
                IntervalSample(
                    interval=(tau_s, tau_e),
                    network_size=transformed.num_nodes,
                    mode="dinic",
                    maxflow_seconds=0.0,
                    transform_seconds=0.0,
                    flow_value=run.value,
                )
            )
            best.offer(run.value, tau_s, tau_e)

    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )
