"""Baselines: brute force, external solvers, and related-work contrasts."""

from repro.baselines.earliest_arrival import (
    arrival_profile,
    earliest_arrival_time,
    max_flow_by_deadline,
)
from repro.baselines.naive import naive_bfq
from repro.baselines.networkx_backend import (
    networkx_bfq,
    networkx_maxflow_value,
    to_networkx,
)
from repro.baselines.temporal_maxflow import (
    TemporalMaxflowResult,
    greedy_transfer_flow,
    temporal_maxflow,
)

__all__ = [
    "naive_bfq",
    "arrival_profile",
    "earliest_arrival_time",
    "max_flow_by_deadline",
    "networkx_bfq",
    "networkx_maxflow_value",
    "to_networkx",
    "TemporalMaxflowResult",
    "temporal_maxflow",
    "greedy_transfer_flow",
]
