"""BFQ with NetworkX as the Maxflow engine.

Two purposes:

* **Cross-check.**  NetworkX's ``maximum_flow_value`` is an entirely
  independent Maxflow implementation; agreement with our Dinic on the same
  transformed networks is strong evidence both are right.
* **Motivation.**  The reproduction bands note that "networkx [is]
  available but slow for large networks" — the benchmark
  ``benchmarks/test_baseline_networkx.py`` quantifies exactly how much a
  bespoke, residual-reusing solver buys over an off-the-shelf library call
  per candidate interval.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.core.intervals import enumerate_candidates
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord
from repro.core.transform import TransformedNetwork, build_transformed_network
from repro.temporal.network import TemporalFlowNetwork


def to_networkx(transformed: TransformedNetwork) -> nx.DiGraph:
    """Convert a transformed network into a ``networkx.DiGraph``.

    Hold edges keep infinite capacity by *omitting* the capacity attribute
    (NetworkX treats missing capacities as unbounded).  Parallel edges are
    merged by capacity summation.
    """
    graph = nx.DiGraph()
    network = transformed.flow_network
    for index in network.active_indices():
        graph.add_node(network.label_of(index))
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        u = network.label_of(tail)
        v = network.label_of(arc.head)
        # Original capacity = forward residual + routed flow (reverse cap).
        routed = network.arcs_of(arc.head)[arc.rev].cap
        capacity = math.inf if math.isinf(arc.cap) else arc.cap + routed
        if math.isinf(capacity):
            graph.add_edge(u, v)  # unbounded
        elif graph.has_edge(u, v) and "capacity" in graph[u][v]:
            graph[u][v]["capacity"] += capacity
        else:
            graph.add_edge(u, v, capacity=capacity)
    return graph


def networkx_maxflow_value(transformed: TransformedNetwork) -> float:
    """Maxflow value of a transformed network computed by NetworkX."""
    graph = to_networkx(transformed)
    source = (transformed.source, transformed.tau_s)
    sink = (transformed.sink, transformed.tau_e)
    if source not in graph or sink not in graph:
        return 0.0
    return float(nx.maximum_flow_value(graph, source, sink))


def networkx_bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
) -> BurstingFlowResult:
    """BFQ (Algorithm 1) with NetworkX computing each window's Maxflow."""
    query.validate_against(network)
    stats = QueryStats()
    plan = enumerate_candidates(network, query.source, query.sink, query.delta)
    best = BestRecord()
    for tau_s, tau_e in plan.intervals():
        stats.candidates_enumerated += 1
        transformed = build_transformed_network(
            network, query.source, query.sink, tau_s, tau_e
        )
        value = networkx_maxflow_value(transformed)
        stats.maxflow_runs += 1
        stats.record_sample(
            IntervalSample(
                interval=(tau_s, tau_e),
                network_size=transformed.num_nodes,
                mode="networkx",
                maxflow_seconds=0.0,
                transform_seconds=0.0,
                flow_value=value,
            )
        )
        best.offer(value, tau_s, tau_e)
    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )
