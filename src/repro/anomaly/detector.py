"""Anomaly detection with delta-BFlow queries (the Section 6.3 case study).

The paper's case study sweeps delta-BFlow queries over the cross product of
a source set ``S`` and a sink set ``T`` (labelled suspects plus random
normal accounts) for several delta values, then inspects the queries whose
flow densities are "significantly larger than the average case".

:class:`BurstDetector` packages that procedure:

1. run every (s, t, delta) combination;
2. rank the answers by density;
3. flag the answers whose density is a robust outlier (modified z-score
   against the batch median) *and* whose bursting interval is short — the
   combination that separated the paper's suspicious pair Q1 from the
   benign long-interval pair Q2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Iterable, Sequence

from repro.core.engine import find_bursting_flow
from repro.core.profile import PhaseBreakdown
from repro.core.query import BurstingFlowQuery
from repro.exceptions import InvalidQueryError, ScanQueryError
from repro.mining.stats import modified_z_score as _modified_z_score
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: ``on_error=`` choices for :meth:`BurstDetector.scan`.
SCAN_ERROR_MODES = ("raise", "record")


@dataclass(frozen=True, slots=True)
class ScanError:
    """One failed (source, sink, delta) combination of a sweep."""

    source: NodeId
    sink: NodeId
    delta: int
    error: str


@dataclass(frozen=True, slots=True)
class ScanFinding:
    """One (source, sink, delta) answer from the sweep."""

    source: NodeId
    sink: NodeId
    delta: int
    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float

    @property
    def interval_length(self) -> int | None:
        """Length of the bursting interval, or None when no flow exists."""
        if self.interval is None:
            return None
        return self.interval[1] - self.interval[0]


@dataclass(slots=True)
class ScanReport:
    """All findings of one sweep plus the flagged outliers."""

    findings: list[ScanFinding]
    flagged: list[ScanFinding] = field(default_factory=list)
    #: Where the sweep's engine time went (transform vs maxflow vs prune),
    #: accumulated over every answered query.
    phases: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    #: Per-query failures, populated only under ``scan(on_error="record")``
    #: (the default fail-fast mode raises :class:`ScanQueryError` instead).
    errors: list[ScanError] = field(default_factory=list)

    def top(self, count: int = 10) -> list[ScanFinding]:
        """The ``count`` highest-density findings."""
        ranked = sorted(self.findings, key=lambda f: f.density, reverse=True)
        return ranked[:count]

    def finding_for(
        self, source: NodeId, sink: NodeId, delta: int
    ) -> ScanFinding | None:
        """The finding for one exact (source, sink, delta), or None."""
        for finding in self.findings:
            if (
                finding.source == source
                and finding.sink == sink
                and finding.delta == delta
            ):
                return finding
        return None


class BurstDetector:
    """Sweeps delta-BFlow queries over S x T and flags density outliers.

    Args:
        network: the transaction (temporal flow) network.
        algorithm: which delta-BFlow solution to run (default BFQ*, as the
            paper's case study does).
        kernel: maxflow kernel for the incremental solutions
            (``"persistent"``/``"object"``); ``None`` keeps the default.
        transform: window-transform strategy (``"skeleton"``/``"object"``);
            ``None`` keeps the default.
        outlier_score: modified z-score above which a finding is flagged.
        max_interval_fraction: a flagged burst must additionally be shorter
            than this fraction of the horizon (benign heavy flows are heavy
            *and slow*; the paper's Q2 took days and was dismissed).
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        algorithm: str = "bfq*",
        kernel: str | None = None,
        transform: str | None = None,
        outlier_score: float = 3.5,
        max_interval_fraction: float = 0.2,
    ) -> None:
        if not 0 < max_interval_fraction <= 1:
            raise InvalidQueryError(
                f"max_interval_fraction must be in (0, 1], "
                f"got {max_interval_fraction}"
            )
        self.network = network
        self.algorithm = algorithm
        self.kernel = kernel
        self.transform = transform
        self.outlier_score = outlier_score
        self.max_interval_fraction = max_interval_fraction

    def scan(
        self,
        sources: Iterable[NodeId],
        sinks: Iterable[NodeId],
        deltas: Sequence[int],
        *,
        on_error: str = "raise",
    ) -> ScanReport:
        """Run all (s, t, delta) combinations and flag outliers.

        Pairs with ``s == t`` or with endpoints missing from the network
        are skipped silently (the paper's random normal accounts are drawn
        from the network, but user-provided suspect lists may be stale).

        A *failing* combination — the engine raising mid-sweep — follows
        ``on_error``, matching the batch-layer semantics: ``"raise"``
        (default) aborts the sweep with a :class:`ScanQueryError` naming
        the (source, sink, delta) that failed; ``"record"`` appends a
        :class:`ScanError` to :attr:`ScanReport.errors` and keeps
        sweeping, so one poisoned query cannot void hours of results.
        """
        if on_error not in SCAN_ERROR_MODES:
            raise InvalidQueryError(
                f"on_error must be one of {SCAN_ERROR_MODES}, got {on_error!r}"
            )
        findings: list[ScanFinding] = []
        errors: list[ScanError] = []
        phases = PhaseBreakdown()
        for source in sources:
            for sink in sinks:
                if source == sink:
                    continue
                if source not in self.network or sink not in self.network:
                    continue
                for delta in deltas:
                    try:
                        result = find_bursting_flow(
                            self.network,
                            BurstingFlowQuery(source, sink, delta),
                            algorithm=self.algorithm,
                            kernel=self.kernel,
                            transform=self.transform,
                        )
                    except Exception as exc:
                        if on_error == "raise":
                            raise ScanQueryError(
                                source, sink, delta, exc
                            ) from exc
                        errors.append(
                            ScanError(
                                source=source,
                                sink=sink,
                                delta=delta,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
                        continue
                    phases.add(result.stats)
                    findings.append(
                        ScanFinding(
                            source=source,
                            sink=sink,
                            delta=delta,
                            density=result.density,
                            interval=result.interval,
                            flow_value=result.flow_value,
                        )
                    )
        return ScanReport(
            findings=findings,
            flagged=self._flag(findings),
            phases=phases,
            errors=errors,
        )

    def _flag(self, findings: list[ScanFinding]) -> list[ScanFinding]:
        positives = [f for f in findings if f.density > 0]
        if len(positives) < 3:
            return []
        densities = [f.density for f in positives]
        mid = median(densities)
        mad = median(abs(d - mid) for d in densities)
        horizon = self.network.t_max - self.network.t_min
        max_length = max(1, int(horizon * self.max_interval_fraction))
        flagged = []
        for finding in positives:
            score = _modified_z_score(finding.density, mid, mad)
            length = finding.interval_length
            if (
                score >= self.outlier_score
                and length is not None
                and length <= max_length
            ):
                flagged.append(finding)
        flagged.sort(key=lambda f: f.density, reverse=True)
        return flagged
