"""Suspect-free burst hunting.

The paper's case study starts from labelled suspects.  In practice
analysts often have *no* labels — they need candidate (source, sink)
pairs before any delta-BFlow query can run.  Exhaustively scanning all
``|V|^2`` pairs is hopeless, so this module implements the natural
two-stage funnel:

1. **cheap per-node screening** — score every node by how *temporally
   concentrated* its transfer volume is (the share of its total volume
   that falls inside its busiest window of a given length).  Nodes that
   move most of their money in one short window are burst candidates;
   steady payers/merchants score low.
2. **expensive confirmation** — run the full delta-BFlow detector
   (:class:`repro.anomaly.detector.BurstDetector`) only over the
   top-scoring emitters x collectors.

The funnel is a heuristic (screening can miss multi-hop-only bursts whose
endpoints look individually calm), which the docstrings state plainly;
the tests exercise both the hit and the miss case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anomaly.detector import BurstDetector, ScanReport
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class NodeBurstScore:
    """Temporal-concentration score of one node's ledger side."""

    node: NodeId
    total_volume: float
    peak_volume: float
    peak_window: tuple[Timestamp, Timestamp]

    @property
    def concentration(self) -> float:
        """Share of total volume inside the busiest window (0..1)."""
        if self.total_volume <= 0:
            return 0.0
        return self.peak_volume / self.total_volume

    @property
    def score(self) -> float:
        """Ranking score: concentrated *and* heavy beats either alone."""
        return self.concentration * self.peak_volume


def score_nodes(
    network: TemporalFlowNetwork,
    *,
    window: int,
    direction: str = "out",
    min_volume: float = 0.0,
) -> list[NodeBurstScore]:
    """Score every node's emission (or absorption) concentration.

    Args:
        window: length of the sliding window used for the peak.
        direction: ``"out"`` scores emitters, ``"in"`` scores collectors.
        min_volume: nodes whose total volume is below this are skipped.

    Returns scores sorted by :attr:`NodeBurstScore.score`, best first.
    """
    if window < 1:
        raise InvalidQueryError(f"window must be >= 1, got {window}")
    if direction not in ("out", "in"):
        raise InvalidQueryError(f"direction must be 'out' or 'in', got {direction!r}")
    # Gather each node's (tau, amount) ledger for the chosen direction.
    ledgers: dict[NodeId, list[tuple[Timestamp, float]]] = {}
    for edge in network.edges():
        key = edge.u if direction == "out" else edge.v
        ledgers.setdefault(key, []).append((edge.tau, edge.capacity))

    scores = []
    for node, entries in ledgers.items():
        entries.sort()
        total = sum(amount for _, amount in entries)
        if total < min_volume:
            continue
        peak, peak_window = _peak_window(entries, window)
        scores.append(
            NodeBurstScore(
                node=node,
                total_volume=total,
                peak_volume=peak,
                peak_window=peak_window,
            )
        )
    scores.sort(key=lambda s: s.score, reverse=True)
    return scores


def hunt_bursts(
    network: TemporalFlowNetwork,
    *,
    delta: int,
    top_sources: int = 5,
    top_sinks: int = 5,
    min_volume: float = 0.0,
    algorithm: str = "bfq*",
) -> ScanReport:
    """The full funnel: screen nodes, confirm with delta-BFlow queries.

    Scans the top ``top_sources`` emitters against the top ``top_sinks``
    collectors (by concentration score, window length = ``delta``) through
    the ordinary :class:`BurstDetector`, so the returned
    :class:`ScanReport` has the same flagging semantics as a labelled
    case-study scan.
    """
    emitters = score_nodes(
        network, window=delta, direction="out", min_volume=min_volume
    )
    collectors = score_nodes(
        network, window=delta, direction="in", min_volume=min_volume
    )
    sources = [score.node for score in emitters[:top_sources]]
    sinks = [score.node for score in collectors[:top_sinks]]
    detector = BurstDetector(network, algorithm=algorithm)
    return detector.scan(sources, sinks, [delta])


def _peak_window(
    entries: list[tuple[Timestamp, float]], window: int
) -> tuple[float, tuple[Timestamp, Timestamp]]:
    """Max volume inside any window of the given length (two pointers)."""
    best = 0.0
    best_window = (entries[0][0], entries[0][0] + window)
    running = 0.0
    left = 0
    for right in range(len(entries)):
        running += entries[right][1]
        while entries[right][0] - entries[left][0] > window:
            running -= entries[left][1]
            left += 1
        if running > best:
            best = running
            best_window = (entries[left][0], entries[left][0] + window)
    return best, best_window
