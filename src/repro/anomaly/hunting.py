"""Suspect-free burst hunting.

The paper's case study starts from labelled suspects.  In practice
analysts often have *no* labels — they need candidate (source, sink)
pairs before any delta-BFlow query can run.  Exhaustively scanning all
``|V|^2`` pairs is hopeless, so this module implements the natural
two-stage funnel:

1. **cheap per-node screening** — score every node by how *temporally
   concentrated* its transfer volume is (the share of its total volume
   that falls inside its busiest window of a given length).  Nodes that
   move most of their money in one short window are burst candidates;
   steady payers/merchants score low.
2. **expensive confirmation** — run the full delta-BFlow detector
   (:class:`repro.anomaly.detector.BurstDetector`) only over the
   top-scoring emitters x collectors.

The screening stage is the *same implementation* the mining subsystem
uses: :class:`NodeBurstScore` and :func:`score_nodes` are re-exported
from :mod:`repro.mining.prefilter`, which extends them with robust
z-scores and Kleinberg burst states for the continuous pipeline
(:class:`repro.mining.MiningPipeline`).  Hunting remains the one-shot,
in-memory flavour of that funnel.

The funnel is a heuristic (screening can miss multi-hop-only bursts whose
endpoints look individually calm), which the docstrings state plainly;
the tests exercise both the hit and the miss case.
"""

from __future__ import annotations

from repro.anomaly.detector import BurstDetector, ScanReport
from repro.mining.prefilter import (  # noqa: F401 - canonical home; re-exported
    NodeBurstScore,
    _peak_window,
    score_nodes,
)
from repro.temporal.network import TemporalFlowNetwork

__all__ = ["NodeBurstScore", "hunt_bursts", "score_nodes"]


def hunt_bursts(
    network: TemporalFlowNetwork,
    *,
    delta: int,
    top_sources: int = 5,
    top_sinks: int = 5,
    min_volume: float = 0.0,
    algorithm: str = "bfq*",
) -> ScanReport:
    """The full funnel: screen nodes, confirm with delta-BFlow queries.

    Scans the top ``top_sources`` emitters against the top ``top_sinks``
    collectors (by concentration score, window length = ``delta``) through
    the ordinary :class:`BurstDetector`, so the returned
    :class:`ScanReport` has the same flagging semantics as a labelled
    case-study scan.
    """
    emitters = score_nodes(
        network, window=delta, direction="out", min_volume=min_volume
    )
    collectors = score_nodes(
        network, window=delta, direction="in", min_volume=min_volume
    )
    sources = [score.node for score in emitters[:top_sources]]
    sinks = [score.node for score in collectors[:top_sinks]]
    detector = BurstDetector(network, algorithm=algorithm)
    return detector.scan(sources, sinks, [delta])
