"""Anomaly detection on transaction networks via delta-BFlow (Section 6.3)."""

from repro.anomaly.bursting_core import (
    BurstingCore,
    core_flow_value,
    find_bursting_cores,
)
from repro.anomaly.detector import BurstDetector, ScanFinding, ScanReport
from repro.anomaly.hunting import NodeBurstScore, hunt_bursts, score_nodes
from repro.anomaly.report import format_case_study_table, format_finding_interval

__all__ = [
    "BurstDetector",
    "BurstingCore",
    "find_bursting_cores",
    "core_flow_value",
    "hunt_bursts",
    "score_nodes",
    "NodeBurstScore",
    "ScanFinding",
    "ScanReport",
    "format_case_study_table",
    "format_finding_interval",
]
