"""Table-3-style rendering of case-study results.

The paper presents the case study as a table of densities and bursting
intervals per query and delta (Table 3).  :func:`format_case_study_table`
renders the same layout from :class:`~repro.anomaly.detector.ScanReport`
findings, optionally translating sequence numbers back to wall-clock
timestamps through a :class:`~repro.temporal.builder.TimestampCodec`.
"""

from __future__ import annotations

from typing import Sequence

from repro.anomaly.detector import ScanFinding
from repro.temporal.builder import TimestampCodec


def format_finding_interval(
    finding: ScanFinding, codec: TimestampCodec | None = None
) -> str:
    """Render a finding's bursting interval, decoded when a codec is given."""
    if finding.interval is None:
        return "-"
    if codec is None:
        lo, hi = finding.interval
        return f"[{lo}, {hi}]"
    lo, hi = codec.decode_interval(finding.interval)
    return f"[{lo}, {hi}]"


def format_case_study_table(
    queries: Sequence[tuple[str, Sequence[ScanFinding]]],
    *,
    codec: TimestampCodec | None = None,
) -> str:
    """Render Table 3: one block per query, one row per delta.

    Args:
        queries: pairs of (query label, findings for that query across
            deltas, in delta order).
        codec: optional timestamp codec for wall-clock intervals.
    """
    header = ("query", "delta", "density", "bursting interval")
    rows: list[tuple[str, str, str, str]] = [header]
    for label, findings in queries:
        for finding in findings:
            rows.append(
                (
                    label,
                    str(finding.delta),
                    f"{finding.density:,.1f}",
                    format_finding_interval(finding, codec),
                )
            )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
