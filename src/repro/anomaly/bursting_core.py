"""Bursting-core mining (a simplified Qin et al. [33] baseline).

The related-work section contrasts delta-BFlow with *bursting cores*:
"there can be bursting flows in a non-core subgraph, whereas there can be
bursting cores with small flow values".  To let the test-suite and
examples demonstrate both directions of that argument, this module mines a
simplified bursting core:

    An ``(l, delta)``-bursting core is a maximal set of nodes such that,
    within some window of length ``delta``, every member has at least
    ``l`` temporal interactions (in + out, direction-agnostic) with other
    members.

This is the structural-density notion ([33] additionally tracks segment
structures for efficiency; the semantics here match the definition).  The
miner slides a window over the event timestamps and runs a classical
k-core peeling on each window's multigraph snapshot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class BurstingCore:
    """One mined bursting core."""

    window: tuple[Timestamp, Timestamp]
    nodes: frozenset[NodeId]
    l_threshold: int

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.nodes)


def find_bursting_cores(
    network: TemporalFlowNetwork,
    l_threshold: int,
    delta: int,
) -> list[BurstingCore]:
    """Mine all maximal ``(l, delta)``-bursting cores.

    One core is reported per window start that yields a non-empty,
    *novel* core (windows whose core is a subset of an already reported
    core over an overlapping window are skipped, keeping output maximal).

    Args:
        network: the temporal network (capacities are ignored — bursting
            cores count interactions, which is exactly the contrast with
            delta-BFlow).
        l_threshold: minimum interactions per member inside the window.
        delta: window length.

    Raises:
        InvalidQueryError: for non-positive parameters.
    """
    if l_threshold < 1:
        raise InvalidQueryError(f"l must be >= 1, got {l_threshold}")
    if delta < 1:
        raise InvalidQueryError(f"delta must be >= 1, got {delta}")
    if network.num_edges == 0:
        return []

    cores: list[BurstingCore] = []
    seen: list[tuple[tuple[Timestamp, Timestamp], frozenset[NodeId]]] = []
    for tau_s in network.timestamps:
        tau_e = tau_s + delta
        members = _window_core(network, tau_s, tau_e, l_threshold)
        if not members:
            continue
        dominated = any(
            members <= nodes and _overlaps((tau_s, tau_e), window)
            for window, nodes in seen
        )
        if dominated:
            continue
        core = BurstingCore(
            window=(tau_s, tau_e), nodes=members, l_threshold=l_threshold
        )
        cores.append(core)
        seen.append(((tau_s, tau_e), members))
    return cores


def core_flow_value(
    network: TemporalFlowNetwork,
    core: BurstingCore,
    source: NodeId,
    sink: NodeId,
) -> float:
    """Maximum temporal flow ``source -> sink`` *inside* a core's window,
    restricted to edges between core members.

    This is the quantity the paper's argument compares against the core's
    structural density: chatty cores can carry almost no value.
    """
    from repro.core.transform import build_transformed_network
    from repro.flownet.algorithms.dinic import dinic

    restricted = TemporalFlowNetwork()
    lo, hi = core.window
    for edge in network.edges_in_window(lo, hi):
        if edge.u in core.nodes and edge.v in core.nodes:
            restricted.add_edge(edge)
    for node in (source, sink):
        restricted.add_node(node)
    if restricted.num_edges == 0:
        return 0.0
    transformed = build_transformed_network(restricted, source, sink, lo, hi)
    return dinic(
        transformed.flow_network,
        transformed.source_index,
        transformed.sink_index,
    ).value


def _window_core(
    network: TemporalFlowNetwork,
    tau_s: Timestamp,
    tau_e: Timestamp,
    l_threshold: int,
) -> frozenset[NodeId]:
    """Classical peeling: drop nodes with < l interactions until stable."""
    degree: dict[NodeId, int] = defaultdict(int)
    adjacency: dict[NodeId, list[NodeId]] = defaultdict(list)
    for edge in network.edges_in_window(tau_s, tau_e):
        degree[edge.u] += 1
        degree[edge.v] += 1
        adjacency[edge.u].append(edge.v)
        adjacency[edge.v].append(edge.u)
    alive = {node for node, d in degree.items() if d >= l_threshold}
    removal_queue = [
        node for node in degree if node not in alive
    ]
    while removal_queue:
        removed = removal_queue.pop()
        for neighbour in adjacency.get(removed, []):
            if neighbour in alive:
                degree[neighbour] -= 1
                if degree[neighbour] < l_threshold:
                    alive.discard(neighbour)
                    removal_queue.append(neighbour)
    return frozenset(alive)


def _overlaps(a: tuple[Timestamp, Timestamp], b: tuple[Timestamp, Timestamp]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]
