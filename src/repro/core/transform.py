"""Network transformation (Section 4.1 of the paper).

The transformation turns the temporal Maxflow problem inside a window
``[tau_s, tau_e]`` into a classical Maxflow problem (Lemma 1):

1. **Timestamp inlining.**  Each temporal node ``u`` becomes a timeline of
   transformed nodes ``<u, tau>`` — one per relevant timestamp — connected
   in time order by infinite-capacity *hold* edges (value may wait at a
   node).
2. **Capacity edges.**  Each temporal edge ``(u, v, tau)`` becomes the edge
   ``<u, tau> -> <v, tau>`` with the same capacity.
3. The classical source/sink are ``<s, tau_s>`` and ``<t, tau_e>``.

Following the paper's construction ("starting from s, we perform a
depth-first traversal on the edges of N_T having timestamps within
[tau_s, tau_e]"), only edges *temporally reachable* from the source are
materialised: an edge ``(u, v, tau)`` enters the transformed network iff
some flow leaving ``s`` at ``tau_s`` could be sitting at ``u`` by time
``tau``.  Unreachable edges cannot carry s-t flow, so skipping them keeps
the transformed network small without affecting the Maxflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import InvalidIntervalError
from repro.flownet.network import EdgeKind, EdgeRef, FlowNetwork
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: Transformed node labels: (temporal node, timestamp).
TransformedNode = tuple[NodeId, Timestamp]


@dataclass(slots=True)
class TransformedNetwork:
    """A transformed flow network ``N_[tau_s, tau_e]`` plus its bookkeeping.

    Attributes:
        flow_network: the underlying classical flow network (mutable;
            the Maxflow solvers operate on it in place).
        source: temporal source node ``s``.
        sink: temporal sink node ``t``.
        tau_s / tau_e: the window this transformation covers.
        source_index / sink_index: indices of ``<s, tau_s>`` / ``<t, tau_e>``.
        source_capacity_arcs: handles of every capacity edge leaving some
            ``<s, tau>`` node — summing their routed flow yields ``|f|``
            regardless of how the network was extended or shrunk.
    """

    flow_network: FlowNetwork
    source: NodeId
    sink: NodeId
    tau_s: Timestamp
    tau_e: Timestamp
    source_index: int
    sink_index: int
    source_capacity_arcs: list[EdgeRef]

    @property
    def num_nodes(self) -> int:
        """``|V'|`` — active transformed nodes."""
        return self.flow_network.num_active_nodes

    @property
    def num_edges(self) -> int:
        """Edge count of the transformed network."""
        return self.flow_network.num_edges

    def flow_value(self) -> float:
        """``|f|`` — flow leaving the active source timeline on capacity edges."""
        network = self.flow_network
        total = 0.0
        for ref in self.source_capacity_arcs:
            if network.is_retired(ref.tail):
                continue
            arc = network.forward_arc(ref)
            if network.is_retired(arc.head):
                continue
            total += network.flow_on(ref)
        return total


def extract_temporal_flow(transformed: TransformedNetwork) -> "TemporalFlow":
    """Lemma 1, constructive direction: classical flow -> temporal flow.

    Reads the flow currently routed on the transformed network's capacity
    edges (each of which remembers its originating temporal edge) and
    assembles the equivalent :class:`~repro.temporal.flow.TemporalFlow`.
    The result can be checked against the temporal-flow axioms with
    :func:`repro.temporal.flow.validate_temporal_flow` — the test-suite
    does exactly that to certify the transformation.
    """
    from repro.temporal.flow import TemporalFlow

    flow = TemporalFlow(
        source=transformed.source,
        sink=transformed.sink,
        tau_s=transformed.tau_s,
        tau_e=transformed.tau_e,
    )
    network = transformed.flow_network
    for tail, arc in network.iter_edges():
        if arc.kind is not EdgeKind.CAPACITY:
            continue
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        routed = network.arcs_of(arc.head)[arc.rev].cap
        if routed <= 0:
            continue
        u, v, tau = arc.meta
        flow.set_value(u, v, tau, flow.value_of(u, v, tau) + routed)
    return flow


def build_transformed_network(
    temporal: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    tau_s: Timestamp,
    tau_e: Timestamp,
) -> TransformedNetwork:
    """Build ``N_[tau_s, tau_e]`` from scratch (the BFQ code path).

    Instantaneous windows (``tau_e == tau_s``) are allowed — they model the
    ``MF[tau, tau]`` comparisons in the core-interval definition — but a
    reversed window is an error.

    Raises:
        InvalidIntervalError: when ``tau_e < tau_s``.
    """
    if tau_e < tau_s:
        raise InvalidIntervalError(f"window [{tau_s}, {tau_e}] is reversed")
    included = reachable_edges(temporal, source, tau_s, tau_e)
    return assemble(temporal, source, sink, tau_s, tau_e, included)


def reachable_edges(
    temporal: TemporalFlowNetwork,
    source: NodeId,
    tau_s: Timestamp,
    tau_e: Timestamp,
    *,
    arrival: dict[NodeId, float] | None = None,
) -> list[tuple[NodeId, NodeId, Timestamp, float]]:
    """Edges in the window usable by flow leaving ``source`` at ``tau_s``.

    Processes window edges in timestamp order, maintaining earliest-arrival
    labels; an edge ``(u, v, tau)`` is *included* iff ``arrival(u) <= tau``.
    Within one timestamp a small worklist handles same-instant chains
    (``s -> a`` and ``a -> b`` both at ``tau``).

    Args:
        arrival: optional pre-existing arrival labels to extend (used by the
            incremental structure).  Mutated in place when given.
    """
    if arrival is None:
        arrival = {}
    arrival.setdefault(source, float(tau_s))
    included: list[tuple[NodeId, NodeId, Timestamp, float]] = []
    pending: list[tuple[NodeId, NodeId, Timestamp, float]] = []
    current_tau: Timestamp | None = None

    def flush_timestamp() -> None:
        # Fixpoint over one timestamp: arrivals set at tau enable more
        # edges at the same tau.
        work = pending[:]
        pending.clear()
        progressed = True
        while progressed and work:
            progressed = False
            remaining = []
            for item in work:
                u, v, tau, capacity = item
                if arrival.get(u, math.inf) <= tau:
                    included.append(item)
                    if tau < arrival.get(v, math.inf):
                        arrival[v] = float(tau)
                    progressed = True
                else:
                    remaining.append(item)
            work = remaining

    for edge in temporal.edges_in_window(tau_s, tau_e):
        if edge.tau != current_tau:
            flush_timestamp()
            current_tau = edge.tau
        pending.append((edge.u, edge.v, edge.tau, edge.capacity))
    flush_timestamp()
    return included


def assemble(
    temporal: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    tau_s: Timestamp,
    tau_e: Timestamp,
    included: Iterable[tuple[NodeId, NodeId, Timestamp, float]],
) -> TransformedNetwork:
    """Materialise a :class:`TransformedNetwork` from an included-edge list."""
    timelines: dict[NodeId, list[Timestamp]] = {source: [], sink: []}
    per_node_stamps: dict[NodeId, set[Timestamp]] = {source: {tau_s}, sink: {tau_e}}
    # Edges out of the sink or into the source can never carry s-t flow
    # (Ti(s) = TiStamp_out(s), Ti(t) = TiStamp_in(t) in the paper); dropping
    # them keeps |V'| at the paper's size.
    edge_list = [
        (u, v, tau, capacity)
        for (u, v, tau, capacity) in included
        if u != sink and v != source
    ]
    for u, v, tau, _capacity in edge_list:
        per_node_stamps.setdefault(u, set()).add(tau)
        per_node_stamps.setdefault(v, set()).add(tau)

    network = FlowNetwork()
    for node, stamps in per_node_stamps.items():
        timeline = sorted(stamps)
        timelines[node] = timeline
        previous: Timestamp | None = None
        for tau in timeline:
            network.add_node((node, tau))
            if previous is not None:
                network.add_edge_labeled(
                    (node, previous),
                    (node, tau),
                    math.inf,
                    kind=EdgeKind.HOLD,
                    meta=node,
                )
            previous = tau

    source_capacity_arcs: list[EdgeRef] = []
    for u, v, tau, capacity in edge_list:
        ref = network.add_edge_labeled(
            (u, tau), (v, tau), capacity, kind=EdgeKind.CAPACITY, meta=(u, v, tau)
        )
        if u == source:
            source_capacity_arcs.append(ref)

    return TransformedNetwork(
        flow_network=network,
        source=source,
        sink=sink,
        tau_s=tau_s,
        tau_e=tau_e,
        source_index=network.index_of((source, tau_s)),
        sink_index=network.index_of((sink, tau_e)),
        source_capacity_arcs=source_capacity_arcs,
    )
