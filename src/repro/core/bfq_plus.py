"""BFQ+ — incremental Maxflow of the insertion case (Algorithm 2).

For each starting timestamp ``tau_s`` in ``Ti(s)``, BFQ+ builds the minimal
window ``[tau_s, tau_s + delta]`` once, computes its Maxflow with Dinic,
and then *extends the end* through the remaining candidate endings
``tau_e' in Ti(t)`` (ascending).  By Lemma 3 the residual state stays valid
across extensions, so each step only finds the *new* augmenting paths.

The Observation-2 capacity pruning is applied before every incremental
Dinic run: if even absorbing all sink capacity added since the last
computed Maxflow cannot beat the current best density, the run is skipped.
The structural extension itself still happens (it is cheap and later
extensions build on it); a per-start ``pending`` accumulator keeps the
pruning bound correct across consecutively pruned candidates.

With ``transform="skeleton"`` (the default) one
:class:`~repro.core.skeleton.WindowSkeleton` is compiled per query and
shared by every per-start incremental state, replacing all per-extension
reachability sweeps with binary-searched slices of the compiled per-start
index; ``transform="object"`` keeps the original per-extension
``reachable_edges`` path for differential testing.
"""

from __future__ import annotations

import time

from repro.core.incremental import DEFAULT_KERNEL, IncrementalTransformedNetwork
from repro.core.intervals import CandidatePlan, enumerate_candidates
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord, should_prune
from repro.core.skeleton import DEFAULT_TRANSFORM, WindowSkeleton, validate_transform
from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.selector import network_maxflow
from repro.temporal.edge import Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: Backwards-compatible alias — the record now lives in repro.core.record
#: so that all five backends share one canonical tie-break.
_BestRecord = BestRecord


def bfq_plus(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    use_pruning: bool = True,
    kernel: str = DEFAULT_KERNEL,
    transform: str = DEFAULT_TRANSFORM,
) -> BurstingFlowResult:
    """Answer ``query`` with BFQ+ (insertion-case incremental Maxflow).

    Args:
        network: the temporal flow network.
        query: the delta-BFlow query.
        use_pruning: apply Observation 2 (on by default; EXP-2 disables it
            to isolate the incremental speedup).
        kernel: maxflow kernel for the incremental state — any name in
            :data:`repro.flownet.algorithms.registry.ENGINE_KERNELS`:
            ``"persistent"`` (flat-array Dinic on a maintained CSR residual
            arena), ``"vectorized"`` (numpy frontier BFS), ``"push_relabel"``
            (FIFO preflow for dense windows), ``"adaptive"`` (per-window
            choice from observed timings), or ``"object"`` (the Arc-walking
            engine).
        transform: edge-inclusion backend — ``"skeleton"`` (one compiled
            per-query index, default) or ``"object"`` (per-extension
            reachability sweeps).
    """
    query.validate_against(network)
    transform = validate_transform(transform)
    stats = QueryStats()
    plan: CandidatePlan = enumerate_candidates(
        network, query.source, query.sink, query.delta
    )
    best = BestRecord()
    skeleton: WindowSkeleton | None = None
    if transform == "skeleton" and (plan.starts or plan.corner is not None):
        t0 = time.perf_counter()
        skeleton = WindowSkeleton(network, query.source, query.sink)
        stats.transform_seconds += time.perf_counter() - t0

    for tau_s in plan.starts:
        _sweep_endings(
            network,
            query,
            plan,
            tau_s,
            best,
            stats,
            use_pruning=use_pruning,
            kernel=kernel,
            transform=transform,
            skeleton=skeleton,
        )
    _evaluate_corner(
        network,
        query,
        plan,
        best,
        stats,
        kernel=kernel,
        transform=transform,
        skeleton=skeleton,
    )

    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )


def _sweep_endings(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    plan: CandidatePlan,
    tau_s: Timestamp,
    best: BestRecord,
    stats: QueryStats,
    *,
    use_pruning: bool,
    kernel: str = DEFAULT_KERNEL,
    transform: str = DEFAULT_TRANSFORM,
    skeleton: WindowSkeleton | None = None,
) -> None:
    """Lines 4-11 of Algorithm 2 for one fixed ``tau_s``."""
    tau_e = tau_s + plan.delta
    stats.candidates_enumerated += 1
    t0 = time.perf_counter()
    state = IncrementalTransformedNetwork(
        network,
        query.source,
        query.sink,
        tau_s,
        tau_e,
        kernel=kernel,
        transform=transform,
        skeleton=skeleton,
    )
    t1 = time.perf_counter()
    run = state.run_maxflow()
    t2 = time.perf_counter()
    stats.maxflow_runs += 1
    stats.note_kernel(run.kernel, t2 - t1)
    stats.augmenting_paths += run.augmenting_paths
    flow_value = state.flow_value()
    stats.record_sample(
        IntervalSample(
            interval=(tau_s, tau_e),
            network_size=state.num_nodes,
            mode="dinic",
            maxflow_seconds=t2 - t1,
            transform_seconds=t1 - t0,
            flow_value=flow_value,
        )
    )
    best.offer(flow_value, tau_s, tau_e)

    # Sink capacity added since `flow_value` was last recomputed; feeds the
    # Observation-2 upper bound across consecutively pruned extensions.
    pending_sink_capacity = 0.0
    for tau_e_next in plan.endings_for(tau_s):
        stats.candidates_enumerated += 1
        t0 = time.perf_counter()
        pending_sink_capacity += network.sink_capacity_in_window(
            query.sink, state.tau_e + 1, tau_e_next
        )
        tp = time.perf_counter()
        state.extend_end(tau_e_next)
        t1 = time.perf_counter()
        stats.prune_seconds += tp - t0
        stats.incremental_insertions += 1

        upper_bound = flow_value + pending_sink_capacity
        if use_pruning and should_prune(upper_bound, best.density, tau_e_next - tau_s):
            stats.pruned_intervals += 1
            stats.record_sample(
                IntervalSample(
                    interval=(tau_s, tau_e_next),
                    network_size=state.num_nodes,
                    mode="pruned",
                    maxflow_seconds=0.0,
                    transform_seconds=t1 - tp,
                    flow_value=flow_value,
                )
            )
            continue

        run = state.run_maxflow(value_bound=pending_sink_capacity)
        t2 = time.perf_counter()
        stats.maxflow_runs += 1
        stats.note_kernel(run.kernel, t2 - t1)
        stats.augmenting_paths += run.augmenting_paths
        flow_value = state.flow_value()
        pending_sink_capacity = 0.0
        stats.record_sample(
            IntervalSample(
                interval=(tau_s, tau_e_next),
                network_size=state.num_nodes,
                mode="maxflow+",
                maxflow_seconds=t2 - t1,
                transform_seconds=t1 - tp,
                flow_value=flow_value,
            )
        )
        best.offer(flow_value, tau_s, tau_e_next)


def _evaluate_corner(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    plan: CandidatePlan,
    best: BestRecord,
    stats: QueryStats,
    *,
    kernel: str = DEFAULT_KERNEL,
    transform: str = DEFAULT_TRANSFORM,
    skeleton: WindowSkeleton | None = None,
) -> None:
    """Footnote-4 corner case: the clamped window ``[T_max - delta, T_max]``."""
    if plan.corner is None:
        return
    tau_s, tau_e = plan.corner
    stats.candidates_enumerated += 1
    if transform == "skeleton":
        t0 = time.perf_counter()
        if skeleton is None:
            skeleton = WindowSkeleton(network, query.source, query.sink)
        window = skeleton.materialize(tau_s, tau_e)
        t1 = time.perf_counter()
        run = window.maxflow(kernel=kernel)
        t2 = time.perf_counter()
        size = window.num_nodes
    else:
        t0 = time.perf_counter()
        transformed = build_transformed_network(
            network, query.source, query.sink, tau_s, tau_e
        )
        t1 = time.perf_counter()
        run = network_maxflow(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
            kernel=kernel,
        )
        t2 = time.perf_counter()
        size = transformed.num_nodes
    stats.maxflow_runs += 1
    stats.note_kernel(run.kernel, t2 - t1)
    stats.augmenting_paths += run.augmenting_paths
    stats.record_sample(
        IntervalSample(
            interval=(tau_s, tau_e),
            network_size=size,
            mode="dinic",
            maxflow_seconds=t2 - t1,
            transform_seconds=t1 - t0,
            flow_value=run.value,
        )
    )
    best.offer(run.value, tau_s, tau_e)
