"""Flow trails: decompose a bursting flow into time-respecting paths.

``find_bursting_flow`` answers *how much and when*; investigators also ask
*which way the value travelled* (the paper's Figure 1 draws exactly these
red transfer chains).  :func:`bursting_flow_trails` reconstructs them:

1. re-solve the reported bursting interval's transformed network;
2. decompose the classical Maxflow into source->sink paths
   (:func:`repro.flownet.residual.decompose_into_paths`);
3. translate each transformed path back into temporal *hops* — the
   sequence of ``(u, v, tau, amount)`` transfers — collapsing the hold
   edges into waiting time.

The decomposition is exact: hop amounts sum to the flow value, every hop
respects time order, and each trail is a valid temporal flow on its own
(asserted by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery
from repro.core.transform import build_transformed_network
from repro.exceptions import InvalidQueryError
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.network import EdgeKind
from repro.flownet.residual import decompose_into_paths
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class TrailHop:
    """One transfer on a trail."""

    u: NodeId
    v: NodeId
    tau: Timestamp
    amount: float


@dataclass(frozen=True, slots=True)
class FlowTrail:
    """One time-respecting source->sink path carrying ``amount`` units."""

    hops: tuple[TrailHop, ...]
    amount: float

    @property
    def start(self) -> Timestamp:
        """Timestamp of the first hop."""
        return self.hops[0].tau

    @property
    def end(self) -> Timestamp:
        """Timestamp of the last hop."""
        return self.hops[-1].tau

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node sequence the trail visits."""
        return (self.hops[0].u, *(hop.v for hop in self.hops))

    def describe(self) -> str:
        """Human-readable one-liner: ``s -@1-> a -@3-> t (4.0 units)``."""
        parts = [str(self.hops[0].u)]
        for hop in self.hops:
            parts.append(f"-@{hop.tau}-> {hop.v}")
        return " ".join(parts) + f"  ({self.amount:g} units)"


@dataclass(frozen=True, slots=True)
class TrailReport:
    """The bursting flow plus its full trail decomposition."""

    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float
    trails: tuple[FlowTrail, ...]

    @property
    def found(self) -> bool:
        """Whether a positive-density bursting flow exists."""
        return self.interval is not None and self.density > 0


def bursting_flow_trails(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    algorithm: str = "bfq*",
) -> TrailReport:
    """Answer ``query`` and decompose the winning flow into trails."""
    result = find_bursting_flow(network, query, algorithm=algorithm)
    if not result.found:
        return TrailReport(0.0, None, 0.0, ())
    lo, hi = result.interval
    trails = trails_for_interval(network, query.source, query.sink, lo, hi)
    return TrailReport(
        density=result.density,
        interval=result.interval,
        flow_value=result.flow_value,
        trails=trails,
    )


def trails_for_interval(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    tau_s: Timestamp,
    tau_e: Timestamp,
) -> tuple[FlowTrail, ...]:
    """Maxflow trails of one specific window, largest amount first."""
    if tau_e < tau_s:
        raise InvalidQueryError(f"reversed window [{tau_s}, {tau_e}]")
    transformed = build_transformed_network(network, source, sink, tau_s, tau_e)
    fn = transformed.flow_network
    dinic(fn, transformed.source_index, transformed.sink_index)

    arc_lookup: dict[tuple[int, int], tuple] = {}
    for tail, arc in fn.iter_edges():
        if arc.kind is EdgeKind.CAPACITY:
            arc_lookup[(tail, arc.head)] = arc.meta  # (u, v, tau)

    trails: list[FlowTrail] = []
    for path, amount in decompose_into_paths(
        fn, transformed.source_index, transformed.sink_index
    ):
        hops: list[TrailHop] = []
        for a, b in zip(path, path[1:]):
            meta = arc_lookup.get((a, b))
            if meta is None:
                continue  # a hold edge: value waits, no transfer happens
            u, v, tau = meta
            hops.append(TrailHop(u, v, tau, amount))
        if hops:
            trails.append(FlowTrail(tuple(hops), amount))
    trails.sort(key=lambda trail: (-trail.amount, trail.start))
    return tuple(trails)
