"""Candidate interval enumeration (Section 4.2, Lemma 2).

Instead of the ``O(|T|^2)`` possible windows, a delta-BFlow query only
needs:

* the length-delta windows ``[tau, tau + delta]`` for every ``tau`` in
  ``Ti(s)`` — these cover all optima whose supporting *core interval* is
  shorter than delta; when ``tau + delta`` overshoots the horizon, the
  window is clamped to ``[T_max - delta, T_max]`` (footnote 4's corner
  case); and
* the windows ``[tau_s, tau_e]`` with ``tau_s in Ti(s)``,
  ``tau_e in Ti(t)`` and ``tau_e - tau_s > delta`` — a superset of the
  core intervals longer than delta (Observation 1: a core interval starts
  at an out-edge of ``s`` and ends at an in-edge of ``t``).

That is ``O(d^2)`` candidates with ``d = max(|Ti(s)|, |Ti(t)|)``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class CandidatePlan:
    """The enumeration plan for one query.

    Attributes:
        starts: ascending starting timestamps ``tau_s`` whose minimal window
            ``[tau_s, tau_s + delta]`` fits the horizon.
        sink_stamps: ascending ``Ti(t)`` — ending timestamps for windows
            longer than delta.
        corner: the clamped window ``[T_max - delta, T_max]`` when some
            ``tau in Ti(s)`` overshoots the horizon, else ``None``.
        delta: the query's delta.
        t_max: the horizon (largest timestamp in ``T``).
    """

    starts: tuple[Timestamp, ...]
    sink_stamps: tuple[Timestamp, ...]
    corner: tuple[Timestamp, Timestamp] | None
    delta: int
    t_max: Timestamp

    def endings_for(self, tau_s: Timestamp) -> Iterator[Timestamp]:
        """Ascending ``tau_e in Ti(t)`` with ``tau_e > tau_s + delta``."""
        threshold = tau_s + self.delta
        for tau_e in self.sink_stamps:
            if tau_e > threshold:
                yield tau_e

    def intervals(self) -> Iterator[tuple[Timestamp, Timestamp]]:
        """All candidate intervals in BFQ evaluation order."""
        for tau_s in self.starts:
            yield (tau_s, tau_s + self.delta)
            for tau_e in self.endings_for(tau_s):
                yield (tau_s, tau_e)
        if self.corner is not None:
            yield self.corner

    def count(self) -> int:
        """Total number of candidate intervals, in ``O(d log d)``.

        Per start: the minimal window plus every ``tau_e in sink_stamps``
        strictly beyond ``tau_s + delta`` — a suffix of the sorted
        ``sink_stamps`` found by one bisect, instead of materialising all
        ``O(d^2)`` intervals just to count them.  A regression test pins
        equality with ``sum(1 for _ in self.intervals())``.
        """
        stamps = self.sink_stamps
        d = len(stamps)
        total = sum(
            1 + d - bisect_right(stamps, tau_s + self.delta)
            for tau_s in self.starts
        )
        if self.corner is not None:
            total += 1
        return total


def enumerate_candidates(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    delta: int,
) -> CandidatePlan:
    """Build the ``O(d^2)`` candidate plan of Lemma 2 for one query.

    Raises:
        InvalidQueryError: if delta is not a positive integer or the
            endpoints are missing from the network.
    """
    if not isinstance(delta, int) or isinstance(delta, bool) or delta < 1:
        raise InvalidQueryError(f"delta must be a positive int, got {delta!r}")
    for node in (source, sink):
        if node not in network:
            raise InvalidQueryError(f"query node {node!r} not in network")
    ti_s: Sequence[Timestamp] = network.ti(source, source, sink)
    ti_t: Sequence[Timestamp] = network.ti(sink, source, sink)
    if not ti_s or not ti_t:
        # Source never emits or sink never receives: no flow possible.
        # (An edgeless network has no horizon at all; report t_max as 0.)
        t_max = network.t_max if network.num_timestamps else 0
        return CandidatePlan((), (), None, delta, t_max)
    t_max = network.t_max
    t_min = network.t_min
    if t_max - t_min < delta:
        # No window of length >= delta fits the horizon at all.
        return CandidatePlan((), (), None, delta, t_max)
    starts = tuple(tau for tau in ti_s if tau + delta <= t_max)
    overshoot = len(starts) < len(ti_s)
    corner: tuple[Timestamp, Timestamp] | None = None
    if overshoot and (t_max - delta) not in set(starts):
        corner = (t_max - delta, t_max)
    return CandidatePlan(
        starts=starts,
        sink_stamps=tuple(ti_t),
        corner=corner,
        delta=delta,
        t_max=t_max,
    )


def is_core_interval(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    tau_s: Timestamp,
    tau_e: Timestamp,
) -> bool:
    """Decide whether ``[tau_s, tau_e]`` is a *core interval* (Section 4.2).

    A window is core when its Maxflow strictly exceeds the Maxflow of every
    proper subwindow.  By monotonicity it suffices to compare against the
    two windows obtained by trimming one boundary step inward.  This is a
    test/diagnostic helper, not on the query hot path.
    """
    from repro.flownet.algorithms.dinic import dinic  # local: avoid cycle
    from repro.core.transform import build_transformed_network

    def window_value(lo: Timestamp, hi: Timestamp) -> float:
        if hi < lo:
            return 0.0
        transformed = build_transformed_network(network, source, sink, lo, hi)
        return dinic(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        ).value

    full = window_value(tau_s, tau_e)
    if full <= 0:
        return False
    return (
        full > window_value(tau_s + 1, tau_e)
        and full > window_value(tau_s, tau_e - 1)
    )
