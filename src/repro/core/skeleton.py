"""Transform compiler: compile the temporal network once, slice per window.

:func:`~repro.core.transform.build_transformed_network` rebuilds the
transformed network ``N_[tau_s, tau_e]`` from scratch for every candidate
window — node maps, ``Arc`` objects and a fresh reachability sweep per
window, ``O(d^2)`` times per query.  After PR 2 moved the Maxflow inner
loop onto flat arrays, that per-window object-graph construction dominates
BFQ wall time and a large share of BFQ+/BFQ*.

:class:`WindowSkeleton` amortises it.  Per query it snapshots the temporal
edge stream once into parallel arrays (timestamp-ordered, exactly the
order ``edges_in_window`` yields), and lazily computes one *per-start
reachability index* for each starting timestamp ``tau_s`` the query
touches: a single earliest-arrival sweep over the suffix ``[tau_s, t_max]``
that replays :func:`~repro.core.transform.reachable_edges`'s per-timestamp
fixpoint on array positions.  Because an edge's arrival label only depends
on edges with stamps ``<= tau``, the included-edge list of *any* window
``[tau_s, tau_e]`` is a bisect-found **prefix** of that start's index —
so after ``O(d)`` sweeps (one per start; the same asymptotics BFQ+ pays)
every one of the ``O(d^2)`` windows is two binary searches away.

:meth:`WindowSkeleton.materialize` then builds the window **directly as a
detached** :class:`~repro.flownet.residual.ResidualArena` — flat
``heads`` / ``caps`` / ``rev`` / ``slots`` arrays the persistent Dinic
kernel consumes natively — bypassing :class:`~repro.flownet.network.
FlowNetwork` entirely on the hot path.  The node set, hold chains and
capacity edges are constructed in one pass over the sliced positions and
match :func:`~repro.core.transform.assemble` exactly; the lazy
:meth:`SkeletonWindow.to_flow_network` escape hatch rebuilds the
byte-identical object graph on demand for certificates, the differential
oracle and debugging.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.exceptions import GraphError, InvalidIntervalError
from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.residual import ResidualArena
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: Transform strategy used by BFQ / BFQ+ / BFQ* unless overridden.
#: ``"skeleton"`` compiles once per query and slices windows into detached
#: residual arenas; ``"object"`` is the original per-window
#: ``FlowNetwork`` construction, retained for differential testing.
DEFAULT_TRANSFORM = "skeleton"

KNOWN_TRANSFORMS = ("skeleton", "object")

_INF = math.inf


def validate_transform(name: str) -> str:
    """Normalise and validate a ``transform=`` choice.

    Raises:
        ValueError: for unknown names.
    """
    lowered = name.lower()
    if lowered not in KNOWN_TRANSFORMS:
        raise ValueError(
            f"unknown transform {name!r}; known: {', '.join(KNOWN_TRANSFORMS)}"
        )
    return lowered


class _StartIndex:
    """The (resumable) reachability index for one starting timestamp.

    ``positions[i]`` is the i-th included edge's position in the skeleton's
    global edge arrays; ``taus[i]`` is its timestamp.  ``taus`` is
    non-decreasing (the fixpoint emits whole timestamp groups in order), so
    the included set of ``[tau_s, tau_e]`` is ``positions[:bisect_right(
    taus, tau_e)]`` and an incremental extension ``(lo, hi]`` is an interior
    slice — exactly what ``reachable_edges`` would have produced, in the
    same order.

    The sweep is *lazy*: ``arrival`` and ``next_pos`` carry its state, and
    the skeleton advances it only up to the highest stamp a window has
    actually asked for — so a start whose candidate endings stop early
    never pays for the rest of the horizon.
    """

    __slots__ = ("positions", "taus", "arrival", "next_pos")

    def __init__(self, source: NodeId, tau_s: Timestamp, next_pos: int) -> None:
        self.positions: list[int] = []
        self.taus: list[Timestamp] = []
        self.arrival: dict[NodeId, float] = {source: float(tau_s)}
        #: Global array position of the first unswept edge (whole timestamp
        #: groups are swept atomically, so this always sits on a boundary).
        self.next_pos = next_pos


class WindowSkeleton:
    """A per-query compilation of the temporal network (see module docs).

    Compile once per ``(network, source, sink)`` triple; windows of *any*
    ``[tau_s, tau_e]`` can then be sliced out.  The skeleton snapshots the
    edge stream at compile time and refuses to serve windows after the
    temporal network mutates (the epoch check), since its arrays would be
    stale.
    """

    __slots__ = (
        "temporal",
        "source",
        "sink",
        "_epoch",
        "_eu",
        "_ev",
        "_etau",
        "_ecap",
        "_keep",
        "_start_cache",
    )

    def __init__(
        self, temporal: TemporalFlowNetwork, source: NodeId, sink: NodeId
    ) -> None:
        self.temporal = temporal
        self.source = source
        self.sink = sink
        self._epoch = temporal.epoch
        # Parallel snapshot of every temporal edge, in edges_in_window
        # order (timestamp-major, insertion order within a timestamp) —
        # the order the reachability fixpoint depends on.
        eu: list[NodeId] = []
        ev: list[NodeId] = []
        etau: list[Timestamp] = []
        ecap: list[float] = []
        keep: list[bool] = []
        if temporal.num_timestamps:
            for edge in temporal.edges_in_window(temporal.t_min, temporal.t_max):
                eu.append(edge.u)
                ev.append(edge.v)
                etau.append(edge.tau)
                ecap.append(edge.capacity)
                # assemble() drops edges out of the sink / into the source
                # (they can never carry s-t flow); they still propagate
                # arrival labels, so they stay in the sweep below.
                keep.append(edge.u != sink and edge.v != source)
        self._eu = eu
        self._ev = ev
        self._etau = etau
        self._ecap = ecap
        self._keep = keep
        self._start_cache: dict[Timestamp, _StartIndex] = {}

    # ------------------------------------------------------------------
    # Per-start reachability index
    # ------------------------------------------------------------------
    def start_index(
        self, tau_s: Timestamp, upto: Timestamp | None = None
    ) -> _StartIndex:
        """The (memoised) included-edge index for flow leaving at ``tau_s``.

        Args:
            upto: advance the lazy sweep through every timestamp group up
                to this stamp (``None`` only fetches the index).

        Raises:
            GraphError: when the temporal network mutated after compile
                (the snapshot arrays would serve stale windows).
        """
        if self.temporal.epoch != self._epoch:
            raise GraphError(
                "temporal network mutated after skeleton compile; "
                "build a fresh WindowSkeleton"
            )
        index = self._start_cache.get(tau_s)
        if index is None:
            index = _StartIndex(
                self.source, tau_s, bisect_left(self._etau, tau_s)
            )
            self._start_cache[tau_s] = index
        if upto is not None:
            self._sweep(index, upto)
        return index

    def _sweep(self, index: _StartIndex, upto: Timestamp) -> None:
        """Advance one earliest-arrival sweep through stamps ``<= upto``.

        Replays :func:`~repro.core.transform.reachable_edges` — including
        its per-timestamp fixpoint and emission order — on array positions,
        resuming where the previous call stopped.
        """
        eu = self._eu
        ev = self._ev
        etau = self._etau
        arrival = index.arrival
        arrival_get = arrival.get
        positions = index.positions
        taus = index.taus
        i = index.next_pos
        n = len(etau)
        while i < n:
            tau = etau[i]
            if tau > upto:
                break
            j = i
            while j < n and etau[j] == tau:
                j += 1
            # Fixpoint over one timestamp group: arrivals set at tau enable
            # more edges at the same tau.
            work = range(i, j)
            progressed = True
            while progressed and work:
                progressed = False
                remaining: list[int] = []
                for p in work:
                    if arrival_get(eu[p], _INF) <= tau:
                        positions.append(p)
                        taus.append(tau)
                        v = ev[p]
                        if tau < arrival_get(v, _INF):
                            arrival[v] = float(tau)
                        progressed = True
                    else:
                        remaining.append(p)
                work = remaining
            i = j
        index.next_pos = i

    # ------------------------------------------------------------------
    # Window slicing
    # ------------------------------------------------------------------
    def included_between(
        self, tau_s: Timestamp, lo: Timestamp, hi: Timestamp
    ) -> Iterator[tuple[NodeId, NodeId, Timestamp, float]]:
        """Included edges with stamps in ``[lo, hi]`` for start ``tau_s``.

        Unfiltered (sink-out / source-in edges are present, as from
        :func:`~repro.core.transform.reachable_edges`); callers apply the
        assemble filter themselves.  This is the incremental engine's
        replacement for its per-extension ``reachable_edges`` call.
        """
        if hi < lo:
            return
        index = self.start_index(tau_s, upto=hi)
        eu = self._eu
        ev = self._ev
        ecap = self._ecap
        taus = index.taus
        start = bisect_left(taus, lo)
        stop = bisect_right(taus, hi)
        for k in range(start, stop):
            p = index.positions[k]
            yield (eu[p], ev[p], taus[k], ecap[p])

    def materialize(self, tau_s: Timestamp, tau_e: Timestamp) -> "SkeletonWindow":
        """Slice ``N_[tau_s, tau_e]`` directly into a detached residual arena.

        One pass over the bisect-found position prefix builds the flat
        ``heads`` / ``caps`` / ``rev`` / ``slots`` arrays the persistent
        Dinic kernel runs on — no :class:`FlowNetwork`, no ``Arc`` objects,
        no per-node label dicts beyond one current-timeline-position map.

        Raises:
            InvalidIntervalError: when ``tau_e < tau_s``.
            GraphError: when the temporal network mutated after compile.
        """
        if tau_e < tau_s:
            raise InvalidIntervalError(f"window [{tau_s}, {tau_e}] is reversed")
        index = self.start_index(tau_s, upto=tau_e)
        taus = index.taus
        positions = index.positions
        stop = bisect_right(taus, tau_e)

        eu = self._eu
        ev = self._ev
        ecap = self._ecap
        keep = self._keep
        source = self.source
        sink = self.sink

        heads: list[int] = []
        caps: list[float] = []
        rev: list[int] = []
        slots: list[list[int]] = [[]]
        heads_append = heads.append
        caps_append = caps.append
        rev_append = rev.append

        # Timeline state per temporal node: the arena index and stamp of
        # its latest materialised timeline node.  The source is pre-seeded
        # at tau_s (assemble always gives it that stamp).
        cur_node: dict[NodeId, int] = {source: 0}
        cur_tau: dict[NodeId, Timestamp] = {source: tau_s}
        n_nodes = 1
        n_edges = 0
        source_arcs: list[int] = []

        def timeline_node(node: NodeId, tau: Timestamp) -> int:
            """Arena index of ``<node, tau>``, chaining hold edges."""
            nonlocal n_nodes, n_edges
            at = cur_node.get(node)
            if at is not None and cur_tau[node] == tau:
                return at
            index_new = n_nodes
            n_nodes += 1
            slots.append([])
            if at is not None:
                # Hold edge <node, prev> -> <node, tau>, capacity inf.
                k = len(heads)
                heads_append(index_new)
                caps_append(_INF)
                rev_append(k + 1)
                heads_append(at)
                caps_append(0.0)
                rev_append(k)
                slots[at].append(k)
                slots[index_new].append(k + 1)
                n_edges += 1
            cur_node[node] = index_new
            cur_tau[node] = tau
            return index_new

        for k in range(stop):
            p = positions[k]
            if not keep[p]:
                continue
            u = eu[p]
            v = ev[p]
            tau = taus[k]
            tail = timeline_node(u, tau)
            head = timeline_node(v, tau)
            slot = len(heads)
            heads_append(head)
            caps_append(ecap[p])
            rev_append(slot + 1)
            heads_append(tail)
            caps_append(0.0)
            rev_append(slot)
            slots[tail].append(slot)
            slots[head].append(slot + 1)
            n_edges += 1
            if u == source:
                source_arcs.append(slot)

        # assemble() always gives the sink the stamp tau_e; timeline_node
        # reuses the existing node when the last sink stamp is already tau_e.
        sink_index = timeline_node(sink, tau_e)

        arena = ResidualArena.detached(heads, caps, rev, slots)
        return SkeletonWindow(
            skeleton=self,
            tau_s=tau_s,
            tau_e=tau_e,
            arena=arena,
            source_index=0,
            sink_index=sink_index,
            num_nodes=n_nodes,
            num_edges=n_edges,
            source_arc_slots=source_arcs,
        )


class SkeletonWindow:
    """One candidate window, materialised as a detached residual arena.

    The arena is private to this window (fresh zero-flow residual state);
    :meth:`maxflow` runs the persistent flat Dinic kernel on it directly.
    :meth:`to_flow_network` lazily rebuilds the byte-identical
    :class:`~repro.core.transform.TransformedNetwork` object graph for
    certificates and debugging.
    """

    __slots__ = (
        "skeleton",
        "tau_s",
        "tau_e",
        "arena",
        "source_index",
        "sink_index",
        "num_nodes",
        "num_edges",
        "source_arc_slots",
    )

    def __init__(
        self,
        *,
        skeleton: WindowSkeleton,
        tau_s: Timestamp,
        tau_e: Timestamp,
        arena: ResidualArena,
        source_index: int,
        sink_index: int,
        num_nodes: int,
        num_edges: int,
        source_arc_slots: list[int],
    ) -> None:
        self.skeleton = skeleton
        self.tau_s = tau_s
        self.tau_e = tau_e
        self.arena = arena
        self.source_index = source_index
        self.sink_index = sink_index
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.source_arc_slots = source_arc_slots

    def maxflow(
        self,
        *,
        value_bound: float | None = None,
        kernel: str = "persistent",
    ) -> MaxflowRun:
        """Run an arena kernel on this window's arena.

        ``kernel`` names any arena kernel (``"persistent"``,
        ``"vectorized"``, ``"push_relabel"``, ``"adaptive"``); the engine's
        ``"object"`` kernel never reaches here — skeleton windows are
        detached arenas with no object graph to walk.
        """
        from repro.flownet.algorithms.selector import arena_solve

        return arena_solve(
            self.arena,
            self.source_index,
            self.sink_index,
            kernel=kernel if kernel != "object" else "persistent",
            value_bound=value_bound,
        )

    def flow_value(self) -> float:
        """``|f|`` — flow routed on capacity edges leaving the source timeline."""
        caps = self.arena.caps
        rev = self.arena.rev
        return sum(caps[rev[slot]] for slot in self.source_arc_slots)

    def to_flow_network(self):
        """The byte-identical object-graph transform (escape hatch).

        Delegates to :func:`~repro.core.transform.assemble` over this
        window's included-edge slice, so the result equals
        :func:`~repro.core.transform.build_transformed_network` exactly —
        node ordering, edge handles and all.  Routed flow is *not*
        replayed; the object graph starts at zero flow.
        """
        from repro.core.transform import assemble

        skeleton = self.skeleton
        included = list(
            skeleton.included_between(self.tau_s, self.tau_s, self.tau_e)
        )
        return assemble(
            skeleton.temporal,
            skeleton.source,
            skeleton.sink,
            self.tau_s,
            self.tau_e,
            included,
        )
