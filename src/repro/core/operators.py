"""The flow-network operators of Section 5: ``⊎``, ``\\``, ``Δ`` and ``N(P)``.

The incremental algorithms (BFQ+/BFQ*) realise these operators directly as
in-place mutations of the live residual network for speed.  This module
provides the *declarative* counterparts on plain capacity maps, for three
purposes:

* unit/property tests of the operator algebra (e.g. that combining and
  subtracting round-trips, Example 7's withdrawal identity);
* documentation — the code here matches the paper's definitions line by
  line;
* cross-checking the in-place implementations on small networks.

A flow network is represented as a :class:`CapacityMap`: a dict from
directed edges (pairs of hashable labels) to capacities.  Nodes are
implicit (the endpoints of the edges).
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import GraphError

Node = Hashable
Edge = tuple[Node, Node]
CapacityMap = dict[Edge, float]


def combine(a: Mapping[Edge, float], b: Mapping[Edge, float]) -> CapacityMap:
    """The ``⊎`` operator: union with capacity merging on common edges.

    ``C(e) = C_a(e) + C_b(e)`` on common edges, and the sole operand's
    capacity elsewhere.  Infinite capacities absorb addition.
    """
    result: CapacityMap = dict(a)
    for edge, capacity in b.items():
        if edge in result:
            result[edge] = result[edge] + capacity
        else:
            result[edge] = capacity
    return result


def subtract(a: Mapping[Edge, float], b: Mapping[Edge, float]) -> CapacityMap:
    """The ``\\`` operator: reduce common-edge capacities of ``a`` by ``b``.

    Edges of ``a`` not in ``b`` keep their capacity; common edges keep
    ``C_a - C_b`` (edges whose capacity drops to zero or below are removed,
    matching the residual-network convention that zero-capacity edges do
    not exist); edges only in ``b`` do not appear.

    Raises:
        GraphError: if a common edge would go *strictly* negative beyond
            floating tolerance — the paper's operator is only applied when
            ``b``'s capacities are dominated by ``a``'s.
    """
    result: CapacityMap = {}
    for edge, capacity in a.items():
        reduction = b.get(edge, 0.0)
        if math.isinf(capacity):
            result[edge] = capacity
            continue
        remaining = capacity - reduction
        if remaining < -1e-9:
            raise GraphError(
                f"subtract would make edge {edge!r} negative ({remaining})"
            )
        if remaining > 1e-12:
            result[edge] = remaining
    return result


def inject_timestamp(
    capacities: Mapping[Edge, float], tau: int
) -> CapacityMap:
    """The timestamp-injection operator ``Δ_tau`` on a transformed network.

    Edge labels must be transformed nodes ``(node, timestamp)``.  Every
    *hold* edge ``(<u, a>, <u, b>)`` with ``a < tau < b`` (or the reverse
    residual orientation ``b < tau < a``) is replaced by the two edges
    through the new node ``<u, tau>``, each keeping the original capacity.
    Edges of nodes that already have a ``<u, tau>`` node are untouched.
    """
    nodes_with_tau = {
        node for (tail, head) in capacities for (node, stamp) in (tail, head)
        if stamp == tau
    }
    result: CapacityMap = {}
    for (tail, head), capacity in capacities.items():
        (u, a), (v, b) = tail, head
        spans = u == v and (a < tau < b or b < tau < a) and u not in nodes_with_tau
        if not spans:
            result[(tail, head)] = capacity
            continue
        middle = (u, tau)
        result[(tail, middle)] = _merge_parallel(result, (tail, middle), capacity)
        result[(middle, head)] = _merge_parallel(result, (middle, head), capacity)
    return result


def _merge_parallel(result: CapacityMap, edge: Edge, capacity: float) -> float:
    existing = result.get(edge, 0.0)
    if math.isinf(capacity) or math.isinf(existing):
        return math.inf
    return existing + capacity


def augmenting_flow_network(
    paths: Iterable[tuple[Sequence[Node], float]],
) -> CapacityMap:
    """``N(P)`` — the augmenting flow network of a set of paths (Def. 3).

    Each element of ``paths`` is ``(node sequence, Flow(p))``.  For every
    directed edge ``(u, v)`` touched by some path in either direction,
    ``C'(u, v)`` is the total flow of paths traversing ``(u, v)`` minus the
    total flow of paths traversing ``(v, u)`` — so combining ``N(P)`` with a
    residual network *withdraws* the paths' flow (Example 7).
    """
    result: CapacityMap = {}
    for nodes, flow in paths:
        if flow < 0:
            raise GraphError(f"augmenting path flow must be >= 0, got {flow}")
        for i in range(len(nodes) - 1):
            u, v = nodes[i], nodes[i + 1]
            result[(u, v)] = result.get((u, v), 0.0) + flow
            result[(v, u)] = result.get((v, u), 0.0) - flow
    return result


def residual_of(
    capacities: Mapping[Edge, float], flow: Mapping[Edge, float]
) -> CapacityMap:
    """The residual network of a capacity map w.r.t. a flow (Section 3.1).

    ``C_f(u, v) = C(u, v) - f(u, v)`` and ``C_f(v, u) = f(u, v)``; edges of
    zero residual capacity are omitted.
    """
    result: CapacityMap = {}
    for (u, v), capacity in capacities.items():
        routed = flow.get((u, v), 0.0)
        if routed < -1e-9 or (not math.isinf(capacity) and routed > capacity + 1e-9):
            raise GraphError(
                f"flow {routed} on edge ({u!r}, {v!r}) violates capacity {capacity}"
            )
        forward = capacity if math.isinf(capacity) else capacity - routed
        if forward > 1e-12:
            result[(u, v)] = result.get((u, v), 0.0) + forward
        if routed > 1e-12:
            result[(v, u)] = result.get((v, u), 0.0) + routed
    return result


def capacity_map_of(flow_network) -> CapacityMap:
    """Snapshot a live :class:`~repro.flownet.network.FlowNetwork`'s residual
    capacities as a :class:`CapacityMap` (labels as nodes).

    Zero-capacity arcs are omitted, matching the residual convention.
    Retired endpoints are skipped.
    """
    result: CapacityMap = {}
    for tail in flow_network.active_indices():
        for arc in flow_network.arcs_of(tail):
            if flow_network.is_retired(arc.head) or arc.cap <= 1e-12:
                continue
            edge = (flow_network.label_of(tail), flow_network.label_of(arc.head))
            result[edge] = _merge_parallel(result, edge, arc.cap)
    return result
