"""Shared process-pool harness for the batch layers.

:func:`repro.core.batch.answer_many`, :func:`repro.core.batch.bfq_parallel`
and the planner's group fan-out all shard work over a
:class:`~concurrent.futures.ProcessPoolExecutor` with the same discipline;
:func:`run_pool` is that discipline, factored out once:

* worker state travels through ``initializer``/``initargs`` (pickled for
  ``spawn``/``forkserver``, inherited-then-overwritten for ``fork``), so
  every start method produces identical results;
* a :class:`~concurrent.futures.process.BrokenProcessPool` (OOM-killed or
  segfaulted worker) rebuilds the pool once and resubmits only the
  payloads that had not finished; a second crash is systemic and
  propagates;
* an *ordinary* exception from one payload fails the batch fast: queued
  siblings are cancelled (already-running ones cannot be interrupted, but
  their results are discarded with the pool) and a
  :class:`~repro.exceptions.BatchQueryError` identifies exactly which
  item failed.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.exceptions import BatchQueryError


def run_pool(
    payloads: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    max_workers: int,
    context: Any,
    initializer: Callable[..., None],
    initargs: tuple,
    describe: Callable[[int], Any] = lambda index: index,
) -> list[Any]:
    """Run ``worker(payload)`` in pool processes; results align with input.

    Args:
        payloads: the work items, submitted in order.
        worker: top-level picklable callable run in the workers.
        max_workers: pool size (capped at the number of pending payloads).
        context: a ``multiprocessing`` context (start method already chosen).
        initializer / initargs: per-process state installation.
        describe: maps a payload index to the object named in the
            :class:`BatchQueryError` raised on failure (default: the index).

    Raises:
        BatchQueryError: a payload raised an ordinary exception; its
            siblings were cancelled.
        BrokenProcessPool: workers died twice (systemic crash).
    """
    results: list[Any] = [None] * len(payloads)
    done = [False] * len(payloads)
    pending = list(range(len(payloads)))
    rebuilt = False
    while pending:
        futures: dict[int, Future] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=min(max_workers, len(pending)),
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                for index in pending:
                    futures[index] = pool.submit(worker, payloads[index])
                for index, future in futures.items():
                    try:
                        results[index] = future.result()
                        done[index] = True
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:
                        # Fail fast: without this, one bad query would
                        # abort the batch while every sibling future ran
                        # to completion inside the executor's __exit__.
                        for other in futures.values():
                            other.cancel()
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise BatchQueryError(index, describe(index), exc) from exc
            pending = []
        except BrokenProcessPool:
            # A worker died (OOM-killed, segfaulted C extension, ...).
            # Harvest everything that finished before the crash and
            # rebuild the pool once for the remainder.
            if rebuilt:
                raise
            rebuilt = True
            for index, future in futures.items():
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    results[index] = future.result()
                    done[index] = True
            pending = [i for i in pending if not done[i]]
    return results
