"""Query and result types for the delta-BFlow problem.

A :class:`BurstingFlowQuery` is the triple ``(s, t, delta)`` of Definition 2.
A :class:`BurstingFlowResult` is the paper's *binary record*: the flow
density and the bursting interval of the found delta-BFlow, augmented with
the flow value and with :class:`QueryStats` instrumentation that the
benchmark harness uses to regenerate the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable

from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class BurstingFlowQuery:
    """A delta-BFlow query ``Q = (s, t, delta)``.

    Attributes:
        source: the source node ``s``.
        sink: the sink node ``t``.
        delta: minimum bursting-interval length (in timestamp units,
            ``tau_e - tau_s >= delta``); must be at least 1.
    """

    source: NodeId
    sink: NodeId
    delta: int

    def __post_init__(self) -> None:
        if self.source == self.sink:
            raise InvalidQueryError("source and sink must differ")
        if not isinstance(self.delta, int) or isinstance(self.delta, bool):
            raise InvalidQueryError(f"delta must be an int, got {self.delta!r}")
        if self.delta < 1:
            raise InvalidQueryError(f"delta must be >= 1, got {self.delta}")

    def validate_against(self, network: TemporalFlowNetwork) -> None:
        """Check that both endpoints exist in ``network``."""
        for node in (self.source, self.sink):
            if node not in network:
                raise InvalidQueryError(f"query node {node!r} not in network")


@dataclass(slots=True)
class IntervalSample:
    """One per-candidate-interval measurement (feeds EXP-3 / EXP-4).

    Attributes:
        interval: the candidate ``[tau_s, tau_e]``.
        network_size: ``|V'|`` — active node count of the transformed
            network the Maxflow ran on.
        mode: how the Maxflow was obtained — ``"dinic"`` (from scratch),
            ``"maxflow+"`` (insertion case) or ``"maxflow-"`` (deletion
            case); ``"pruned"`` when Observation 2 skipped the run.
        maxflow_seconds: time spent finding augmenting paths.
        transform_seconds: time spent building/updating the transformed
            network for this candidate.
        flow_value: the Maxflow value known after this candidate.
    """

    interval: tuple[Timestamp, Timestamp]
    network_size: int
    mode: str
    maxflow_seconds: float
    transform_seconds: float
    flow_value: float


@dataclass(slots=True)
class QueryStats:
    """Instrumentation accumulated while answering one query."""

    candidates_enumerated: int = 0
    maxflow_runs: int = 0
    incremental_insertions: int = 0
    incremental_deletions: int = 0
    pruned_intervals: int = 0
    augmenting_paths: int = 0
    transform_seconds: float = 0.0
    maxflow_seconds: float = 0.0
    #: Time spent computing Observation-2 pruning bounds (sink-capacity
    #: window sums and the prune decision) — kept out of transform time so
    #: the phase breakdown attributes each second to the work that caused
    #: it.
    prune_seconds: float = 0.0
    #: Per-kernel accounting: how many maxflow runs each engine kernel
    #: executed and how much wall time they took.  Under
    #: ``kernel="adaptive"`` the keys are the *concrete* kernels chosen
    #: (the :class:`~repro.flownet.algorithms.base.MaxflowRun` is stamped
    #: by the arena dispatch), so adaptive decisions are visible in every
    #: ``--profile`` output and ``/metrics`` snapshot.
    kernel_runs: dict[str, int] = field(default_factory=dict)
    kernel_seconds: dict[str, float] = field(default_factory=dict)
    samples: list[IntervalSample] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Transform plus Maxflow plus pruning time."""
        return self.transform_seconds + self.maxflow_seconds + self.prune_seconds

    def phase_seconds(self) -> dict[str, float | dict[str, float]]:
        """The phase breakdown as a plain dict (feeds ``--profile`` and
        the service ``/metrics`` snapshot).  All entries are flat floats
        except ``"kernels"``, a nested per-kernel seconds dict present
        only when per-kernel accounting recorded anything."""
        phases: dict[str, float | dict[str, float]] = {
            "transform": self.transform_seconds,
            "maxflow": self.maxflow_seconds,
            "prune": self.prune_seconds,
        }
        if self.kernel_seconds:
            phases["kernels"] = dict(self.kernel_seconds)
        return phases

    def note_kernel(self, kernel: str | None, seconds: float) -> None:
        """Attribute one maxflow run to the kernel that executed it."""
        if kernel is None:
            return
        self.kernel_runs[kernel] = self.kernel_runs.get(kernel, 0) + 1
        self.kernel_seconds[kernel] = (
            self.kernel_seconds.get(kernel, 0.0) + seconds
        )

    def record_sample(self, sample: IntervalSample) -> None:
        """Append a per-interval sample, accumulating its timings."""
        self.samples.append(sample)
        self.transform_seconds += sample.transform_seconds
        self.maxflow_seconds += sample.maxflow_seconds


def merge_query_stats(parts: Iterable[QueryStats]) -> QueryStats:
    """Merge per-chunk :class:`QueryStats` into one, field-derived.

    Every counter and timing field declared on the dataclass is summed and
    ``samples`` are concatenated in chunk order — the merge is driven by
    ``dataclasses.fields`` so a field added later can never be silently
    dropped from merged results (the bug the old hand-copied field list in
    ``bfq_parallel`` had).  Samples are extended directly, *not* replayed
    through :meth:`QueryStats.record_sample`, because the parts'
    ``transform_seconds`` / ``maxflow_seconds`` already include their
    samples' timings; replaying would double-count them.
    """
    merged = QueryStats()
    for part in parts:
        for spec in fields(QueryStats):
            if spec.name == "samples":
                merged.samples.extend(part.samples)
                continue
            value = getattr(part, spec.name)
            if isinstance(value, dict):
                # Per-kernel dicts merge key-wise (counts and seconds both
                # add), not by ``+``.
                target = getattr(merged, spec.name)
                for key, amount in value.items():
                    target[key] = target.get(key, type(amount)()) + amount
                continue
            setattr(merged, spec.name, getattr(merged, spec.name) + value)
    return merged


@dataclass(slots=True)
class BurstingFlowResult:
    """The answer to a delta-BFlow query.

    ``density`` is zero and ``interval`` is ``None`` when no positive flow
    satisfies the delta constraint (including the degenerate case where the
    network's horizon is shorter than delta).
    """

    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def found(self) -> bool:
        """Whether a positive-density bursting flow exists."""
        return self.interval is not None and self.density > 0

    def binary_record(self) -> tuple[float, tuple[Timestamp, Timestamp] | None]:
        """The paper's ``(density, [tau_s, tau_e])`` record."""
        return (self.density, self.interval)

    def better_than(self, other: "BurstingFlowResult") -> bool:
        """Strictly higher density than another result."""
        return self.density > other.density
