"""BFQ* — incremental Maxflow of both cases (Algorithm 3).

BFQ* adds the *deletion case* on top of BFQ+.  The minimal window
``[tau_s', tau_s' + delta]`` for the next starting timestamp ``tau_s'`` is
not rebuilt from scratch; it is derived from the running state for the
current ``tau_s`` by:

1. snapshotting the state the moment the insertion sweep for ``tau_s``
   passes ``tau_s' + delta`` (the zig-zag of Figure 5(c)), extending the
   snapshot's end to exactly ``tau_s' + delta``;
2. *advancing the start* of the snapshot to ``tau_s'`` — timestamp
   injection, boundary-flow withdrawal through a virtual node and a reverse
   Dinic run, and prefix retirement (Lemma 4/5); and
3. resuming Dinic on the result to obtain ``MF[tau_s', tau_s' + delta]``.

The snapshot then becomes the running state for the ``tau_s'`` iteration,
and the insertion sweep for the current ``tau_s`` continues unchanged.

As in BFQ+, ``transform="skeleton"`` (default) compiles one
:class:`~repro.core.skeleton.WindowSkeleton` per query, shared by the
running state and every snapshot it spawns — extensions after an
``advance_start`` slice the per-start index of the *new* start instead of
rebuilding arrival labels over the live graph.
"""

from __future__ import annotations

import time

from repro.core.bfq_plus import _evaluate_corner
from repro.core.incremental import DEFAULT_KERNEL, IncrementalTransformedNetwork
from repro.core.intervals import CandidatePlan, enumerate_candidates
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord, should_prune
from repro.core.skeleton import DEFAULT_TRANSFORM, WindowSkeleton, validate_transform
from repro.temporal.edge import Timestamp
from repro.temporal.network import TemporalFlowNetwork


def bfq_star(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    use_pruning: bool = True,
    kernel: str = DEFAULT_KERNEL,
    transform: str = DEFAULT_TRANSFORM,
) -> BurstingFlowResult:
    """Answer ``query`` with BFQ* (insertion + deletion incremental Maxflow).

    Args:
        network: the temporal flow network.
        query: the delta-BFlow query.
        use_pruning: apply Observation 2 during the insertion sweeps.
        kernel: maxflow kernel for the incremental states (any name in
            :data:`repro.flownet.algorithms.registry.ENGINE_KERNELS`; see
            :mod:`repro.core.incremental`).
        transform: edge-inclusion backend — ``"skeleton"`` (one compiled
            per-query index, default) or ``"object"``.
    """
    query.validate_against(network)
    transform = validate_transform(transform)
    stats = QueryStats()
    plan: CandidatePlan = enumerate_candidates(
        network, query.source, query.sink, query.delta
    )
    best = BestRecord()
    skeleton: WindowSkeleton | None = None
    if transform == "skeleton" and (plan.starts or plan.corner is not None):
        t0 = time.perf_counter()
        skeleton = WindowSkeleton(network, query.source, query.sink)
        stats.transform_seconds += time.perf_counter() - t0

    if plan.starts:
        _zigzag(
            network,
            query,
            plan,
            best,
            stats,
            use_pruning=use_pruning,
            kernel=kernel,
            transform=transform,
            skeleton=skeleton,
        )
    _evaluate_corner(
        network,
        query,
        plan,
        best,
        stats,
        kernel=kernel,
        transform=transform,
        skeleton=skeleton,
    )

    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )


def _zigzag(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    plan: CandidatePlan,
    best: BestRecord,
    stats: QueryStats,
    *,
    use_pruning: bool,
    kernel: str = DEFAULT_KERNEL,
    transform: str = DEFAULT_TRANSFORM,
    skeleton: WindowSkeleton | None = None,
) -> None:
    """The Figure 5(c) evaluation pattern over all starting timestamps."""
    delta = plan.delta
    first_start = plan.starts[0]
    state = _fresh_minimal_state(
        network,
        query,
        first_start,
        delta,
        best,
        stats,
        kernel=kernel,
        transform=transform,
        skeleton=skeleton,
    )

    for position, tau_s in enumerate(plan.starts):
        next_start = (
            plan.starts[position + 1] if position + 1 < len(plan.starts) else None
        )
        successor: IncrementalTransformedNetwork | None = None

        flow_value = state.flow_value()
        pending_sink_capacity = 0.0
        for tau_e_next in plan.endings_for(tau_s):
            if (
                next_start is not None
                and successor is None
                and tau_e_next >= next_start + delta
            ):
                successor = _branch_for_next_start(
                    state, next_start, delta, best, stats
                )
            stats.candidates_enumerated += 1
            t0 = time.perf_counter()
            pending_sink_capacity += network.sink_capacity_in_window(
                query.sink, state.tau_e + 1, tau_e_next
            )
            tp = time.perf_counter()
            state.extend_end(tau_e_next)
            t1 = time.perf_counter()
            stats.prune_seconds += tp - t0
            stats.incremental_insertions += 1

            upper_bound = flow_value + pending_sink_capacity
            if use_pruning and should_prune(
                upper_bound, best.density, tau_e_next - tau_s
            ):
                stats.pruned_intervals += 1
                stats.record_sample(
                    IntervalSample(
                        interval=(tau_s, tau_e_next),
                        network_size=state.num_nodes,
                        mode="pruned",
                        maxflow_seconds=0.0,
                        transform_seconds=t1 - tp,
                        flow_value=flow_value,
                    )
                )
                continue
            run = state.run_maxflow(value_bound=pending_sink_capacity)
            t2 = time.perf_counter()
            stats.maxflow_runs += 1
            stats.note_kernel(run.kernel, t2 - t1)
            stats.augmenting_paths += run.augmenting_paths
            flow_value = state.flow_value()
            pending_sink_capacity = 0.0
            stats.record_sample(
                IntervalSample(
                    interval=(tau_s, tau_e_next),
                    network_size=state.num_nodes,
                    mode="maxflow+",
                    maxflow_seconds=t2 - t1,
                    transform_seconds=t1 - tp,
                    flow_value=flow_value,
                )
            )
            best.offer(flow_value, tau_s, tau_e_next)

        if next_start is None:
            break
        if successor is None:
            # The sweep never reached next_start + delta (or had no endings
            # at all): derive the successor from the current state instead.
            successor = _branch_for_next_start(state, next_start, delta, best, stats)
        state = successor


def _fresh_minimal_state(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    tau_s: Timestamp,
    delta: int,
    best: BestRecord,
    stats: QueryStats,
    *,
    kernel: str = DEFAULT_KERNEL,
    transform: str = DEFAULT_TRANSFORM,
    skeleton: WindowSkeleton | None = None,
) -> IncrementalTransformedNetwork:
    """Build and solve the very first minimal window (Lines 3-5)."""
    stats.candidates_enumerated += 1
    t0 = time.perf_counter()
    state = IncrementalTransformedNetwork(
        network,
        query.source,
        query.sink,
        tau_s,
        tau_s + delta,
        kernel=kernel,
        transform=transform,
        skeleton=skeleton,
    )
    t1 = time.perf_counter()
    run = state.run_maxflow()
    t2 = time.perf_counter()
    stats.maxflow_runs += 1
    stats.note_kernel(run.kernel, t2 - t1)
    stats.augmenting_paths += run.augmenting_paths
    flow_value = state.flow_value()
    stats.record_sample(
        IntervalSample(
            interval=(tau_s, tau_s + delta),
            network_size=state.num_nodes,
            mode="dinic",
            maxflow_seconds=t2 - t1,
            transform_seconds=t1 - t0,
            flow_value=flow_value,
        )
    )
    best.offer(flow_value, tau_s, tau_s + delta)
    return state


def _branch_for_next_start(
    state: IncrementalTransformedNetwork,
    next_start: Timestamp,
    delta: int,
    best: BestRecord,
    stats: QueryStats,
) -> IncrementalTransformedNetwork:
    """Lines 9-13: snapshot, shrink to ``[next_start, next_start + delta]``.

    Clones the running state, extends the clone's end to exactly
    ``next_start + delta`` when needed, withdraws the pre-``next_start``
    flow (IncreMaxFlow-), and resumes Dinic for the minimal window of the
    next starting timestamp.  The clone shares the query's compiled
    skeleton, so the extension slices the per-start index directly.
    """
    stats.candidates_enumerated += 1
    t0 = time.perf_counter()
    successor = state.clone()
    target_end = next_start + delta
    if successor.tau_e < target_end:
        successor.extend_end(target_end)
        stats.incremental_insertions += 1
    successor.advance_start(next_start)
    t1 = time.perf_counter()
    stats.incremental_deletions += 1
    run = successor.run_maxflow()
    t2 = time.perf_counter()
    stats.maxflow_runs += 1
    stats.note_kernel(run.kernel, t2 - t1)
    stats.augmenting_paths += run.augmenting_paths
    flow_value = successor.flow_value()
    stats.record_sample(
        IntervalSample(
            interval=(next_start, target_end),
            network_size=successor.num_nodes,
            mode="maxflow-",
            maxflow_seconds=t2 - t1,
            transform_seconds=t1 - t0,
            flow_value=flow_value,
        )
    )
    best.offer(flow_value, next_start, target_end)
    return successor
