"""Unified front door for delta-BFlow queries.

:func:`find_bursting_flow` dispatches to BFQ / BFQ+ / BFQ* (or a baseline
registered under :data:`ALGORITHMS`) and is the API most applications
should use::

    from repro import find_bursting_flow, BurstingFlowQuery

    result = find_bursting_flow(network, BurstingFlowQuery("alice", "mallory", 5))
    print(result.density, result.interval)
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.baselines.naive import naive_bfq
from repro.core.bfq import bfq
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.core.skeleton import KNOWN_TRANSFORMS
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId
from repro.temporal.network import TemporalFlowNetwork


class BurstingFlowAlgorithm(Protocol):
    """Callable protocol of every delta-BFlow solution."""

    def __call__(
        self, network: TemporalFlowNetwork, query: BurstingFlowQuery
    ) -> BurstingFlowResult:  # pragma: no cover - protocol definition
        ...


def _networkx_bfq(
    network: TemporalFlowNetwork, query: BurstingFlowQuery, **kwargs
) -> BurstingFlowResult:
    """Lazy wrapper so the engine works without networkx installed."""
    try:
        from repro.baselines.networkx_backend import networkx_bfq
    except ImportError:
        raise InvalidQueryError(
            "algorithm 'networkx' requires the optional networkx package"
        ) from None
    return networkx_bfq(network, query, **kwargs)


ALGORITHMS: dict[str, Callable[..., BurstingFlowResult]] = {
    "bfq": bfq,
    "bfq+": bfq_plus,
    "bfq*": bfq_star,
    # Reference baselines — exact but slow; for cross-checks and benchmarks.
    "naive": naive_bfq,
    "networkx": _networkx_bfq,
}

#: The default (fastest exact) solution.
DEFAULT_ALGORITHM = "bfq*"

#: Algorithms whose incremental state accepts a ``kernel=`` choice
#: (``"persistent"`` flat-array Dinic vs the ``"object"`` graph kernel).
KERNEL_ALGORITHMS = frozenset({"bfq+", "bfq*"})

#: Algorithms that accept a ``transform=`` choice (``"skeleton"`` compiled
#: per-query window index vs the ``"object"`` per-window rebuild).
TRANSFORM_ALGORITHMS = frozenset({"bfq", "bfq+", "bfq*"})


def get_algorithm(name: str) -> Callable[..., BurstingFlowResult]:
    """Resolve a delta-BFlow algorithm by name (case-insensitive).

    Raises:
        InvalidQueryError: for unknown names.
    """
    try:
        return ALGORITHMS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise InvalidQueryError(
            f"unknown algorithm {name!r}; known: {known}"
        ) from None


def find_bursting_flow(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery | None = None,
    *,
    source: NodeId | None = None,
    sink: NodeId | None = None,
    delta: int | None = None,
    algorithm: str = DEFAULT_ALGORITHM,
    kernel: str | None = None,
    transform: str | None = None,
    parallel_windows: int | None = None,
    **kwargs,
) -> BurstingFlowResult:
    """Find the delta-BFlow for a query.

    The query can be given either as a :class:`BurstingFlowQuery` or via
    the ``source``/``sink``/``delta`` keywords.

    Args:
        network: the temporal flow network to query.
        query: a prepared query object (mutually exclusive with keywords).
        source / sink / delta: inline query parameters.
        algorithm: ``"bfq"``, ``"bfq+"``, ``"bfq*"`` (default), or a
            reference baseline — ``"naive"`` (brute-force window
            enumeration) or ``"networkx"`` (BFQ with NetworkX Maxflow).
        kernel: maxflow kernel for the incremental solutions — any name
            in :data:`repro.flownet.algorithms.registry.ENGINE_KERNELS`:
            ``"persistent"`` (flat-array, default), ``"vectorized"``
            (numpy BFS phases), ``"push_relabel"`` (dense-window preflow),
            ``"adaptive"`` (per-window selection) or ``"object"``; only
            valid with ``algorithm`` in ``"bfq+"``/``"bfq*"``.
        transform: window-transform strategy — ``"skeleton"`` (compile the
            query's window skeleton once and slice candidates into
            detached residual arenas; the default) or ``"object"``
            (per-window object-graph rebuild); only valid with
            ``algorithm`` in ``"bfq"``/``"bfq+"``/``"bfq*"``.
        parallel_windows: shard BFQ's independent candidate windows over
            this many worker processes (``0`` means ``os.cpu_count()``).
            Only valid with ``algorithm="bfq"`` — BFQ+/BFQ* chain state
            across windows and cannot shard.  ``None`` (default) runs
            sequentially; worth it only when per-window Maxflow dominates
            (large dense windows), since workers re-pickle the network.
        **kwargs: forwarded to the algorithm (e.g. ``use_pruning=False``
            for the incremental solutions, ``solver="push-relabel"`` for
            BFQ).

    Returns:
        The best :class:`BurstingFlowResult` (density 0 / interval ``None``
        when no qualifying flow exists).
    """
    if query is None:
        if source is None or sink is None or delta is None:
            raise InvalidQueryError(
                "provide either a BurstingFlowQuery or source, sink and delta"
            )
        query = BurstingFlowQuery(source, sink, delta)
    elif source is not None or sink is not None or delta is not None:
        raise InvalidQueryError(
            "pass either a query object or keywords, not both"
        )
    if kernel is not None:
        if algorithm.lower() not in KERNEL_ALGORITHMS:
            raise InvalidQueryError(
                f"kernel={kernel!r} only applies to "
                f"{', '.join(sorted(KERNEL_ALGORITHMS))}; "
                f"algorithm {algorithm!r} has no incremental state"
            )
        kwargs["kernel"] = kernel
    if transform is not None:
        if algorithm.lower() not in TRANSFORM_ALGORITHMS:
            raise InvalidQueryError(
                f"transform={transform!r} only applies to "
                f"{', '.join(sorted(TRANSFORM_ALGORITHMS))}; "
                f"algorithm {algorithm!r} has no window transform"
            )
        if transform.lower() not in KNOWN_TRANSFORMS:
            raise InvalidQueryError(
                f"unknown transform {transform!r}; "
                f"known: {', '.join(KNOWN_TRANSFORMS)}"
            )
        kwargs["transform"] = transform.lower()
    if parallel_windows is not None:
        if algorithm.lower() != "bfq":
            raise InvalidQueryError(
                f"parallel_windows only applies to algorithm 'bfq' "
                f"(candidate windows are independent there); "
                f"algorithm {algorithm!r} chains state across windows"
            )
        from repro.core.batch import bfq_parallel  # local: avoid cycle

        return bfq_parallel(
            network, query, processes=parallel_windows, **kwargs
        )
    return get_algorithm(algorithm)(network, query, **kwargs)
