"""Unified front door for delta-BFlow queries.

:func:`find_bursting_flow` dispatches to BFQ / BFQ+ / BFQ* (or a baseline
registered under :data:`ALGORITHMS`) and is the API most applications
should use::

    from repro import find_bursting_flow, BurstingFlowQuery

    result = find_bursting_flow(network, BurstingFlowQuery("alice", "mallory", 5))
    print(result.density, result.interval)
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.baselines.naive import naive_bfq
from repro.core.bfq import bfq
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId
from repro.temporal.network import TemporalFlowNetwork


class BurstingFlowAlgorithm(Protocol):
    """Callable protocol of every delta-BFlow solution."""

    def __call__(
        self, network: TemporalFlowNetwork, query: BurstingFlowQuery
    ) -> BurstingFlowResult:  # pragma: no cover - protocol definition
        ...


def _networkx_bfq(
    network: TemporalFlowNetwork, query: BurstingFlowQuery, **kwargs
) -> BurstingFlowResult:
    """Lazy wrapper so the engine works without networkx installed."""
    try:
        from repro.baselines.networkx_backend import networkx_bfq
    except ImportError:
        raise InvalidQueryError(
            "algorithm 'networkx' requires the optional networkx package"
        ) from None
    return networkx_bfq(network, query, **kwargs)


ALGORITHMS: dict[str, Callable[..., BurstingFlowResult]] = {
    "bfq": bfq,
    "bfq+": bfq_plus,
    "bfq*": bfq_star,
    # Reference baselines — exact but slow; for cross-checks and benchmarks.
    "naive": naive_bfq,
    "networkx": _networkx_bfq,
}

#: The default (fastest exact) solution.
DEFAULT_ALGORITHM = "bfq*"

#: Algorithms whose incremental state accepts a ``kernel=`` choice
#: (``"persistent"`` flat-array Dinic vs the ``"object"`` graph kernel).
KERNEL_ALGORITHMS = frozenset({"bfq+", "bfq*"})


def get_algorithm(name: str) -> Callable[..., BurstingFlowResult]:
    """Resolve a delta-BFlow algorithm by name (case-insensitive).

    Raises:
        InvalidQueryError: for unknown names.
    """
    try:
        return ALGORITHMS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise InvalidQueryError(
            f"unknown algorithm {name!r}; known: {known}"
        ) from None


def find_bursting_flow(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery | None = None,
    *,
    source: NodeId | None = None,
    sink: NodeId | None = None,
    delta: int | None = None,
    algorithm: str = DEFAULT_ALGORITHM,
    kernel: str | None = None,
    **kwargs,
) -> BurstingFlowResult:
    """Find the delta-BFlow for a query.

    The query can be given either as a :class:`BurstingFlowQuery` or via
    the ``source``/``sink``/``delta`` keywords.

    Args:
        network: the temporal flow network to query.
        query: a prepared query object (mutually exclusive with keywords).
        source / sink / delta: inline query parameters.
        algorithm: ``"bfq"``, ``"bfq+"``, ``"bfq*"`` (default), or a
            reference baseline — ``"naive"`` (brute-force window
            enumeration) or ``"networkx"`` (BFQ with NetworkX Maxflow).
        kernel: maxflow kernel for the incremental solutions —
            ``"persistent"`` (flat-array, default) or ``"object"``; only
            valid with ``algorithm`` in ``"bfq+"``/``"bfq*"``.
        **kwargs: forwarded to the algorithm (e.g. ``use_pruning=False``
            for the incremental solutions, ``solver="push-relabel"`` for
            BFQ).

    Returns:
        The best :class:`BurstingFlowResult` (density 0 / interval ``None``
        when no qualifying flow exists).
    """
    if query is None:
        if source is None or sink is None or delta is None:
            raise InvalidQueryError(
                "provide either a BurstingFlowQuery or source, sink and delta"
            )
        query = BurstingFlowQuery(source, sink, delta)
    elif source is not None or sink is not None or delta is not None:
        raise InvalidQueryError(
            "pass either a query object or keywords, not both"
        )
    if kernel is not None:
        if algorithm.lower() not in KERNEL_ALGORITHMS:
            raise InvalidQueryError(
                f"kernel={kernel!r} only applies to "
                f"{', '.join(sorted(KERNEL_ALGORITHMS))}; "
                f"algorithm {algorithm!r} has no incremental state"
            )
        kwargs["kernel"] = kernel
    return get_algorithm(algorithm)(network, query, **kwargs)
