"""The paper's core contribution: delta-BFlow queries and their solutions."""

from repro.core.batch import KNOWN_PLANS, answer_many, bfq_parallel
from repro.core.bfq import bfq
from repro.core.bfq_plus import bfq_plus
from repro.core.bfq_star import bfq_star
from repro.core.engine import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    find_bursting_flow,
    get_algorithm,
)
from repro.core.incremental import IncrementalTransformedNetwork
from repro.core.profile import (
    PhaseBreakdown,
    ProfilePoint,
    density_profile,
    suggest_delta,
)
from repro.core.skeleton import (
    DEFAULT_TRANSFORM,
    KNOWN_TRANSFORMS,
    SkeletonWindow,
    WindowSkeleton,
    validate_transform,
)
from repro.core.intervals import CandidatePlan, enumerate_candidates, is_core_interval
from repro.core.planner import (
    BurstEntry,
    PlannerReport,
    QueryGroup,
    WindowMemo,
    answer_planned,
    group_queries,
    planner_bfq,
    top_k_bursts,
)
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
    merge_query_stats,
)
from repro.core.record import (
    DENSITY_EPSILON,
    PRUNING_EPSILON,
    BestRecord,
    should_prune,
)
from repro.core.trails import (
    FlowTrail,
    TrailHop,
    TrailReport,
    bursting_flow_trails,
    trails_for_interval,
)
from repro.core.transform import (
    TransformedNetwork,
    build_transformed_network,
    reachable_edges,
)

__all__ = [
    "bfq",
    "answer_many",
    "bfq_parallel",
    "KNOWN_PLANS",
    "answer_planned",
    "group_queries",
    "planner_bfq",
    "top_k_bursts",
    "BurstEntry",
    "PlannerReport",
    "QueryGroup",
    "WindowMemo",
    "merge_query_stats",
    "density_profile",
    "suggest_delta",
    "PhaseBreakdown",
    "ProfilePoint",
    "WindowSkeleton",
    "SkeletonWindow",
    "DEFAULT_TRANSFORM",
    "KNOWN_TRANSFORMS",
    "validate_transform",
    "bursting_flow_trails",
    "trails_for_interval",
    "FlowTrail",
    "TrailHop",
    "TrailReport",
    "bfq_plus",
    "bfq_star",
    "find_bursting_flow",
    "get_algorithm",
    "ALGORITHMS",
    "DEFAULT_ALGORITHM",
    "BurstingFlowQuery",
    "BurstingFlowResult",
    "QueryStats",
    "IntervalSample",
    "BestRecord",
    "should_prune",
    "DENSITY_EPSILON",
    "PRUNING_EPSILON",
    "CandidatePlan",
    "enumerate_candidates",
    "is_core_interval",
    "TransformedNetwork",
    "build_transformed_network",
    "reachable_edges",
    "IncrementalTransformedNetwork",
]
