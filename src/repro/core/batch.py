"""Batch query evaluation.

Applications like the case study issue many delta-BFlow queries over one
network (the S x T sweep).  :func:`answer_many` evaluates a batch with:

* optional multiprocessing fan-out (queries are embarrassingly parallel);
* deterministic result ordering (input order), whatever the scheduling;
* shared validation and a single algorithm resolution.

Worker processes re-import the network via fork inheritance; on platforms
without fork (or when ``processes=None``), the batch runs sequentially —
results are identical either way, which the test-suite asserts.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

from repro.core.engine import find_bursting_flow, get_algorithm
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.temporal.network import TemporalFlowNetwork

# Globals used by fork-based workers (set once per batch in the parent).
_WORKER_NETWORK: TemporalFlowNetwork | None = None
_WORKER_ALGORITHM: str = "bfq*"


def answer_many(
    network: TemporalFlowNetwork,
    queries: Iterable[BurstingFlowQuery],
    *,
    algorithm: str = "bfq*",
    processes: int | None = None,
) -> list[BurstingFlowResult]:
    """Answer a batch of queries; results align with the input order.

    Args:
        network: the shared temporal flow network.
        queries: the batch (materialised internally).
        algorithm: delta-BFlow solution for every query.
        processes: worker processes; ``None`` or ``1`` runs sequentially;
            ``0`` means ``os.cpu_count()``.
    """
    get_algorithm(algorithm)  # fail fast on unknown names
    batch: Sequence[BurstingFlowQuery] = list(queries)
    for query in batch:
        query.validate_against(network)
    if not batch:
        return []
    if processes == 0:
        processes = os.cpu_count() or 1
    if processes is None or processes <= 1 or len(batch) == 1:
        return [
            find_bursting_flow(network, query, algorithm=algorithm)
            for query in batch
        ]
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX fallback
        return [
            find_bursting_flow(network, query, algorithm=algorithm)
            for query in batch
        ]

    global _WORKER_NETWORK, _WORKER_ALGORITHM
    _WORKER_NETWORK = network
    _WORKER_ALGORITHM = algorithm
    try:
        with ProcessPoolExecutor(max_workers=min(processes, len(batch))) as pool:
            results = list(pool.map(_answer_one, batch))
    finally:
        _WORKER_NETWORK = None
    return results


def _answer_one(query: BurstingFlowQuery) -> BurstingFlowResult:
    assert _WORKER_NETWORK is not None, "worker started outside answer_many"
    return find_bursting_flow(
        _WORKER_NETWORK, query, algorithm=_WORKER_ALGORITHM
    )
