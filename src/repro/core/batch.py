"""Batch query evaluation.

Applications like the case study issue many delta-BFlow queries over one
network (the S x T sweep).  :func:`answer_many` evaluates a batch with:

* optional multiprocessing fan-out (queries are embarrassingly parallel);
* deterministic result ordering (input order), whatever the scheduling;
* shared validation and a single algorithm resolution;
* worker-death recovery: a :class:`BrokenProcessPool` (OOM-killed or
  crashed worker) rebuilds the pool once and resubmits only the queries
  that had not finished, instead of losing the whole batch.

Worker processes receive the network and the algorithm name through the
pool's ``initializer``/``initargs`` rather than fork-inherited module
globals, so every start method (``fork``, ``forkserver``, ``spawn``)
produces identical results — the test-suite asserts this against the
sequential path for each available method.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Sequence

from repro.core.engine import DEFAULT_ALGORITHM, find_bursting_flow, get_algorithm
from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.temporal.network import TemporalFlowNetwork

# Per-worker state, set by _init_worker in each pool process.  The parent
# process never assigns these: state travels through initargs (pickled for
# spawn/forkserver, inherited-then-overwritten for fork), which is what
# makes the three start methods equivalent.
_WORKER_NETWORK: TemporalFlowNetwork | None = None
_WORKER_ALGORITHM: str = DEFAULT_ALGORITHM


def _init_worker(network: TemporalFlowNetwork, algorithm: str) -> None:
    """Pool initializer: install the batch's shared state in this worker."""
    global _WORKER_NETWORK, _WORKER_ALGORITHM
    _WORKER_NETWORK = network
    _WORKER_ALGORITHM = algorithm


def _reset_worker_state() -> None:
    """Restore module defaults (also runs in the parent after the batch)."""
    global _WORKER_NETWORK, _WORKER_ALGORITHM
    _WORKER_NETWORK = None
    _WORKER_ALGORITHM = DEFAULT_ALGORITHM


def answer_many(
    network: TemporalFlowNetwork,
    queries: Iterable[BurstingFlowQuery],
    *,
    algorithm: str = DEFAULT_ALGORITHM,
    processes: int | None = None,
    mp_context: str | None = None,
) -> list[BurstingFlowResult]:
    """Answer a batch of queries; results align with the input order.

    Args:
        network: the shared temporal flow network.
        queries: the batch (materialised internally).
        algorithm: delta-BFlow solution for every query.
        processes: worker processes; ``None`` or ``1`` runs sequentially;
            ``0`` means ``os.cpu_count()``.
        mp_context: multiprocessing start method for the worker pool
            (``"fork"``, ``"forkserver"`` or ``"spawn"``); ``None`` uses
            the platform default.  Ignored for sequential runs.
    """
    get_algorithm(algorithm)  # fail fast on unknown names
    batch: Sequence[BurstingFlowQuery] = list(queries)
    for query in batch:
        query.validate_against(network)
    if not batch:
        return []
    if processes == 0:
        processes = os.cpu_count() or 1
    if processes is None or processes <= 1 or len(batch) == 1:
        return [
            find_bursting_flow(network, query, algorithm=algorithm)
            for query in batch
        ]

    context = multiprocessing.get_context(mp_context)
    results: list[BurstingFlowResult | None] = [None] * len(batch)
    pending = list(range(len(batch)))
    rebuilt = False
    try:
        while pending:
            futures: dict[int, Future] = {}
            try:
                with ProcessPoolExecutor(
                    max_workers=min(processes, len(pending)),
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(network, algorithm),
                ) as pool:
                    for index in pending:
                        futures[index] = pool.submit(_answer_one, batch[index])
                    for index, future in futures.items():
                        results[index] = future.result()
                pending = []
            except BrokenProcessPool:
                # A worker died (OOM-killed, segfaulted C extension, ...).
                # Harvest everything that finished before the crash and
                # rebuild the pool once for the remainder; a second crash
                # is systemic and propagates to the caller.
                if rebuilt:
                    raise
                rebuilt = True
                for index, future in futures.items():
                    if future.done() and future.exception() is None:
                        results[index] = future.result()
                pending = [i for i in pending if results[i] is None]
    finally:
        # With fork, workers inherit whatever the parent's module state
        # happens to be at submit time; keeping the parent's copy pristine
        # guarantees a concurrent or subsequent batch can't leak its
        # algorithm (or network) into this one.
        _reset_worker_state()
    return results  # type: ignore[return-value]  # every slot is filled


def _answer_one(query: BurstingFlowQuery) -> BurstingFlowResult:
    assert _WORKER_NETWORK is not None, "worker started outside answer_many"
    return find_bursting_flow(
        _WORKER_NETWORK, query, algorithm=_WORKER_ALGORITHM
    )
