"""Batch query evaluation.

Applications like the case study issue many delta-BFlow queries over one
network (the S x T sweep).  :func:`answer_many` evaluates a batch with:

* optional multiprocessing fan-out (queries are embarrassingly parallel);
* deterministic result ordering (input order), whatever the scheduling;
* shared validation and a single algorithm resolution;
* worker-death recovery: a :class:`BrokenProcessPool` (OOM-killed or
  crashed worker) rebuilds the pool once and resubmits only the queries
  that had not finished, instead of losing the whole batch;
* fail-fast batch semantics: an ordinary exception from one query cancels
  the outstanding siblings and raises a
  :class:`~repro.exceptions.BatchQueryError` naming the failing query
  (index + repr), instead of letting the rest of the batch burn CPU on
  answers that will be discarded;
* ``plan="shared"`` routes the batch through
  :mod:`repro.core.planner` — queries grouped by ``(source, sink)`` share
  one :class:`~repro.core.skeleton.WindowSkeleton` and a per-epoch
  candidate-window Maxflow memo, amortising overlapping delta sweeps.

Worker processes receive the network and the algorithm name through the
pool's ``initializer``/``initargs`` rather than fork-inherited module
globals, so every start method (``fork``, ``forkserver``, ``spawn``)
produces identical results — the test-suite asserts this against the
sequential path for each available method.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, Sequence

from repro.core._pool import run_pool
from repro.core.engine import DEFAULT_ALGORITHM, find_bursting_flow, get_algorithm
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    QueryStats,
    merge_query_stats,
)
from repro.exceptions import InvalidQueryError
from repro.temporal.network import TemporalFlowNetwork
from repro.temporal.shared import SharedNetworkStore, pool_initargs

#: ``plan=`` choices for :func:`answer_many`.
KNOWN_PLANS = ("independent", "shared")

# Per-worker state, set by _init_worker in each pool process.  The parent
# process never assigns these: state travels through initargs (pickled for
# spawn/forkserver, inherited-then-overwritten for fork), which is what
# makes the three start methods equivalent.
_WORKER_NETWORK: TemporalFlowNetwork | None = None
_WORKER_ALGORITHM: str = DEFAULT_ALGORITHM


def _init_worker(network: TemporalFlowNetwork, algorithm: str) -> None:
    """Pool initializer: install the batch's shared state in this worker."""
    global _WORKER_NETWORK, _WORKER_ALGORITHM
    _WORKER_NETWORK = network
    _WORKER_ALGORITHM = algorithm


def _reset_worker_state() -> None:
    """Restore module defaults (also runs in the parent after the batch)."""
    global _WORKER_NETWORK, _WORKER_ALGORITHM
    _WORKER_NETWORK = None
    _WORKER_ALGORITHM = DEFAULT_ALGORITHM


def answer_many(
    network: TemporalFlowNetwork,
    queries: Iterable[BurstingFlowQuery],
    *,
    algorithm: str = DEFAULT_ALGORITHM,
    processes: int | None = None,
    mp_context: str | None = None,
    plan: str = "independent",
    shared: bool = False,
) -> list[BurstingFlowResult]:
    """Answer a batch of queries; results align with the input order.

    Args:
        network: the shared temporal flow network.
        queries: the batch (materialised internally).
        algorithm: delta-BFlow solution for every query (``plan=
            "independent"`` only — the planner owns its evaluation
            strategy and produces the same canonical answers).
        processes: worker processes; ``None`` or ``1`` runs sequentially;
            ``0`` means ``os.cpu_count()``.  Under ``plan="shared"`` the
            pool shards *(source, sink) groups*, not single queries.
        mp_context: multiprocessing start method for the worker pool
            (``"fork"``, ``"forkserver"`` or ``"spawn"``); ``None`` uses
            the platform default.  Ignored for sequential runs.
        plan: ``"independent"`` (default — every query solved on its own)
            or ``"shared"`` (route through :func:`repro.core.planner.
            answer_planned`: one skeleton per (s, t) group, overlapping
            delta sweeps solve each candidate window once).
        shared: ship the network to pool workers through a
            :class:`~repro.temporal.shared.SharedNetworkStore` (workers
            attach to one shared-memory edge log instead of each
            unpickling the network — worth it for large networks under
            ``spawn``/``forkserver``).  Falls back silently to pickled
            ``initargs`` when shared memory is unavailable; no effect on
            sequential runs.

    Raises:
        BatchQueryError: one query (or one planner group) failed; the
            outstanding siblings were cancelled.
    """
    if plan not in KNOWN_PLANS:
        raise InvalidQueryError(
            f"unknown plan {plan!r}; known: {', '.join(KNOWN_PLANS)}"
        )
    if plan == "shared":
        if algorithm != DEFAULT_ALGORITHM:
            raise InvalidQueryError(
                "plan='shared' routes through the planner, which owns its "
                "evaluation strategy (answers are canonical either way); "
                "leave algorithm at the default"
            )
        from repro.core.planner import answer_planned  # local: avoid cycle

        results, _report = answer_planned(
            network, queries, processes=processes, mp_context=mp_context
        )
        return results
    get_algorithm(algorithm)  # fail fast on unknown names
    batch: Sequence[BurstingFlowQuery] = list(queries)
    for query in batch:
        query.validate_against(network)
    if not batch:
        return []
    if processes == 0:
        processes = os.cpu_count() or 1
    if processes is None or processes <= 1 or len(batch) == 1:
        return [
            find_bursting_flow(network, query, algorithm=algorithm)
            for query in batch
        ]

    context = multiprocessing.get_context(mp_context)
    store = _open_store(network) if shared else None
    initializer, initargs = (
        pool_initargs(store, _init_worker, algorithm)
        if store is not None
        else (_init_worker, (network, algorithm))
    )
    try:
        # run_pool carries the shared fan-out discipline: BrokenProcessPool
        # rebuild-once recovery, and fail-fast cancellation that names the
        # failing query (index + repr) instead of letting siblings run on.
        return run_pool(
            batch,
            _answer_one,
            max_workers=processes,
            context=context,
            initializer=initializer,
            initargs=initargs,
            describe=lambda index: batch[index],
        )
    finally:
        if store is not None:
            store.close()
        # With fork, workers inherit whatever the parent's module state
        # happens to be at submit time; keeping the parent's copy pristine
        # guarantees a concurrent or subsequent batch can't leak its
        # algorithm (or network) into this one.
        _reset_worker_state()


def _answer_one(query: BurstingFlowQuery) -> BurstingFlowResult:
    assert _WORKER_NETWORK is not None, "worker started outside answer_many"
    return find_bursting_flow(
        _WORKER_NETWORK, query, algorithm=_WORKER_ALGORITHM
    )


def _open_store(network: TemporalFlowNetwork) -> "SharedNetworkStore | None":
    """A shared-memory store for ``network``, or ``None`` if unavailable."""
    try:
        return SharedNetworkStore(network)
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm
        return None


# ----------------------------------------------------------------------
# parallel_windows: shard one BFQ query's candidate windows
# ----------------------------------------------------------------------
# Same initializer/initargs discipline as answer_many.  Each worker holds
# the network, query and transform choice, plus a lazily compiled
# WindowSkeleton (one per process, reused by every chunk it evaluates).
_WINDOW_NETWORK: TemporalFlowNetwork | None = None
_WINDOW_QUERY: BurstingFlowQuery | None = None
_WINDOW_SOLVER: str = "dinic"
_WINDOW_TRANSFORM: str | None = None
_WINDOW_SKELETON = None


def _init_window_worker(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    solver: str,
    transform: str,
) -> None:
    """Pool initializer for the per-window fan-out."""
    global _WINDOW_NETWORK, _WINDOW_QUERY, _WINDOW_SOLVER
    global _WINDOW_TRANSFORM, _WINDOW_SKELETON
    _WINDOW_NETWORK = network
    _WINDOW_QUERY = query
    _WINDOW_SOLVER = solver
    _WINDOW_TRANSFORM = transform
    _WINDOW_SKELETON = None


def _reset_window_worker_state() -> None:
    """Restore module defaults (also runs in the parent after the query)."""
    global _WINDOW_NETWORK, _WINDOW_QUERY, _WINDOW_SOLVER
    global _WINDOW_TRANSFORM, _WINDOW_SKELETON
    _WINDOW_NETWORK = None
    _WINDOW_QUERY = None
    _WINDOW_SOLVER = "dinic"
    _WINDOW_TRANSFORM = None
    _WINDOW_SKELETON = None


def _evaluate_window_chunk(intervals: list[tuple]) -> "QueryStats":
    """Evaluate one chunk of candidate windows in a worker process.

    Returns the chunk's :class:`QueryStats` (its samples carry every
    per-window flow value); the parent re-derives the best record from the
    samples, which is order-independent by the canonical tie-break.
    """
    from repro.core.bfq import evaluate_windows
    from repro.core.record import BestRecord
    from repro.core.skeleton import WindowSkeleton

    global _WINDOW_SKELETON
    assert _WINDOW_NETWORK is not None, "worker started outside bfq_parallel"
    assert _WINDOW_QUERY is not None
    if _WINDOW_TRANSFORM == "skeleton" and _WINDOW_SKELETON is None:
        _WINDOW_SKELETON = WindowSkeleton(
            _WINDOW_NETWORK, _WINDOW_QUERY.source, _WINDOW_QUERY.sink
        )
    stats = QueryStats()
    evaluate_windows(
        _WINDOW_NETWORK,
        _WINDOW_QUERY,
        intervals,
        BestRecord(),
        stats,
        solver=_WINDOW_SOLVER,
        transform=_WINDOW_TRANSFORM or "skeleton",
        skeleton=_WINDOW_SKELETON,
    )
    return stats


def bfq_parallel(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    processes: int,
    solver: str = "dinic",
    transform: str | None = None,
    mp_context: str | None = None,
    shared: bool = False,
) -> BurstingFlowResult:
    """BFQ with candidate windows sharded across worker processes.

    BFQ's windows are evaluated independently (no state flows between
    them), and :class:`~repro.core.record.BestRecord`'s canonical
    tie-break is order-independent — so splitting the plan into contiguous
    chunks and merging per-window results reproduces the sequential
    answer exactly, samples in plan order and all.

    Args:
        processes: worker processes; ``0`` means ``os.cpu_count()``;
            ``<= 1`` falls back to sequential :func:`~repro.core.bfq.bfq`.
        solver / transform: forwarded to the per-window evaluation.
        mp_context: multiprocessing start method (as in
            :func:`answer_many`).
        shared: ship the network through shared memory (as in
            :func:`answer_many`).
    """
    from repro.core.bfq import bfq
    from repro.core.intervals import enumerate_candidates
    from repro.core.record import BestRecord
    from repro.core.skeleton import DEFAULT_TRANSFORM, validate_transform

    transform = validate_transform(transform or DEFAULT_TRANSFORM)
    query.validate_against(network)
    if processes == 0:
        processes = os.cpu_count() or 1
    plan = enumerate_candidates(network, query.source, query.sink, query.delta)
    intervals = list(plan.intervals())
    if processes <= 1 or len(intervals) <= 1:
        return bfq(network, query, solver=solver, transform=transform)

    workers = min(processes, len(intervals))
    # Contiguous chunks keep each worker's skeleton slices cache-friendly
    # (consecutive windows share a start index).
    chunk_bounds = [
        (len(intervals) * w // workers, len(intervals) * (w + 1) // workers)
        for w in range(workers)
    ]
    chunks = [intervals[lo:hi] for lo, hi in chunk_bounds if hi > lo]

    context = multiprocessing.get_context(mp_context)
    store = _open_store(network) if shared else None
    initializer, initargs = (
        pool_initargs(store, _init_window_worker, query, solver, transform)
        if store is not None
        else (_init_window_worker, (network, query, solver, transform))
    )
    try:
        chunk_stats: list[QueryStats] = run_pool(
            chunks,
            _evaluate_window_chunk,
            max_workers=workers,
            context=context,
            initializer=initializer,
            initargs=initargs,
            describe=lambda index: f"window chunk {index} of {query!r}",
        )
    finally:
        if store is not None:
            store.close()
        _reset_window_worker_state()

    # Merge: concatenate stats in chunk order (which is plan order) —
    # field-derived, so a counter added to QueryStats later can never be
    # silently dropped from parallel results — and fold every per-window
    # flow value through one BestRecord (the canonical tie-break makes the
    # fold order irrelevant).
    stats = merge_query_stats(chunk_stats)
    best = BestRecord()
    for sample in stats.samples:
        best.offer(sample.flow_value, *sample.interval)
    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )
