"""Canonical best-answer bookkeeping shared by every delta-BFlow backend.

All five backends (BFQ, BFQ+, BFQ*, the naive oracle, the NetworkX-backed
baseline) enumerate candidate intervals and keep the best one seen.  For
differential testing they must agree not only on the optimal *density* but
on the reported *interval*, so ties have to be broken identically and
independently of enumeration order.  The canonical rule is:

1. strictly higher density wins;
2. among density ties: the earlier ``tau_s`` wins;
3. among density ties with equal ``tau_s``: the shorter interval wins.

Density "ties" are decided with a small *relative* tolerance
(:data:`DENSITY_EPSILON`) so that float-summation-order noise between the
from-scratch and incremental Maxflow paths (~1e-16 per operation) cannot
flip the comparison.

The Observation-2 pruning bound lives here too.  Pruning must never drop a
candidate that could still *tie* the best record — otherwise BFQ+/BFQ*
(pruning on) could report a different interval than BFQ, which evaluates
every candidate.  :func:`should_prune` therefore requires the upper bound
to fall short of the target by a margin (:data:`PRUNING_EPSILON`, scaled by
the target and the window length) that is strictly wider than the
tie-detection window above.
"""

from __future__ import annotations

from repro.temporal.edge import Timestamp

#: Relative tolerance for treating two candidate densities as equal.
#: Real ties on well-behaved (e.g. dyadic) capacities are bitwise exact;
#: this only needs to absorb float-order noise between backends.
DENSITY_EPSILON = 1e-12

#: Relative slack subtracted from the Observation-2 pruning target.
#: Deliberately three orders of magnitude wider than DENSITY_EPSILON:
#: a candidate pruned under this rule is provably *outside* the density
#: tie window, so pruning can never change the canonical answer.
PRUNING_EPSILON = 1e-9


def should_prune(
    upper_bound: float, best_density: float, length: int
) -> bool:
    """Observation-2 test: can ``upper_bound`` still reach the best density?

    Args:
        upper_bound: known flow value plus all sink capacity added since it
            was last recomputed (an upper bound on the candidate's Maxflow).
        best_density: density of the current best record.
        length: candidate interval length ``tau_e - tau_s``.

    Returns:
        True when the candidate provably cannot beat *or tie* the best
        record and the incremental Maxflow run may be skipped.
    """
    target = best_density * length
    return upper_bound < target - PRUNING_EPSILON * max(1.0, target, length)


class BestRecord:
    """Mutable (density, interval, value) record under the canonical rule.

    The outcome of offering any fixed set of candidates is independent of
    the order they are offered in, which is what lets BFQ (ascending
    start/end), BFQ+ (per-start sweeps) and BFQ* (the Figure-5(c) zig-zag)
    report byte-identical answers.
    """

    __slots__ = ("density", "interval", "value")

    def __init__(self) -> None:
        self.density = 0.0
        self.interval: tuple[Timestamp, Timestamp] | None = None
        self.value = 0.0

    def offer(
        self, value: float, tau_s: Timestamp, tau_e: Timestamp
    ) -> bool:
        """Consider one candidate; returns True when it becomes the best."""
        length = tau_e - tau_s
        if length <= 0:
            return False
        density = value / length
        if density <= 0.0:
            return False
        if self.interval is None:
            self._accept(density, value, tau_s, tau_e)
            return True
        scale = DENSITY_EPSILON * max(1.0, self.density, density)
        if density > self.density + scale:
            self._accept(density, value, tau_s, tau_e)
            return True
        if density < self.density - scale:
            return False
        # Density tie: earlier start, then shorter interval.
        cur_s, cur_e = self.interval
        if (tau_s, tau_e - tau_s) < (cur_s, cur_e - cur_s):
            self._accept(density, value, tau_s, tau_e)
            return True
        return False

    def _accept(
        self, density: float, value: float, tau_s: Timestamp, tau_e: Timestamp
    ) -> None:
        self.density = density
        self.interval = (tau_s, tau_e)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BestRecord(density={self.density!r}, interval={self.interval!r}, "
            f"value={self.value!r})"
        )
