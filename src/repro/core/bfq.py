"""BFQ — the practical delta-BFlow solution (Algorithm 1).

BFQ enumerates the ``O(d^2)`` candidate intervals of Lemma 2 and, for each
one, transforms the temporal flow network and runs a classical Maxflow
solver on the transformed network.  The best density seen, together with
its interval, is the query answer.

Two transform strategies are supported (``transform=``):

* ``"skeleton"`` (default) — compile the network once per query into a
  :class:`~repro.core.skeleton.WindowSkeleton` and slice every candidate
  window directly into a detached residual arena that the flat Dinic
  kernel consumes natively; no per-window ``FlowNetwork`` object graph is
  built at all.  With a non-Dinic ``solver=``, each window goes through
  the skeleton's ``to_flow_network()`` escape hatch — still amortising the
  per-window reachability sweep.
* ``"object"`` — the original per-window
  :func:`~repro.core.transform.build_transformed_network` construction,
  retained for differential testing (the oracle pins its reference BFQ
  backend to it).

This is the paper's baseline; BFQ+ and BFQ* produce identical answers
faster by reusing work across candidate intervals.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.core.intervals import CandidatePlan, enumerate_candidates
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord
from repro.core.skeleton import DEFAULT_TRANSFORM, WindowSkeleton, validate_transform
from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.registry import get_solver
from repro.temporal.edge import Timestamp
from repro.temporal.network import TemporalFlowNetwork


def bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    solver: str = "dinic",
    transform: str = DEFAULT_TRANSFORM,
) -> BurstingFlowResult:
    """Answer ``query`` with the from-scratch BFQ algorithm.

    Args:
        network: the temporal flow network.
        query: the delta-BFlow query ``(s, t, delta)``.
        solver: name of the Maxflow solver to use per candidate interval
            (any entry of :data:`repro.flownet.algorithms.SOLVERS`).
        transform: ``"skeleton"`` (compile once, slice per window — the
            default) or ``"object"`` (per-window object-graph rebuild).
    """
    query.validate_against(network)
    transform = validate_transform(transform)
    get_solver(solver)  # fail fast on unknown solver names
    stats = QueryStats()
    plan: CandidatePlan = enumerate_candidates(
        network, query.source, query.sink, query.delta
    )

    best = BestRecord()
    evaluate_windows(
        network,
        query,
        plan.intervals(),
        best,
        stats,
        solver=solver,
        transform=transform,
    )

    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )


def evaluate_windows(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    intervals: Iterable[tuple[Timestamp, Timestamp]],
    best: BestRecord,
    stats: QueryStats,
    *,
    solver: str = "dinic",
    transform: str = DEFAULT_TRANSFORM,
    skeleton: WindowSkeleton | None = None,
) -> None:
    """Evaluate candidate windows independently, folding into ``best``.

    This is BFQ's inner loop, factored out so the ``parallel_windows=``
    mode (:func:`repro.core.batch.bfq_parallel`) can run disjoint chunks
    of one plan in worker processes — window evaluations share no state,
    and :class:`~repro.core.record.BestRecord`'s canonical tie-break is
    order-independent, so any partition merges to the sequential answer.

    Args:
        skeleton: a pre-compiled :class:`WindowSkeleton` to reuse (workers
            compile one per process); compiled lazily when ``None`` and
            ``transform="skeleton"``.
    """
    solve = get_solver(solver)
    use_arena = transform == "skeleton" and solver == "dinic"
    for tau_s, tau_e in intervals:
        stats.candidates_enumerated += 1
        t0 = time.perf_counter()
        if transform == "skeleton":
            if skeleton is None:
                # Lazy compile: charged to the first window's transform
                # time (it replaces that window's reachability sweep).
                skeleton = WindowSkeleton(network, query.source, query.sink)
            window = skeleton.materialize(tau_s, tau_e)
            if use_arena:
                t1 = time.perf_counter()
                run = window.maxflow()
                t2 = time.perf_counter()
                size = window.num_nodes
            else:
                transformed = window.to_flow_network()
                t1 = time.perf_counter()
                run = solve(
                    transformed.flow_network,
                    transformed.source_index,
                    transformed.sink_index,
                )
                t2 = time.perf_counter()
                size = transformed.num_nodes
        else:
            transformed = build_transformed_network(
                network, query.source, query.sink, tau_s, tau_e
            )
            t1 = time.perf_counter()
            run = solve(
                transformed.flow_network,
                transformed.source_index,
                transformed.sink_index,
            )
            t2 = time.perf_counter()
            size = transformed.num_nodes
        stats.maxflow_runs += 1
        stats.augmenting_paths += run.augmenting_paths
        stats.record_sample(
            IntervalSample(
                interval=(tau_s, tau_e),
                network_size=size,
                mode="dinic",
                maxflow_seconds=t2 - t1,
                transform_seconds=t1 - t0,
                flow_value=run.value,
            )
        )
        best.offer(run.value, tau_s, tau_e)
