"""BFQ — the practical delta-BFlow solution (Algorithm 1).

BFQ enumerates the ``O(d^2)`` candidate intervals of Lemma 2 and, for each
one, transforms the temporal flow network from scratch and runs a classical
Maxflow solver (Dinic by default) on the transformed network.  The best
density seen, together with its interval, is the query answer.

This is the paper's baseline; BFQ+ and BFQ* produce identical answers
faster by reusing work across candidate intervals.
"""

from __future__ import annotations

import time

from repro.core.intervals import CandidatePlan, enumerate_candidates
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord
from repro.core.transform import build_transformed_network
from repro.flownet.algorithms.registry import get_solver
from repro.temporal.network import TemporalFlowNetwork


def bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    *,
    solver: str = "dinic",
) -> BurstingFlowResult:
    """Answer ``query`` with the from-scratch BFQ algorithm.

    Args:
        network: the temporal flow network.
        query: the delta-BFlow query ``(s, t, delta)``.
        solver: name of the Maxflow solver to use per candidate interval
            (any entry of :data:`repro.flownet.algorithms.SOLVERS`).
    """
    query.validate_against(network)
    solve = get_solver(solver)
    stats = QueryStats()
    plan: CandidatePlan = enumerate_candidates(
        network, query.source, query.sink, query.delta
    )

    best = BestRecord()

    for tau_s, tau_e in plan.intervals():
        stats.candidates_enumerated += 1
        t0 = time.perf_counter()
        transformed = build_transformed_network(
            network, query.source, query.sink, tau_s, tau_e
        )
        t1 = time.perf_counter()
        run = solve(
            transformed.flow_network,
            transformed.source_index,
            transformed.sink_index,
        )
        t2 = time.perf_counter()
        stats.maxflow_runs += 1
        stats.augmenting_paths += run.augmenting_paths
        stats.record_sample(
            IntervalSample(
                interval=(tau_s, tau_e),
                network_size=transformed.num_nodes,
                mode="dinic",
                maxflow_seconds=t2 - t1,
                transform_seconds=t1 - t0,
                flow_value=run.value,
            )
        )
        best.offer(run.value, tau_s, tau_e)

    return BurstingFlowResult(
        density=best.density,
        interval=best.interval,
        flow_value=best.value,
        stats=stats,
    )
