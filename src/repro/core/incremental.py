"""Incrementally maintained transformed networks (Section 5).

:class:`IncrementalTransformedNetwork` is the engine room of BFQ+ and BFQ*.
It maintains a live transformed network together with the residual state of
the Maxflow found so far, and supports the two structural moves the paper's
incremental lemmas describe:

* :meth:`extend_end` — the **insertion case** (Lemma 3).  Increasing
  ``tau_e`` only inserts nodes and edges, so the residual state (and with it
  every augmenting path found so far) stays valid; a subsequent Dinic run
  finds only the new augmenting paths.

* :meth:`advance_start` — the **deletion case** (Lemma 4/5).  Increasing
  ``tau_s`` removes a prefix of the network.  Flow crossing the new start
  boundary is *withdrawn*: hold edges spanning the boundary are split by
  timestamp injection (``Δ``), a virtual node absorbs the crossing flow
  through reverse Dinic from the sink, and the prefix is retired.

  One deliberate deviation from the paper's operator order: the prefix is
  retired *before* the withdrawal Dinic runs, so withdrawal paths cannot
  meander through soon-to-be-deleted nodes.  This realises exactly the
  canonical path set ``P`` whose existence Lemma 5 proves, and guarantees
  per-boundary-node balance after the prefix disappears (the paper's
  formulation reaches the same state through the
  ``(N_f ⊎ N(P)) \\ (N_[tau_s,tau_s'] \\ N_[tau_s',tau_s'])`` algebra).

Flow-value accounting uses the invariant measure ``|f| =`` flow leaving the
*active* source timeline on capacity edges, which survives both moves.
"""

from __future__ import annotations

import math

from repro.exceptions import GraphError, InvalidIntervalError
from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.algorithms.registry import DEFAULT_ENGINE_KERNEL, validate_kernel
from repro.flownet.algorithms.selector import network_maxflow
from repro.flownet.network import EdgeKind, EdgeRef, FlowNetwork
from repro.core.skeleton import DEFAULT_TRANSFORM, WindowSkeleton, validate_transform
from repro.core.transform import TransformedNetwork, reachable_edges
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: Tolerance when asserting complete withdrawal of boundary-crossing flow.
_WITHDRAW_TOLERANCE = 1e-6

#: Maxflow kernel driving the incremental moves.  ``"persistent"`` runs the
#: array-only resumable Dinic on the attached CSR residual arena (built
#: lazily on the first run, maintained incrementally afterwards);
#: ``"vectorized"`` swaps the phase BFS for numpy frontier gathers;
#: ``"push_relabel"`` floods dense short windows with a FIFO preflow;
#: ``"adaptive"`` picks among them per run from observed timings; and
#: ``"object"`` is the pre-arena engine walking ``Arc`` objects.  The full
#: list lives in :data:`repro.flownet.algorithms.registry.ENGINE_KERNELS`.
DEFAULT_KERNEL = DEFAULT_ENGINE_KERNEL


class IncrementalTransformedNetwork:
    """A transformed network that can grow at the end and shrink at the start."""

    def __init__(
        self,
        temporal: TemporalFlowNetwork,
        source: NodeId,
        sink: NodeId,
        tau_s: Timestamp,
        tau_e: Timestamp,
        *,
        kernel: str = DEFAULT_KERNEL,
        transform: str = DEFAULT_TRANSFORM,
        skeleton: WindowSkeleton | None = None,
    ) -> None:
        if tau_e <= tau_s:
            raise InvalidIntervalError(f"window [{tau_s}, {tau_e}] is degenerate")
        self.kernel = validate_kernel(kernel)
        self.transform = validate_transform(transform)
        # Edge-inclusion backend.  ``"skeleton"`` answers every
        # _include_window from the compiled per-start reachability index
        # (shared across all of a query's states — BFQ+/BFQ* pass one in);
        # ``"object"`` runs reachable_edges per extension and maintains
        # the arrival-label dict.
        if self.transform == "skeleton":
            self._skeleton = (
                skeleton
                if skeleton is not None
                else WindowSkeleton(temporal, source, sink)
            )
        else:
            self._skeleton = None
        self.temporal = temporal
        self.source = source
        self.sink = sink
        self.tau_s = tau_s
        self.tau_e = tau_e
        # Earliest-arrival labels from the *original* source timestamp.
        # After advance_start these become lower bounds for the current
        # source, which keeps edge inclusion sound (a superset of the
        # edges reachable from the current source is materialised).
        self._arrival: dict[NodeId, float] = {}
        self.network = FlowNetwork()
        # Sorted active timeline stamps per temporal node.
        self._timeline: dict[NodeId, list[Timestamp]] = {}
        # Hold-edge handle per (node, index into timeline): the edge from
        # timeline[i] to timeline[i+1] keyed by its *head* stamp.
        self._hold_into: dict[tuple[NodeId, Timestamp], EdgeRef] = {}
        self.source_capacity_arcs: list[EdgeRef] = []
        # Order matters: the source boundary node comes first (its event
        # stamps are >= tau_s, so the timeline appends monotonically), the
        # sink boundary node last (its event stamps are <= tau_e).
        self._ensure_timeline_node(source, tau_s)
        self._include_window(tau_s, tau_e)
        self._ensure_timeline_node(sink, tau_e)
        self._sync_endpoints()

    # ------------------------------------------------------------------
    # Public views
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V'|`` — active transformed nodes."""
        return self.network.num_active_nodes

    def as_transformed(self) -> TransformedNetwork:
        """A read-compatible :class:`TransformedNetwork` view of the state."""
        return TransformedNetwork(
            flow_network=self.network,
            source=self.source,
            sink=self.sink,
            tau_s=self.tau_s,
            tau_e=self.tau_e,
            source_index=self.source_index,
            sink_index=self.sink_index,
            source_capacity_arcs=self.source_capacity_arcs,
        )

    def flow_value(self) -> float:
        """``|f|`` for the current residual state."""
        total = 0.0
        network = self.network
        for ref in self.source_capacity_arcs:
            if network.is_retired(ref.tail):
                continue
            arc = network.forward_arc(ref)
            if network.is_retired(arc.head):
                continue
            total += network.flow_on(ref)
        return total

    def run_maxflow(self, *, value_bound: float | None = None) -> MaxflowRun:
        """Resume Dinic on the current residual state (Lemma 3 / Lemma 4).

        ``value_bound`` optionally caps how much this run can possibly add
        (Observation 2: sink capacity inserted since the last computed
        Maxflow).  The persistent kernel uses it to certify maximality
        without its final failed BFS; the object kernel ignores it, staying
        exactly the pre-persistent engine for comparison purposes.
        """
        return self._run_kernel(
            self.source_index, self.sink_index, value_bound=value_bound
        )

    def _run_kernel(
        self, source: int, sink: int, *, value_bound: float | None = None
    ) -> MaxflowRun:
        """Dispatch a resumable maxflow run to the configured kernel."""
        return network_maxflow(
            self.network, source, sink, kernel=self.kernel,
            value_bound=value_bound,
        )

    def clone(self) -> "IncrementalTransformedNetwork":
        """Deep copy of the state (BFQ*'s mid-sweep snapshot).

        The copy is *compacted*: nodes retired by earlier
        :meth:`advance_start` calls are dropped and every stored edge
        handle is remapped, so successive BFQ* generations do not inherit
        dead prefixes (this mirrors the paper's operator semantics, where
        the subtracted prefix simply no longer exists in the new network).
        """
        other = IncrementalTransformedNetwork.__new__(IncrementalTransformedNetwork)
        other.kernel = self.kernel
        other.transform = self.transform
        other._skeleton = self._skeleton  # compiled index; safely shared
        other.temporal = self.temporal
        other.source = self.source
        other.sink = self.sink
        other.tau_s = self.tau_s
        other.tau_e = self.tau_e
        other._arrival = dict(self._arrival)
        other.network, ref_map = self.network.compacted_clone()
        other._timeline = {
            node: [tau for tau in tl if other.network.has_node((node, tau))]
            for node, tl in self._timeline.items()
        }
        other._timeline = {node: tl for node, tl in other._timeline.items() if tl}
        other._hold_into = {}
        for key, ref in self._hold_into.items():
            mapped = ref_map.get((ref.tail, ref.index))
            if mapped is not None:
                other._hold_into[key] = mapped
        other.source_capacity_arcs = [
            ref_map[(ref.tail, ref.index)]
            for ref in self.source_capacity_arcs
            if (ref.tail, ref.index) in ref_map
        ]
        other._sync_endpoints()
        return other

    # ------------------------------------------------------------------
    # Insertion case (Lemma 3)
    # ------------------------------------------------------------------
    def extend_end(self, new_tau_e: Timestamp) -> None:
        """Grow the window to ``[tau_s, new_tau_e]`` in place.

        Equivalent to ``N_f ⊎ (N_[tau_e, new_tau_e] \\ N_[tau_e, tau_e])``
        followed by re-pointing the sink at ``<t, new_tau_e>``.
        """
        if new_tau_e <= self.tau_e:
            raise InvalidIntervalError(
                f"extend_end must move forward: {new_tau_e} <= {self.tau_e}"
            )
        old_tau_e = self.tau_e
        # New edges live strictly after the old end (an edge exactly at the
        # old end was already included).
        self._include_window(self.tau_e + 1, new_tau_e)
        self.tau_e = new_tau_e
        self._ensure_timeline_node(self.sink, new_tau_e)
        self._re_terminate_sink_flow(old_tau_e)
        self._sync_endpoints()

    def _re_terminate_sink_flow(self, old_tau_e: Timestamp) -> None:
        """Push flow stored at the old sink node forward to the new one.

        Lemma 3's proof re-terminates every previously found augmenting
        path at the new sink by assigning its flow to the freshly inlined
        hold edges of ``t``.  Doing the same keeps the residual state
        canonical, which the deletion case relies on: withdrawal paths
        trace the flow *backwards from the current sink*.
        """
        old_index = self.network.index_of((self.sink, old_tau_e))
        excess = self.network.in_flow(old_index) - self.network.out_flow(old_index)
        if excess <= 0:
            return
        timeline = self._timeline[self.sink]
        position = timeline.index(old_tau_e)
        for stamp in timeline[position + 1 :]:
            self.network.push_on(self._hold_into[(self.sink, stamp)], excess)

    # ------------------------------------------------------------------
    # Deletion case (Lemma 4/5)
    # ------------------------------------------------------------------
    def advance_start(self, new_tau_s: Timestamp) -> float:
        """Shrink the window to ``[new_tau_s, tau_e]`` in place.

        Returns the total flow value withdrawn from the boundary.

        Raises:
            InvalidIntervalError: unless ``tau_s < new_tau_s < tau_e``.
            GraphError: if the withdrawal Maxflow fails to absorb all
                boundary-crossing flow (would indicate a broken invariant).
        """
        if not self.tau_s < new_tau_s < self.tau_e:
            raise InvalidIntervalError(
                f"advance_start needs tau_s < {new_tau_s} < tau_e "
                f"(have [{self.tau_s}, {self.tau_e}])"
            )
        self._inject_timestamp(new_tau_s)
        crossings = self._boundary_crossings(new_tau_s)
        total_crossing = sum(flow for _, flow in crossings)

        virtual_index: int | None = None
        if total_crossing > _WITHDRAW_TOLERANCE:
            virtual_label = ("__virtual__", self.tau_s, new_tau_s)
            virtual_index = self.network.add_node(virtual_label)
            for boundary_index, flow in crossings:
                self.network.add_edge(
                    boundary_index,
                    virtual_index,
                    flow,
                    kind=EdgeKind.VIRTUAL,
                    meta="withdrawal",
                )

        # Retire the prefix *before* withdrawing so withdrawal paths stay in
        # the surviving suffix (see module docstring).
        self._retire_prefix(new_tau_s)

        withdrawn = 0.0
        if virtual_index is not None:
            run = self._run_kernel(self.sink_index, virtual_index)
            withdrawn = run.value
            if abs(withdrawn - total_crossing) > _WITHDRAW_TOLERANCE * max(
                1.0, total_crossing
            ):
                raise GraphError(
                    f"withdrawal incomplete: absorbed {withdrawn} of "
                    f"{total_crossing} boundary-crossing flow"
                )
            self.network.retire_node(virtual_index)

        self.tau_s = new_tau_s
        self._ensure_timeline_node(self.source, new_tau_s)
        self._sync_endpoints()
        if self._skeleton is None:
            self._rebuild_arrival()
        # Skeleton mode needs no arrival rebuild: later extensions slice
        # the per-start index of the *new* tau_s, a from-scratch temporal
        # reachability.  That can be a superset of the live-graph labels
        # the object path rebuilds (edges enabled only through dropped
        # sink-out edges reappear), but such edges have no inflow in the
        # materialised graph and cannot change any Maxflow value — the
        # differential suite pins value equality across both modes.
        return withdrawn

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync_endpoints(self) -> None:
        self.source_index = self.network.index_of((self.source, self.tau_s))
        self.sink_index = self.network.index_of((self.sink, self.tau_e))

    def _include_window(self, tau_lo: Timestamp, tau_hi: Timestamp) -> None:
        """Materialise reachable edges with timestamps in [tau_lo, tau_hi]."""
        if tau_hi < tau_lo:
            return
        if self._skeleton is not None:
            # The compiled per-start index: the same included-edge list, in
            # the same order, as the reachable_edges call below — any
            # window's inclusion set is a stamp-range slice of the current
            # start's index (arrival labels only depend on earlier stamps).
            included = self._skeleton.included_between(
                self.tau_s, tau_lo, tau_hi
            )
        else:
            included = reachable_edges(
                self.temporal, self.source, tau_lo, tau_hi, arrival=self._arrival
            )
        for u, v, tau, capacity in included:
            if u == self.sink or v == self.source:
                continue  # cannot carry s-t flow (see transform.assemble)
            tail = self._ensure_timeline_node(u, tau)
            head = self._ensure_timeline_node(v, tau)
            ref = self.network.add_edge(
                tail, head, capacity, kind=EdgeKind.CAPACITY, meta=(u, v, tau)
            )
            if u == self.source:
                self.source_capacity_arcs.append(ref)

    def _ensure_timeline_node(self, node: NodeId, tau: Timestamp) -> int:
        """Get or create ``<node, tau>``, chaining it into the timeline.

        New stamps are appended at the end (edges arrive in timestamp order
        and the window grows rightward) or — for the source boundary after
        an :meth:`advance_start` — prepended at the front.  Interior stamps
        only ever appear through timestamp injection.
        """
        label = (node, tau)
        if self.network.has_node(label):
            return self.network.index_of(label)
        timeline = self._timeline.setdefault(node, [])
        if timeline and timeline[0] > tau:
            # Prepend: a fresh boundary node ahead of the first stamp.
            index = self.network.add_node(label)
            first = timeline[0]
            ref = self.network.add_edge_labeled(
                label, (node, first), math.inf, kind=EdgeKind.HOLD, meta=node
            )
            self._hold_into[(node, first)] = ref
            timeline.insert(0, tau)
            return index
        if timeline and timeline[-1] > tau:
            raise GraphError(
                f"timeline of {node!r} only grows at its ends: cannot add "
                f"{tau} inside [{timeline[0]}, {timeline[-1]}]"
            )
        index = self.network.add_node(label)
        if timeline:
            previous = timeline[-1]
            ref = self.network.add_edge_labeled(
                (node, previous), label, math.inf, kind=EdgeKind.HOLD, meta=node
            )
            self._hold_into[(node, tau)] = ref
        timeline.append(tau)
        return index

    def _inject_timestamp(self, tau: Timestamp) -> None:
        """``Δ_tau``: split every hold edge spanning ``tau`` (live version).

        The split preserves both capacity (infinite) and currently routed
        flow: each half carries the original flow, realised by zeroing out
        the spanning edge and manually pushing the flow onto the halves.
        """
        for node, timeline in self._timeline.items():
            position = _span_position(timeline, tau)
            if position is None:
                continue
            before = timeline[position]
            after = timeline[position + 1]
            old_ref = self._hold_into.pop((node, after))
            routed = self.network.flow_on(old_ref)
            # Disable the spanning edge entirely (capacity and flow to 0).
            self.network.disable_edge(old_ref)

            middle_label = (node, tau)
            self.network.add_node(middle_label)
            first = self.network.add_edge_labeled(
                (node, before), middle_label, math.inf, kind=EdgeKind.HOLD, meta=node
            )
            second = self.network.add_edge_labeled(
                middle_label, (node, after), math.inf, kind=EdgeKind.HOLD, meta=node
            )
            if routed > 0:
                self.network.push_on(first, routed)
                self.network.push_on(second, routed)
            self._hold_into[(node, tau)] = first
            self._hold_into[(node, after)] = second
            timeline.insert(position + 1, tau)

    def _boundary_crossings(self, tau: Timestamp) -> list[tuple[int, float]]:
        """Positive flow entering ``<u, tau>`` along u's hold chain, u != s.

        After injection, all flow crossing the new start boundary does so on
        a hold edge whose head is exactly ``<u, tau>``.
        """
        crossings: list[tuple[int, float]] = []
        for node, timeline in self._timeline.items():
            if node == self.source:
                continue
            ref = self._hold_into.get((node, tau))
            if ref is None:
                continue
            routed = self.network.flow_on(ref)
            if routed > _WITHDRAW_TOLERANCE:
                crossings.append((self.network.index_of((node, tau)), routed))
        return crossings

    def _rebuild_arrival(self) -> None:
        """Recompute earliest arrivals from the *current* source.

        After :meth:`advance_start` the inherited arrival labels are only
        lower bounds (they stem from an earlier source), which would make
        subsequent :meth:`extend_end` calls materialise edges no longer
        reachable.  A structural BFS over the live transformed network is
        exact: ``<u, tau>`` is reachable from ``<s, tau_s>`` iff value
        could sit at ``u`` by time ``tau``.
        """
        network = self.network
        adj = network._adj  # noqa: SLF001 - hot path
        retired = network._retired  # noqa: SLF001
        start = self.source_index
        seen = {start}
        stack = [start]
        arrival: dict[NodeId, float] = {}
        while stack:
            index = stack.pop()
            node, tau = network.label_of(index)
            known = arrival.get(node)
            if known is None or tau < known:
                arrival[node] = float(tau)
            for arc in adj[index]:
                if not arc.forward or retired[arc.head] or arc.head in seen:
                    continue
                # Structural presence: residual or routed flow positive
                # (injection-disabled hold edges have both at zero).
                if arc.cap <= 0 and adj[arc.head][arc.rev].cap <= 0:
                    continue
                seen.add(arc.head)
                stack.append(arc.head)
        self._arrival = arrival

    def _retire_prefix(self, new_tau_s: Timestamp) -> None:
        """Retire all ``<u, tau>`` nodes with ``tau < new_tau_s``."""
        for node, timeline in self._timeline.items():
            cut = 0
            while cut < len(timeline) and timeline[cut] < new_tau_s:
                self.network.retire_node(
                    self.network.index_of((node, timeline[cut]))
                )
                self._hold_into.pop((node, timeline[cut]), None)
                cut += 1
            if cut:
                # The hold edge into the first surviving stamp now dangles.
                if cut < len(timeline):
                    self._hold_into.pop((node, timeline[cut]), None)
                del timeline[:cut]
        self.source_capacity_arcs = [
            ref
            for ref in self.source_capacity_arcs
            if not self.network.is_retired(ref.tail)
        ]


def _span_position(timeline: list[Timestamp], tau: Timestamp) -> int | None:
    """Index i with timeline[i] < tau < timeline[i+1], or None."""
    import bisect

    position = bisect.bisect_left(timeline, tau)
    if position < len(timeline) and timeline[position] == tau:
        return None  # node already has this stamp
    if position == 0 or position >= len(timeline):
        return None  # tau is outside the timeline span
    return position - 1
