"""Delta-sensitivity profiling.

The case study observes that "a larger delta leads to a smaller density.
Therefore, to detect delta-BFlow having a larger burstiness, delta can
often be set as relatively small values."  Analysts still need to *choose*
delta: too small and one-off transfers dominate (the trivial flows
Figure 1 circles in red ellipses); too large and genuine bursts are
averaged away.

:func:`density_profile` computes the full delta -> (density, interval)
curve, and :func:`suggest_delta` picks the knee of that curve: the largest
delta *before* the relative density drop exceeds a threshold — i.e. the
longest minimum duration that still preserves most of the burst's
intensity, which is exactly the filter role the paper assigns to delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.engine import find_bursting_flow
from repro.core.query import BurstingFlowQuery, QueryStats
from repro.exceptions import InvalidQueryError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class ProfilePoint:
    """One evaluated delta."""

    delta: int
    density: float
    interval: tuple[Timestamp, Timestamp] | None
    flow_value: float


@dataclass(slots=True)
class PhaseBreakdown:
    """Where a query (or a sweep of queries) spent its time.

    The three phases partition the engine's measured work:

    * ``transform`` — compiling the window skeleton / building or
      extending transformed networks (structure, not flow);
    * ``maxflow`` — Dinic runs, incremental or from scratch;
    * ``prune`` — computing the Observation-2 sink-capacity bounds.

    Accumulable: :meth:`add` folds further :class:`QueryStats` in, so a
    scan or a service can keep one running breakdown per algorithm.
    """

    transform_seconds: float = 0.0
    maxflow_seconds: float = 0.0
    prune_seconds: float = 0.0
    queries: int = 0
    #: Per-kernel split of the maxflow phase: run counts and seconds per
    #: engine kernel that actually executed (under ``adaptive`` the keys
    #: are the concrete kernels the selector chose).
    kernel_runs: dict[str, int] = field(default_factory=dict)
    kernel_seconds: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, stats: QueryStats) -> "PhaseBreakdown":
        """The breakdown of one answered query."""
        breakdown = cls()
        breakdown.add(stats)
        return breakdown

    def add(self, stats: QueryStats) -> None:
        """Fold one more answered query's stats into the breakdown."""
        phases = stats.phase_seconds()
        self.transform_seconds += phases["transform"]
        self.maxflow_seconds += phases["maxflow"]
        self.prune_seconds += phases["prune"]
        for name, runs in stats.kernel_runs.items():
            self.kernel_runs[name] = self.kernel_runs.get(name, 0) + runs
        for name, seconds in stats.kernel_seconds.items():
            self.kernel_seconds[name] = (
                self.kernel_seconds.get(name, 0.0) + seconds
            )
        self.queries += 1

    @property
    def total_seconds(self) -> float:
        """Measured time across all phases."""
        return self.transform_seconds + self.maxflow_seconds + self.prune_seconds

    def as_dict(self) -> dict[str, object]:
        """JSON-able phase totals (seconds), plus the query count.

        The per-kernel split rides along under ``"kernels"`` when any run
        was attributed to a kernel: ``{name: {"runs": int, "seconds":
        float}}``.
        """
        payload: dict[str, object] = {
            "transform_seconds": self.transform_seconds,
            "maxflow_seconds": self.maxflow_seconds,
            "prune_seconds": self.prune_seconds,
            "total_seconds": self.total_seconds,
            "queries": self.queries,
        }
        if self.kernel_runs or self.kernel_seconds:
            payload["kernels"] = {
                name: {
                    "runs": self.kernel_runs.get(name, 0),
                    "seconds": self.kernel_seconds.get(name, 0.0),
                }
                for name in sorted(
                    set(self.kernel_runs) | set(self.kernel_seconds)
                )
            }
        return payload

    def format(self) -> str:
        """One human line: ``transform 12.3ms (40%) | maxflow ... | ...``.

        When per-kernel accounting recorded anything, a second line breaks
        the maxflow phase down by executed kernel.
        """
        total = self.total_seconds
        parts = []
        for name, seconds in (
            ("transform", self.transform_seconds),
            ("maxflow", self.maxflow_seconds),
            ("prune", self.prune_seconds),
        ):
            share = f" ({seconds / total:.0%})" if total > 0 else ""
            parts.append(f"{name} {seconds * 1000.0:,.1f}ms{share}")
        line = " | ".join(parts)
        if self.kernel_runs or self.kernel_seconds:
            kernels = " | ".join(
                f"{name} {self.kernel_seconds.get(name, 0.0) * 1000.0:,.1f}ms"
                f"/{self.kernel_runs.get(name, 0)} runs"
                for name in sorted(set(self.kernel_runs) | set(self.kernel_seconds))
            )
            line = f"{line}\nkernels: {kernels}"
        return line


def density_profile(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    deltas: Sequence[int] | None = None,
    *,
    algorithm: str = "bfq*",
) -> list[ProfilePoint]:
    """The optimal density for every requested delta (ascending).

    Args:
        deltas: deltas to evaluate; defaults to a geometric ladder
            1, 2, 4, ... up to the horizon.
    """
    if source not in network or sink not in network:
        raise InvalidQueryError("query endpoints must be in the network")
    horizon = network.t_max - network.t_min
    if horizon < 1:
        return []
    if deltas is None:
        ladder: list[int] = []
        step = 1
        while step <= horizon:
            ladder.append(step)
            step *= 2
        deltas = ladder
    points: list[ProfilePoint] = []
    for delta in sorted(set(deltas)):
        if delta < 1 or delta > horizon:
            continue
        result = find_bursting_flow(
            network, BurstingFlowQuery(source, sink, delta), algorithm=algorithm
        )
        points.append(
            ProfilePoint(
                delta=delta,
                density=result.density,
                interval=result.interval,
                flow_value=result.flow_value,
            )
        )
    return points


def suggest_delta(
    profile: Sequence[ProfilePoint],
    *,
    max_drop: float = 0.5,
) -> ProfilePoint | None:
    """The knee of a density profile.

    Scans the (ascending-delta) profile and returns the last point whose
    density is still at least ``max_drop`` times the best positive density
    seen at smaller deltas — the longest duration filter that keeps the
    burst recognisable.  ``None`` when the profile has no positive
    density.

    Raises:
        InvalidQueryError: when ``max_drop`` is outside (0, 1].
    """
    if not 0 < max_drop <= 1:
        raise InvalidQueryError(f"max_drop must be in (0, 1], got {max_drop}")
    best_density = 0.0
    knee: ProfilePoint | None = None
    for point in profile:
        if point.density <= 0:
            continue
        best_density = max(best_density, point.density)
        if point.density >= max_drop * best_density:
            knee = point
    return knee
