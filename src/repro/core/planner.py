"""Multi-query planner: amortise delta-BFlow work across a batch.

The paper's target workload is fleet scale — millions of overlapping
``(s, t, delta)`` queries, most of which share endpoints (the Grab case
study sweeps a fixed suspect set at several deltas).  Answering each query
independently recompiles a :class:`~repro.core.skeleton.WindowSkeleton`
per query and re-solves every candidate-window Maxflow, even when two
queries in the same batch enumerate the *same* window.

The planner amortises both:

1. **Grouping** — the batch is partitioned by ``(source, sink)``
   (:func:`group_queries`); each group compiles **one** skeleton reused
   across all of its queries and delta values.
2. **Window memoisation** — Lemma-2 candidate windows of different deltas
   overlap heavily (every window longer than both deltas is shared), so
   each group keeps a per-epoch :class:`WindowMemo` keyed on
   ``(tau_s, tau_e)``: the first query that needs a window solves its
   Maxflow; every later query — same delta repeated, or an overlapping
   sweep — reuses the value for free.
3. **Top-k densest bursts** (:func:`top_k_bursts`) — a first-class query
   over a candidate ``(s, t)`` list, ranked by the canonical tie-break.

Correctness: a window's Maxflow *value* is a pure function of the window
(the kernel is deterministic), and
:class:`~repro.core.record.BestRecord`'s canonical tie-break is
order-independent — so folding memoised values through each query's own
candidate plan reproduces the independent
:func:`~repro.core.engine.find_bursting_flow` answer exactly (interval,
flow value, tie-breaks).  The ``planner`` oracle backend differential-
checks this on every fuzz trial.

Epoch safety: the memo snapshots the network epoch at construction and
refuses to serve after a mutation (matching the skeleton's own guard), so
a streaming append can never leak a stale window value into an answer —
the same invariant that makes the service's epoch-keyed result cache
sound.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, fields
from typing import Iterable, Sequence

from repro.core._pool import run_pool
from repro.core.intervals import enumerate_candidates
from repro.core.query import (
    BurstingFlowQuery,
    BurstingFlowResult,
    IntervalSample,
    QueryStats,
)
from repro.core.record import BestRecord
from repro.core.skeleton import WindowSkeleton
from repro.exceptions import GraphError, InvalidQueryError, ReproError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class QueryGroup:
    """One ``(source, sink)`` group of a batch.

    Attributes:
        source / sink: the shared endpoints.
        indices: batch positions of the group's queries, in input order.
    """

    source: NodeId
    sink: NodeId
    indices: tuple[int, ...]


def group_queries(queries: Sequence[BurstingFlowQuery]) -> list[QueryGroup]:
    """Partition a batch by ``(source, sink)``, first-appearance order."""
    order: dict[tuple[NodeId, NodeId], list[int]] = {}
    for index, query in enumerate(queries):
        order.setdefault((query.source, query.sink), []).append(index)
    return [
        QueryGroup(source=source, sink=sink, indices=tuple(indices))
        for (source, sink), indices in order.items()
    ]


@dataclass(slots=True)
class PlannerReport:
    """What the planner amortised while answering one batch.

    ``windows_total`` counts every candidate window folded into an answer;
    ``windows_solved`` of them paid a Maxflow, ``windows_reused`` came out
    of a group's :class:`WindowMemo`.  The merge (:meth:`absorb`) is
    field-derived, like :func:`~repro.core.query.merge_query_stats`.
    """

    queries: int = 0
    groups: int = 0
    skeletons_compiled: int = 0
    windows_total: int = 0
    windows_solved: int = 0
    windows_reused: int = 0
    solve_seconds: float = 0.0

    def absorb(self, other: "PlannerReport") -> None:
        """Accumulate another report (e.g. one group's) into this one."""
        for spec in fields(PlannerReport):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )

    @property
    def amortization(self) -> float:
        """Windows folded per Maxflow actually run (>= 1.0)."""
        return self.windows_total / max(1, self.windows_solved)

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (feeds the service ``/metrics`` snapshot)."""
        payload: dict[str, float] = {
            spec.name: getattr(self, spec.name) for spec in fields(PlannerReport)
        }
        payload["amortization"] = self.amortization
        return payload


class WindowMemo:
    """Per-epoch memo of candidate-window Maxflow values for one group.

    Keys are ``(tau_s, tau_e)``; values are ``(flow_value, network_size)``.
    The memo is sound because a window's Maxflow value is fully determined
    by the window at a fixed network epoch; it pins the epoch at
    construction and raises (like the skeleton it rides with) if the
    network mutates, so a hit can never serve a stale value.
    """

    __slots__ = ("network", "epoch", "values")

    def __init__(self, network: TemporalFlowNetwork) -> None:
        self.network = network
        self.epoch = network.epoch
        self.values: dict[tuple[Timestamp, Timestamp], tuple[float, int]] = {}

    def get(
        self, key: tuple[Timestamp, Timestamp]
    ) -> tuple[float, int] | None:
        if self.network.epoch != self.epoch:
            raise GraphError(
                "temporal network mutated under the planner's window memo; "
                "re-plan the batch at the new epoch"
            )
        return self.values.get(key)

    def put(self, key: tuple[Timestamp, Timestamp], value: float, size: int) -> None:
        self.values[key] = (value, size)


def _solve_group(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    deltas: Sequence[int],
) -> tuple[list[BurstingFlowResult], PlannerReport]:
    """Answer one group: one skeleton, one window memo, many deltas.

    Results align with ``deltas``.  Each query folds only *its own*
    candidate plan through a fresh :class:`BestRecord`, so its answer is
    independent of its siblings; only the window Maxflows are shared.
    """
    report = PlannerReport(queries=len(deltas), groups=1)
    t_start = time.perf_counter()
    skeleton: WindowSkeleton | None = None
    memo = WindowMemo(network)
    results: list[BurstingFlowResult] = []
    for delta in deltas:
        plan = enumerate_candidates(network, source, sink, delta)
        best = BestRecord()
        stats = QueryStats()
        for tau_s, tau_e in plan.intervals():
            stats.candidates_enumerated += 1
            hit = memo.get((tau_s, tau_e))
            if hit is None:
                t0 = time.perf_counter()
                if skeleton is None:
                    # Lazy compile, once per group — this is amortisation
                    # point 1 (vs once per query independently).
                    skeleton = WindowSkeleton(network, source, sink)
                    report.skeletons_compiled += 1
                window = skeleton.materialize(tau_s, tau_e)
                t1 = time.perf_counter()
                run = window.maxflow()
                t2 = time.perf_counter()
                value = run.value
                memo.put((tau_s, tau_e), value, window.num_nodes)
                stats.maxflow_runs += 1
                stats.augmenting_paths += run.augmenting_paths
                stats.record_sample(
                    IntervalSample(
                        interval=(tau_s, tau_e),
                        network_size=window.num_nodes,
                        mode="dinic",
                        maxflow_seconds=t2 - t1,
                        transform_seconds=t1 - t0,
                        flow_value=value,
                    )
                )
                report.windows_solved += 1
            else:
                value, size = hit
                stats.record_sample(
                    IntervalSample(
                        interval=(tau_s, tau_e),
                        network_size=size,
                        mode="memo",
                        maxflow_seconds=0.0,
                        transform_seconds=0.0,
                        flow_value=value,
                    )
                )
                report.windows_reused += 1
            best.offer(value, tau_s, tau_e)
        report.windows_total += stats.candidates_enumerated
        results.append(
            BurstingFlowResult(
                density=best.density,
                interval=best.interval,
                flow_value=best.value,
                stats=stats,
            )
        )
    report.solve_seconds = time.perf_counter() - t_start
    return results, report


# ----------------------------------------------------------------------
# Process-pool fan-out: groups are independent, so they shard cleanly.
# Same initializer/initargs discipline as repro.core.batch.
# ----------------------------------------------------------------------
_PLAN_NETWORK: TemporalFlowNetwork | None = None


def _init_plan_worker(network: TemporalFlowNetwork) -> None:
    """Pool initializer: install the batch's network in this worker."""
    global _PLAN_NETWORK
    _PLAN_NETWORK = network


def _reset_plan_worker_state() -> None:
    """Restore module defaults (also runs in the parent after the batch)."""
    global _PLAN_NETWORK
    _PLAN_NETWORK = None


def _solve_group_remote(
    payload: tuple[NodeId, NodeId, tuple[int, ...]]
) -> tuple[list[BurstingFlowResult], PlannerReport]:
    assert _PLAN_NETWORK is not None, "worker started outside answer_planned"
    source, sink, deltas = payload
    return _solve_group(_PLAN_NETWORK, source, sink, deltas)


def answer_planned(
    network: TemporalFlowNetwork,
    queries: Iterable[BurstingFlowQuery],
    *,
    processes: int | None = None,
    mp_context: str | None = None,
) -> tuple[list[BurstingFlowResult], PlannerReport]:
    """Answer a batch through the planner; results align with input order.

    Args:
        network: the shared temporal flow network.
        queries: the batch (materialised internally).
        processes: worker processes sharding the *(s, t) groups*;
            ``None`` or ``1`` runs sequentially; ``0`` means
            ``os.cpu_count()``.  Grouping keeps a group's memo inside one
            process, so the pooled answers (and their stats) are identical
            to the sequential ones.
        mp_context: multiprocessing start method (as in ``answer_many``).

    Returns:
        ``(results, report)`` — one result per query, plus the
        :class:`PlannerReport` of what the batch amortised.

    Raises:
        BatchQueryError: one group failed; the rest were cancelled.
    """
    batch: Sequence[BurstingFlowQuery] = list(queries)
    for query in batch:
        query.validate_against(network)
    report = PlannerReport()
    results: list[BurstingFlowResult | None] = [None] * len(batch)
    if not batch:
        return [], report
    groups = group_queries(batch)
    if processes == 0:
        processes = os.cpu_count() or 1
    if processes is None or processes <= 1 or len(groups) == 1:
        for group in groups:
            group_results, group_report = _solve_group(
                network,
                group.source,
                group.sink,
                [batch[i].delta for i in group.indices],
            )
            report.absorb(group_report)
            for index, result in zip(group.indices, group_results):
                results[index] = result
        return results, report  # type: ignore[return-value]

    context = multiprocessing.get_context(mp_context)
    payloads = [
        (
            group.source,
            group.sink,
            tuple(batch[i].delta for i in group.indices),
        )
        for group in groups
    ]
    try:
        outcomes = run_pool(
            payloads,
            _solve_group_remote,
            max_workers=min(processes, len(groups)),
            context=context,
            initializer=_init_plan_worker,
            initargs=(network,),
            describe=lambda gi: (
                f"group ({groups[gi].source!r} -> {groups[gi].sink!r}) "
                f"x{len(groups[gi].indices)} queries"
            ),
        )
    finally:
        _reset_plan_worker_state()
    for group, (group_results, group_report) in zip(groups, outcomes):
        report.absorb(group_report)
        for index, result in zip(group.indices, group_results):
            results[index] = result
    return results, report  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Top-k densest bursts
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BurstEntry:
    """One ranked answer of a :func:`top_k_bursts` query."""

    source: NodeId
    sink: NodeId
    delta: int
    density: float
    interval: tuple[Timestamp, Timestamp]
    flow_value: float


def top_k_bursts(
    network: TemporalFlowNetwork,
    pairs: Iterable[tuple[NodeId, NodeId]],
    delta: int,
    *,
    k: int = 10,
    processes: int | None = None,
    mp_context: str | None = None,
) -> list[BurstEntry]:
    """The ``k`` densest bursts over a candidate ``(s, t)`` list.

    Each pair contributes its delta-BFlow answer (solved through the
    planner, so duplicate pairs cost one solve); pairs with no positive
    burst are dropped.  Ranking is deterministic and mirrors the
    canonical per-query tie-break: higher density first, ties broken by
    earlier ``tau_s``, then shorter interval, then the pair's first
    appearance in the input list.

    Args:
        pairs: candidate ``(source, sink)`` pairs (e.g. from a mining
            pre-filter); duplicates are deduplicated, first wins.
        delta: minimum bursting-interval length, shared by all pairs.
        k: how many entries to return (at least 1).
        processes / mp_context: forwarded to :func:`answer_planned`.
    """
    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    unique: list[tuple[NodeId, NodeId]] = []
    seen: set[tuple[NodeId, NodeId]] = set()
    for pair in pairs:
        key = (pair[0], pair[1])
        if key not in seen:
            seen.add(key)
            unique.append(key)
    queries = [
        BurstingFlowQuery(source, sink, delta) for source, sink in unique
    ]
    results, _report = answer_planned(
        network, queries, processes=processes, mp_context=mp_context
    )
    ranked: list[tuple[tuple, BurstEntry]] = []
    for position, ((source, sink), result) in enumerate(zip(unique, results)):
        if not result.found:
            continue
        assert result.interval is not None
        tau_s, tau_e = result.interval
        sort_key = (-result.density, tau_s, tau_e - tau_s, position)
        ranked.append(
            (
                sort_key,
                BurstEntry(
                    source=source,
                    sink=sink,
                    delta=delta,
                    density=result.density,
                    interval=result.interval,
                    flow_value=result.flow_value,
                ),
            )
        )
    ranked.sort(key=lambda item: item[0])
    return [entry for _key, entry in ranked[:k]]


# ----------------------------------------------------------------------
# Differential-oracle backend
# ----------------------------------------------------------------------
def planner_bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    **_kwargs: object,
) -> BurstingFlowResult:
    """Oracle backend: one query answered through a planner batch.

    The query is surrounded with the companions that force every
    amortisation path onto *it* — an exact duplicate (whose windows must
    all come out of the memo) and overlapping delta sweeps above and
    below (whose plans share windows with the query's) — so the fuzz
    runner's cross-backend diff checks the memoised answer, not a
    degenerate single-query batch.  The duplicate's answer is asserted
    byte-identical before the original's is returned.
    """
    deltas = [query.delta]  # the duplicate
    if query.delta > 1:
        deltas.append(query.delta - 1)
    deltas.append(query.delta + 1)
    batch = [query] + [
        BurstingFlowQuery(query.source, query.sink, delta) for delta in deltas
    ]
    results, _report = answer_planned(network, batch)
    original, duplicate = results[0], results[1]
    if (
        duplicate.density != original.density
        or duplicate.interval != original.interval
        or duplicate.flow_value != original.flow_value
    ):
        raise ReproError(
            f"planner memo broke duplicate-query determinism: "
            f"{original.binary_record()!r} vs {duplicate.binary_record()!r} "
            f"for {query!r}"
        )
    return original
