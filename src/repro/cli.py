"""Command-line interface.

The subcommands mirror the library's main entry points::

    repro-bfq stats      edges.csv
    repro-bfq query      edges.csv --source alice --sink dave --delta 3
    repro-bfq scan       edges.csv --sources a,b --sinks x,y --delta-fractions 0.03,0.06
    repro-bfq trail      edges.csv --source alice --sink dave --delta 3
    repro-bfq profile    edges.csv --source alice --sink dave
    repro-bfq hunt       edges.csv --delta 10
    repro-bfq topk       edges.csv --pairs a:x,b:y --delta 10 --k 5
    repro-bfq mine       edges.csv --store patterns/ --delta 10
    repro-bfq fuzz       --trials 200 --seed 0
    repro-bfq serve      edges.csv --port 7461 --processes 4
    repro-bfq cluster    edges.csv --replicas 2 --log edges.cluster.log
    repro-bfq loadgen    --scenario query_heavy,failover_chaos --profile smoke
    repro-bfq self-check

Edge lists are CSV/TSV (``u,v,tau,capacity``, header optional) or JSON
lines; ``--compact-timestamps`` renumbers raw event times into dense
sequence numbers (results are translated back on output).

Installed as the ``repro-bfq`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.anomaly import BurstDetector, format_finding_interval
from repro.core import BurstingFlowQuery, find_bursting_flow
from repro.exceptions import ReproError
from repro.flownet.algorithms.registry import ENGINE_KERNELS
from repro.temporal import (
    format_stats_table,
    load_edge_list,
    load_jsonl,
    network_stats,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-bfq argument parser (one sub-parser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro-bfq",
        description="delta-bursting-flow queries on temporal flow networks",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_input_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("edges", type=Path, help="edge list (CSV/TSV/JSONL)")
        sub.add_argument(
            "--compact-timestamps",
            action="store_true",
            help="renumber raw event times into dense sequence numbers",
        )

    stats = subparsers.add_parser("stats", help="print Table-2 statistics")
    add_input_arguments(stats)

    query = subparsers.add_parser("query", help="answer one delta-BFlow query")
    add_input_arguments(query)
    query.add_argument("--source", required=True)
    query.add_argument("--sink", required=True)
    query.add_argument("--delta", type=int, required=True)
    query.add_argument(
        "--algorithm",
        default="bfq*",
        choices=["bfq", "bfq+", "bfq*"],
        help="which solution to run (default: bfq*)",
    )
    query.add_argument(
        "--kernel",
        default=None,
        choices=list(ENGINE_KERNELS),
        help="maxflow kernel for bfq+/bfq* (default: persistent)",
    )
    query.add_argument(
        "--transform",
        default=None,
        choices=["skeleton", "object"],
        help="window transform (default: skeleton — compiled per-query index)",
    )
    query.add_argument(
        "--parallel-windows",
        type=int,
        default=None,
        metavar="N",
        help="shard bfq candidate windows over N processes (0 = all cores)",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="print the transform/maxflow/prune phase breakdown",
    )

    scan = subparsers.add_parser(
        "scan", help="sweep queries over source/sink sets (case-study mode)"
    )
    add_input_arguments(scan)
    scan.add_argument("--sources", required=True, help="comma-separated node ids")
    scan.add_argument("--sinks", required=True, help="comma-separated node ids")
    scan.add_argument(
        "--delta-fractions",
        default="0.03,0.06,0.09",
        help="deltas as fractions of |T| (default: the paper's 3%%/6%%/9%%)",
    )
    scan.add_argument("--top", type=int, default=10, help="findings to print")
    scan.add_argument(
        "--kernel",
        default=None,
        choices=list(ENGINE_KERNELS),
        help="maxflow kernel for the bfq* sweep (default: persistent)",
    )
    scan.add_argument(
        "--transform",
        default=None,
        choices=["skeleton", "object"],
        help="window transform for the sweep (default: skeleton)",
    )
    scan.add_argument(
        "--profile",
        action="store_true",
        help="print the sweep's transform/maxflow/prune phase breakdown",
    )

    trail = subparsers.add_parser(
        "trail", help="decompose the bursting flow into transfer trails"
    )
    add_input_arguments(trail)
    trail.add_argument("--source", required=True)
    trail.add_argument("--sink", required=True)
    trail.add_argument("--delta", type=int, required=True)
    trail.add_argument("--top", type=int, default=10, help="trails to print")

    profile = subparsers.add_parser(
        "profile", help="delta sensitivity: density vs minimum duration"
    )
    add_input_arguments(profile)
    profile.add_argument("--source", required=True)
    profile.add_argument("--sink", required=True)
    profile.add_argument(
        "--deltas", default=None,
        help="comma-separated deltas (default: geometric ladder 1,2,4,...)",
    )

    hunt = subparsers.add_parser(
        "hunt", help="suspect-free burst hunting (screen nodes, then confirm)"
    )
    add_input_arguments(hunt)
    hunt.add_argument("--delta", type=int, required=True)
    hunt.add_argument("--top-sources", type=int, default=5)
    hunt.add_argument("--top-sinks", type=int, default=5)
    hunt.add_argument("--min-volume", type=float, default=0.0)

    topk = subparsers.add_parser(
        "topk",
        help="k densest bursts over candidate (source, sink) pairs "
        "(planner-amortised: one skeleton + shared window memo per pair)",
    )
    add_input_arguments(topk)
    topk.add_argument(
        "--pairs",
        default=None,
        help="comma-separated source:sink pairs (e.g. alice:dave,bob:eve)",
    )
    topk.add_argument(
        "--sources",
        default=None,
        help="comma-separated node ids (crossed with --sinks when --pairs "
        "is not given)",
    )
    topk.add_argument(
        "--sinks", default=None, help="comma-separated node ids"
    )
    topk.add_argument("--delta", type=int, required=True)
    topk.add_argument("--k", type=int, default=10, help="entries to return")
    topk.add_argument(
        "--processes",
        type=int,
        default=None,
        help="shard (source, sink) groups over N processes (0 = all cores)",
    )

    mine = subparsers.add_parser(
        "mine",
        help="mining funnel: pre-filter candidates, confirm with "
        "delta-BFlow, persist flagged patterns to a durable store",
    )
    add_input_arguments(mine)
    mine.add_argument(
        "--store",
        type=Path,
        required=True,
        help="pattern store directory (created if absent; re-scans dedupe "
        "against what is already stored)",
    )
    mine.add_argument(
        "--delta",
        type=int,
        default=None,
        help="burst duration bound (required unless --no-scan)",
    )
    mine.add_argument(
        "--top",
        type=int,
        default=8,
        help="top emitters/collectors entering confirmation (default: 8)",
    )
    mine.add_argument(
        "--min-volume",
        type=float,
        default=0.0,
        help="pre-filter: ignore nodes below this total volume",
    )
    mine.add_argument(
        "--min-density",
        type=float,
        default=0.0,
        help="never persist confirmed bursts below this density",
    )
    mine.add_argument(
        "--persist",
        default="flagged",
        choices=["flagged", "all"],
        help="store only flagged outliers (default) or every positive burst",
    )
    mine.add_argument(
        "--processes",
        type=int,
        default=None,
        help="shard confirmation solves over N processes (0 = all cores)",
    )
    mine.add_argument(
        "--list",
        action="store_true",
        help="list stored patterns (after the scan; with --no-scan, only list)",
    )
    mine.add_argument(
        "--no-scan",
        action="store_true",
        help="skip scanning; query the store only (implies --list)",
    )
    mine.add_argument("--pattern-source", default=None, help="list filter")
    mine.add_argument("--pattern-sink", default=None, help="list filter")
    mine.add_argument(
        "--limit", type=int, default=20, help="patterns to list (default: 20)"
    )
    mine.add_argument(
        "--prune",
        action="store_true",
        help="apply the retention policy (after the scan, before --list); "
        "requires --max-age-epochs and/or --max-patterns",
    )
    mine.add_argument(
        "--max-age-epochs",
        type=int,
        default=None,
        help="prune: drop patterns detected more than N epochs before "
        "the newest stored record",
    )
    mine.add_argument(
        "--max-patterns",
        type=int,
        default=None,
        help="prune: keep at most N patterns (newest first)",
    )

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: all backends + flow certificates",
    )
    fuzz.add_argument("--trials", type=int, default=100, help="cases to run")
    fuzz.add_argument("--seed", type=int, default=0, help="master RNG seed")
    fuzz.add_argument(
        "--generators",
        default=None,
        help="comma-separated generator subset (default: all registered)",
    )
    fuzz.add_argument(
        "--backends",
        default=None,
        help=(
            "comma-separated backend subset of "
            "bfq,bfq-skel,bfq+,bfq*,vectorized,push_relabel,adaptive,"
            "planner,naive,networkx,service,"
            "cluster,mining (vectorized/push_relabel/adaptive are bfq* "
            "pinned to the specialised maxflow kernels; cluster boots a "
            "live 2-replica cluster per "
            "trial and mining persists + replays a pattern store per "
            "trial; both are excluded from the default set; planner "
            "answers through a shared-skeleton batch with duplicate + "
            "overlapping-delta companions)"
        ),
    )
    fuzz.add_argument(
        "--no-certify",
        action="store_true",
        help="skip flow-certificate checking (differential diff only)",
    )
    fuzz.add_argument(
        "--no-pruning-check",
        action="store_true",
        help="skip the pruning-on vs pruning-off invariance check",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as generated, without minimisation",
    )
    fuzz.add_argument(
        "--dump-dir",
        type=Path,
        default=None,
        help="write failing reproducers there as JSON fixtures",
    )
    fuzz.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="detailed failure reports to print (default: 5)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="boot the concurrent delta-BFlow query service (TCP/HTTP)",
    )
    add_input_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7461, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--algorithm",
        default="bfq*",
        choices=["bfq", "bfq+", "bfq*"],
        help="default solution for requests that name none",
    )
    serve.add_argument(
        "--kernel",
        default=None,
        choices=list(ENGINE_KERNELS),
        help="default maxflow kernel for bfq+/bfq*",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=None,
        help=(
            "engine worker processes (0 = cpu count; default: in-process "
            "threads)"
        ),
    )
    serve.add_argument(
        "--mp-context",
        default=None,
        choices=["fork", "forkserver", "spawn"],
        help="start method for the worker pool",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=4096, help="result-cache entries"
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result-cache TTL in seconds (default: no expiry)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission bound on in-flight requests (overload beyond)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds",
    )
    serve.add_argument(
        "--patterns",
        type=Path,
        default=None,
        help="pattern store directory: enables the scan/patterns wire ops "
        "(burst mining against the served network)",
    )
    serve.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="stop after this many seconds (smoke tests; default: forever)",
    )

    cluster = subparsers.add_parser(
        "cluster",
        help="boot a replicated delta-BFlow cluster (coordinator + N replicas)",
    )
    add_input_arguments(cluster)
    cluster.add_argument("--host", default="127.0.0.1", help="bind address")
    cluster.add_argument(
        "--port", type=int, default=7461, help="bind port (0 = ephemeral)"
    )
    cluster.add_argument(
        "--replicas", type=int, default=2, help="replica count (default: 2)"
    )
    cluster.add_argument(
        "--log",
        type=Path,
        default=None,
        help=(
            "shared append log path (default: <edges>.cluster.log); an "
            "empty or absent log is seeded from the edge list, an "
            "existing one is replayed as-is"
        ),
    )
    cluster.add_argument(
        "--replica-mode",
        default="process",
        choices=["process", "inline"],
        help="replicas as child processes (default) or in-process services",
    )
    cluster.add_argument(
        "--algorithm",
        default="bfq*",
        choices=["bfq", "bfq+", "bfq*"],
        help="default solution for requests that name none",
    )
    cluster.add_argument(
        "--kernel",
        default=None,
        choices=list(ENGINE_KERNELS),
        help="default maxflow kernel for bfq+/bfq*",
    )
    cluster.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        help="result-cache entries per replica",
    )
    cluster.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="per-replica admission bound on in-flight requests",
    )
    cluster.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the append log on every append (durable to media)",
    )
    cluster.add_argument(
        "--snapshots",
        type=Path,
        default=None,
        help="snapshot directory for bounded recovery "
        "(default: <log>.snapshots)",
    )
    cluster.add_argument(
        "--snapshot-every",
        type=int,
        default=512,
        help="checkpoint (snapshot + log compaction) after this many "
        "committed appends; 0 disables automatic checkpoints "
        "(default: 512)",
    )
    cluster.add_argument(
        "--patterns",
        type=Path,
        default=None,
        help="pattern store directory on the coordinator: enables the "
        "cluster-wide scan/patterns ops (confirmation scatters across "
        "replicas by pair affinity)",
    )
    cluster.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="stop after this many seconds (smoke tests; default: forever)",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="open-loop load scenarios with SLO gating (see docs/loadtest.md)",
    )
    loadgen.add_argument(
        "--scenario",
        default=None,
        help="comma-separated scenario subset (default: the full matrix: "
        "query_heavy,append_heavy,mixed,cache_cold_restart,failover_chaos)",
    )
    loadgen.add_argument(
        "--profile",
        default="smoke",
        choices=["smoke", "full"],
        help="scale + SLO profile: smoke (seconds, CI) or full "
        "(the committed BENCH_PR10.json scale); default: smoke",
    )
    loadgen.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the JSON report (scenario reports + SLO results) there",
    )
    loadgen.add_argument(
        "--dataset", default=None, help="override the scenario dataset"
    )
    loadgen.add_argument(
        "--dataset-scale", type=float, default=None, help="dataset size factor"
    )
    loadgen.add_argument(
        "--duration", type=float, default=None, help="seconds of offered load"
    )
    loadgen.add_argument(
        "--base-rate", type=float, default=None, help="quiet-state ops/s"
    )
    loadgen.add_argument(
        "--burst-rate", type=float, default=None, help="burst-state ops/s"
    )
    loadgen.add_argument(
        "--connections", type=int, default=None, help="driver client pool size"
    )
    loadgen.add_argument(
        "--seed", type=int, default=None, help="trace seed (reproducible runs)"
    )
    loadgen.add_argument(
        "--no-gate",
        action="store_true",
        help="report only; skip the SLO assertions (exit 0 regardless)",
    )

    subparsers.add_parser(
        "self-check", help="run installation health invariants"
    )
    return parser


def _load(path: Path, compact: bool):
    loader = load_jsonl if path.suffix.lower() in (".jsonl", ".ndjson") else load_edge_list
    loaded = loader(path, compact_timestamps=compact)
    if compact:
        return loaded  # (network, codec)
    return loaded, None


def _run_stats(args: argparse.Namespace) -> int:
    network, _ = _load(args.edges, args.compact_timestamps)
    print(format_stats_table({args.edges.name: network_stats(network)}))
    return 0


def _run_query(args: argparse.Namespace) -> int:
    network, codec = _load(args.edges, args.compact_timestamps)
    started = time.perf_counter()
    result = find_bursting_flow(
        network,
        BurstingFlowQuery(args.source, args.sink, args.delta),
        algorithm=args.algorithm,
        kernel=args.kernel,
        transform=args.transform,
        parallel_windows=args.parallel_windows,
    )
    elapsed = time.perf_counter() - started
    if args.profile:
        from repro.core.profile import PhaseBreakdown

        print(f"phases           : {PhaseBreakdown.from_stats(result.stats).format()}")
    if not result.found:
        print(
            f"no bursting flow from {args.source} to {args.sink} "
            f"with delta={args.delta}"
        )
        return 1
    interval = result.interval
    shown = codec.decode_interval(interval) if codec else interval
    print(f"density          : {result.density:,.4f}")
    print(f"flow value       : {result.flow_value:,.4f}")
    print(f"bursting interval: [{shown[0]}, {shown[1]}]")
    print(
        f"({result.stats.candidates_enumerated} candidates, "
        f"{result.stats.maxflow_runs} maxflow runs, "
        f"{result.stats.pruned_intervals} pruned, {elapsed:.3f}s)"
    )
    return 0


def _run_scan(args: argparse.Namespace) -> int:
    network, codec = _load(args.edges, args.compact_timestamps)
    horizon = network.num_timestamps
    deltas = sorted(
        {
            max(1, round(horizon * float(fraction)))
            for fraction in args.delta_fractions.split(",")
        }
    )
    detector = BurstDetector(
        network, kernel=args.kernel, transform=args.transform
    )
    report = detector.scan(
        args.sources.split(","), args.sinks.split(","), deltas
    )
    print(f"scanned {len(report.findings)} (source, sink, delta) queries")
    if args.profile:
        print(f"phases: {report.phases.format()}")
    print(f"flagged {len(report.flagged)} outliers")
    header = f"{'source':<16} {'sink':<16} {'delta':>6} {'density':>14}  interval"
    print(header)
    print("-" * len(header))
    for finding in report.top(args.top):
        marker = " *FLAGGED*" if finding in report.flagged else ""
        print(
            f"{str(finding.source):<16} {str(finding.sink):<16} "
            f"{finding.delta:>6} {finding.density:>14,.2f}  "
            f"{format_finding_interval(finding, codec)}{marker}"
        )
    return 0


def _run_trail(args: argparse.Namespace) -> int:
    from repro.core import bursting_flow_trails

    network, codec = _load(args.edges, args.compact_timestamps)
    report = bursting_flow_trails(
        network, BurstingFlowQuery(args.source, args.sink, args.delta)
    )
    if not report.found:
        print(
            f"no bursting flow from {args.source} to {args.sink} "
            f"with delta={args.delta}"
        )
        return 1
    lo, hi = report.interval
    shown = codec.decode_interval((lo, hi)) if codec else (lo, hi)
    print(
        f"bursting flow: {report.flow_value:,.2f} units at density "
        f"{report.density:,.2f} during [{shown[0]}, {shown[1]}]"
    )
    print(f"{len(report.trails)} trails (largest first):")
    for trail in report.trails[: args.top]:
        print(f"  {trail.describe()}")
    if len(report.trails) > args.top:
        print(f"  ... and {len(report.trails) - args.top} more")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    from repro.core import density_profile, suggest_delta

    network, _codec = _load(args.edges, args.compact_timestamps)
    deltas = None
    if args.deltas:
        deltas = [int(d) for d in args.deltas.split(",")]
    profile = density_profile(network, args.source, args.sink, deltas)
    if not profile:
        print("no evaluable deltas for this network")
        return 1
    print(f"{'delta':>8} {'density':>14} {'flow':>12}  interval")
    for point in profile:
        print(
            f"{point.delta:>8} {point.density:>14,.3f} "
            f"{point.flow_value:>12,.2f}  {point.interval}"
        )
    knee = suggest_delta(profile)
    if knee is not None:
        print(f"suggested delta: {knee.delta} (density {knee.density:,.3f})")
    return 0


def _run_hunt(args: argparse.Namespace) -> int:
    from repro.anomaly import hunt_bursts
    from repro.anomaly.report import format_finding_interval

    network, codec = _load(args.edges, args.compact_timestamps)
    report = hunt_bursts(
        network,
        delta=args.delta,
        top_sources=args.top_sources,
        top_sinks=args.top_sinks,
        min_volume=args.min_volume,
    )
    print(
        f"screened to {args.top_sources} emitters x {args.top_sinks} "
        f"collectors; {len(report.findings)} confirmations, "
        f"{len(report.flagged)} flagged"
    )
    for finding in report.top(10):
        marker = " *FLAGGED*" if finding in report.flagged else ""
        print(
            f"  {finding.source} -> {finding.sink}: "
            f"density {finding.density:,.2f} during "
            f"{format_finding_interval(finding, codec)}{marker}"
        )
    return 0


def _run_topk(args: argparse.Namespace) -> int:
    from repro.core import top_k_bursts

    network, codec = _load(args.edges, args.compact_timestamps)
    if args.pairs:
        pairs = []
        for chunk in args.pairs.split(","):
            source, sep, sink = chunk.partition(":")
            if not sep or not source or not sink:
                raise ReproError(
                    f"--pairs entries must look like source:sink, got {chunk!r}"
                )
            pairs.append((source, sink))
    elif args.sources and args.sinks:
        sources = [s for s in args.sources.split(",") if s]
        sinks = [t for t in args.sinks.split(",") if t]
        pairs = [(s, t) for s in sources for t in sinks if s != t]
    else:
        raise ReproError("give either --pairs or both --sources and --sinks")
    started = time.perf_counter()
    entries = top_k_bursts(
        network, pairs, args.delta, k=args.k, processes=args.processes
    )
    elapsed = time.perf_counter() - started
    if not entries:
        print(f"no positive bursts among {len(pairs)} pairs (delta={args.delta})")
        return 1
    header = f"{'#':>3} {'source':<16} {'sink':<16} {'density':>14}  interval"
    print(header)
    print("-" * len(header))
    for rank, entry in enumerate(entries, start=1):
        shown = codec.decode_interval(entry.interval) if codec else entry.interval
        print(
            f"{rank:>3} {str(entry.source):<16} {str(entry.sink):<16} "
            f"{entry.density:>14,.2f}  [{shown[0]}, {shown[1]}]"
        )
    print(f"({len(pairs)} pairs, k={args.k}, {elapsed:.3f}s)")
    return 0


def _run_mine(args: argparse.Namespace) -> int:
    from repro.mining import MiningConfig, MiningPipeline, PatternStore

    if not args.no_scan and args.delta is None:
        print("error: --delta is required unless --no-scan", file=sys.stderr)
        return 2

    network, codec = _load(args.edges, args.compact_timestamps)
    store = PatternStore(args.store)
    try:
        if not args.no_scan:
            config = MiningConfig(
                top_sources=args.top,
                top_sinks=args.top,
                min_volume=args.min_volume,
                min_density=args.min_density,
            )
            pipeline = MiningPipeline(
                network, store, config=config, processes=args.processes
            )
            started = time.perf_counter()
            outcome = pipeline.scan(args.delta, persist=args.persist)
            elapsed = time.perf_counter() - started
            funnel = outcome.funnel
            print(
                f"funnel: {funnel.nodes_scored} nodes scored, "
                f"{funnel.candidates} candidates "
                f"(exhaustive sweep: {funnel.exhaustive_pairs} pairs, "
                f"{funnel.amortization:.1f}x fewer solves), "
                f"{funnel.confirmed} confirmed, {funnel.flagged} flagged"
            )
            print(
                f"persisted: {len(outcome.new_ids)} new, "
                f"{outcome.deduped} already stored "
                f"(epoch {outcome.epoch}, {elapsed:.3f}s)"
            )
            for record in outcome.records:
                shown = (
                    codec.decode_interval(record.interval)
                    if codec
                    else record.interval
                )
                marker = "+" if record.pattern_id in outcome.new_ids else "="
                print(
                    f"  {marker} {record.pattern_id} "
                    f"{record.source} -> {record.sink} "
                    f"density {record.density:,.2f} "
                    f"interval [{shown[0]}, {shown[1]}] "
                    f"z {record.z_score:.1f}"
                )
        if args.prune:
            if args.max_age_epochs is None and args.max_patterns is None:
                print(
                    "error: --prune requires --max-age-epochs and/or "
                    "--max-patterns",
                    file=sys.stderr,
                )
                return 2
            dropped = store.prune(
                max_age_epochs=args.max_age_epochs,
                max_patterns=args.max_patterns,
            )
            print(
                f"pruned: {dropped} pattern(s) dropped, "
                f"{len(store)} retained (log compacted)"
            )
        if args.list or args.no_scan:
            records = store.query(
                source=args.pattern_source,
                sink=args.pattern_sink,
                min_density=args.min_density or None,
                limit=args.limit,
            )
            print(f"stored patterns ({len(records)} shown, {len(store)} total):")
            for record in records:
                shown = (
                    codec.decode_interval(record.interval)
                    if codec
                    else record.interval
                )
                print(
                    f"  {record.pattern_id} {record.source} -> {record.sink} "
                    f"delta {record.delta} density {record.density:,.2f} "
                    f"interval [{shown[0]}, {shown[1]}] "
                    f"evidence {record.evidence_count} edges"
                )
    finally:
        store.close()
    return 0


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.oracle import fuzz

    backends = None
    if args.backends is not None:
        from repro.oracle import BACKENDS

        backends = tuple(
            name.strip() for name in args.backends.split(",") if name.strip()
        )
        unknown = [name for name in backends if name not in BACKENDS]
        if unknown:
            raise ReproError(
                f"unknown backends {unknown!r}; known: {', '.join(BACKENDS)}"
            )

    started = time.perf_counter()
    report = fuzz(
        trials=args.trials,
        seed=args.seed,
        generators=args.generators,
        backends=backends,
        certify=not args.no_certify,
        check_pruning=not args.no_pruning_check,
        shrink=not args.no_shrink,
        dump_dir=args.dump_dir,
    )
    elapsed = time.perf_counter() - started
    print(report.summary())
    print(f"({elapsed:.2f}s)")
    if report.ok:
        return 0
    for failure in report.failures[: args.max_failures]:
        shown = failure.shrunk if failure.shrunk is not None else failure.outcome.case
        print(f"\ntrial {failure.trial}: {failure.outcome.describe()}")
        if failure.shrunk is not None:
            print(f"  shrunk to {shown.describe()}")
            for edge in shown.edges:
                print(f"    edge {edge!r}")
        if failure.fixture_path is not None:
            print(f"  fixture: {failure.fixture_path}")
    remaining = len(report.failures) - args.max_failures
    if remaining > 0:
        print(f"\n... and {remaining} more failing trials")
    return 1


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import BurstingFlowService

    network, _codec = _load(args.edges, args.compact_timestamps)

    async def _serve() -> int:
        mining = None
        store = None
        if args.patterns is not None:
            from repro.mining import MiningPipeline, PatternStore

            store = PatternStore(args.patterns)
            mining = MiningPipeline(network, store)
        service = BurstingFlowService(
            network,
            algorithm=args.algorithm,
            kernel=args.kernel,
            processes=args.processes,
            mp_context=args.mp_context,
            cache_capacity=args.cache_capacity,
            cache_ttl=args.cache_ttl,
            max_pending=args.max_pending,
            default_timeout=args.timeout,
            mining=mining,
        )
        host, port = await service.start(args.host, args.port)
        workers = (
            "inline threads"
            if args.processes in (None, 1)
            else f"{args.processes or 'auto'} processes"
        )
        print(
            f"serving delta-BFlow queries on {host}:{port} "
            f"(algorithm {args.algorithm}, {workers}, epoch {network.epoch})"
        )
        endpoints = "endpoints: NDJSON-TCP, GET /metrics, GET /healthz, POST /query"
        if mining is not None:
            endpoints += ", POST /scan, GET /patterns"
            print(f"pattern store: {args.patterns} ({len(store)} patterns)")
        print(endpoints)
        try:
            if args.serve_seconds is not None:
                await asyncio.sleep(args.serve_seconds)
            else:
                await service.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await service.stop()
            if store is not None:
                store.close()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _run_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.cluster import (
        ClusterCoordinator,
        InlineReplica,
        ProcessReplica,
        network_edges,
        seed_log,
    )
    from repro.store.log import AppendLog

    if args.replicas < 1:
        raise ReproError("--replicas must be at least 1")
    log_path = args.log or args.edges.with_suffix(args.edges.suffix + ".cluster.log")

    # Seed an empty/absent log from the edge list; an existing log is the
    # durable truth and replays as-is (the edge list is ignored then).
    if not log_path.exists() or log_path.stat().st_size == 0:
        network, _codec = _load(args.edges, args.compact_timestamps)
        seed = AppendLog(log_path, fsync=args.fsync)
        try:
            seed_log(seed, network_edges(network))
        finally:
            seed.close()

    async def _serve() -> int:
        replicas = []
        for index in range(args.replicas):
            replica_id = f"r{index}"
            if args.replica_mode == "process":
                replicas.append(
                    ProcessReplica(
                        replica_id,
                        log_path,
                        snapshots=args.snapshots,
                        cache_capacity=args.cache_capacity,
                        max_pending=args.max_pending,
                        algorithm=args.algorithm,
                        kernel=args.kernel,
                    )
                )
            else:
                replicas.append(
                    InlineReplica(
                        replica_id,
                        log_path,
                        snapshots=args.snapshots,
                        cache_capacity=args.cache_capacity,
                        max_pending=args.max_pending,
                        algorithm=args.algorithm,
                        kernel=args.kernel,
                    )
                )
        coordinator = ClusterCoordinator(
            log_path,
            replicas,
            fsync=args.fsync,
            snapshot_dir=args.snapshots,
            snapshot_every=args.snapshot_every or None,
            patterns_dir=args.patterns,
        )
        host, port = await coordinator.start(args.host, args.port)
        print(
            f"cluster coordinator on {host}:{port} "
            f"({args.replicas} {args.replica_mode} replicas, "
            f"log {log_path}, committed epoch {coordinator.committed_epoch})"
        )
        print("endpoints: NDJSON-TCP, GET /metrics, GET /healthz, POST /drain")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        try:
            if args.serve_seconds is not None:
                await asyncio.wait_for(stop.wait(), timeout=args.serve_seconds)
            else:
                await stop.wait()
        except asyncio.TimeoutError:
            pass
        finally:
            await coordinator.drain(timeout=10.0)
            await coordinator.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _run_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.loadgen import (
        FULL_SCALE,
        FULL_SLOS,
        SCENARIOS,
        SMOKE_SCALE,
        SMOKE_SLOS,
        evaluate_matrix,
        run_scenario,
        scale_from_overrides,
    )

    names = (
        [name.strip() for name in args.scenario.split(",") if name.strip()]
        if args.scenario
        else list(SCENARIOS)
    )
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ReproError(
            f"unknown scenario(s) {unknown!r}; known: {', '.join(SCENARIOS)}"
        )

    base = SMOKE_SCALE if args.profile == "smoke" else FULL_SCALE
    slos = SMOKE_SLOS if args.profile == "smoke" else FULL_SLOS
    overrides = {
        key: value
        for key, value in (
            ("dataset", args.dataset),
            ("dataset_scale", args.dataset_scale),
            ("duration_s", args.duration),
            ("base_rate", args.base_rate),
            ("burst_rate", args.burst_rate),
            ("connections", args.connections),
            ("seed", args.seed),
        )
        if value is not None
    }
    scale = scale_from_overrides(base, overrides)

    reports = {}
    for name in names:
        print(f"scenario {name} ({args.profile} profile)...")
        report = run_scenario(name, scale=scale)
        reports[name] = report
        achieved = report.achieved_rate or 0.0
        line = (
            f"  offered {report.offered_rate:,.1f}/s  "
            f"achieved {achieved:,.1f}/s  "
            f"errors {report.error_rate:.2%}  "
            f"lag p99 {report.lag_ms.get('p99_ms')}ms"
        )
        if report.recovery_s is not None:
            line += f"  recovery {report.recovery_s:.2f}s"
        if report.lost_acked_appends is not None:
            line += f"  lost acked {report.lost_acked_appends}"
        print(line)

    results = None
    passed = True
    if not args.no_gate:
        results = evaluate_matrix(reports, {name: slos[name] for name in names})
        print("SLO gate:")
        for name, result in results.items():
            print(f"  [{'PASS' if result.passed else 'FAIL'}] {name}")
            for check in result.failures:
                print(
                    f"      {check.name}: observed {check.observed!r}, "
                    f"bound {check.bound!r}"
                )
        passed = all(result.passed for result in results.values())

    if args.output is not None:
        payload = {
            "profile": args.profile,
            "scale": scale.as_dict(),
            "passed": passed,
            "scenarios": {
                name: report.as_dict() for name, report in reports.items()
            },
            "slos": {name: slos[name].as_dict() for name in names},
        }
        if results is not None:
            payload["gate"] = {
                name: result.as_dict() for name, result in results.items()
            }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")

    return 0 if passed else 1


def _run_self_check(args: argparse.Namespace) -> int:
    from repro.verify import self_check

    for check, outcome in self_check().items():
        print(f"{check:<24} OK  ({outcome})")
    return 0


_HANDLERS = {
    "stats": _run_stats,
    "query": _run_query,
    "scan": _run_scan,
    "trail": _run_trail,
    "profile": _run_profile,
    "hunt": _run_hunt,
    "topk": _run_topk,
    "mine": _run_mine,
    "fuzz": _run_fuzz,
    "serve": _run_serve,
    "cluster": _run_cluster,
    "loadgen": _run_loadgen,
    "self-check": _run_self_check,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
