"""Temporal reachability utilities.

These helpers answer "can any flow travel from s to t inside a window?"
without running a full Maxflow.  They are used by the query-workload
generator (the paper selects (s, t) pairs "such that there exists
non-trivial temporal flows from s to t, which contain paths from s to t
having a length not less than 3") and by fast-fail paths in the engine.

The flow-transfer model of the paper lets value *wait* at a node: a unit
arriving at node ``u`` at time ``tau`` may leave on any edge with timestamp
``tau' >= tau``.  Temporal reachability under this model is therefore the
classic earliest-arrival relaxation.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Mapping

from repro.exceptions import UnknownNodeError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

INFINITY_TIME = float("inf")


def earliest_arrival(
    network: TemporalFlowNetwork,
    source: NodeId,
    *,
    depart_at: Timestamp | None = None,
    until: Timestamp | None = None,
) -> Mapping[NodeId, float]:
    """Earliest arrival time at every node when leaving ``source``.

    Value waits freely at nodes, so an edge ``(u, v, tau)`` is usable
    whenever ``tau >= arrival(u)`` (and ``tau <= until`` if bounded).
    Dijkstra-style label setting over arrival times.

    Returns a mapping node -> earliest arrival time; unreachable nodes are
    absent.  The source itself has arrival time ``depart_at`` (default: the
    network's first timestamp).
    """
    if source not in network:
        raise UnknownNodeError(source)
    start = network.t_min if depart_at is None else depart_at
    horizon = network.t_max if until is None else until
    arrival: dict[NodeId, float] = {source: float(start)}
    heap: list[tuple[float, int, NodeId]] = [(float(start), 0, source)]
    tie = 0
    while heap:
        at, _, node = heapq.heappop(heap)
        if at > arrival.get(node, INFINITY_TIME):
            continue
        for tau, neighbours in network.out_timestamps_of(node).items():
            if tau < at or tau > horizon:
                continue
            for other in neighbours:
                if tau < arrival.get(other, INFINITY_TIME):
                    arrival[other] = float(tau)
                    tie += 1
                    heapq.heappush(heap, (float(tau), tie, other))
    return arrival


def is_temporally_reachable(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    *,
    tau_s: Timestamp | None = None,
    tau_e: Timestamp | None = None,
) -> bool:
    """Whether any unit of flow could travel ``source -> sink`` in the window."""
    if sink not in network:
        raise UnknownNodeError(sink)
    arrival = earliest_arrival(network, source, depart_at=tau_s, until=tau_e)
    return sink in arrival


def min_temporal_hops(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    *,
    tau_s: Timestamp | None = None,
    tau_e: Timestamp | None = None,
) -> int | None:
    """Fewest edges on any time-respecting path ``source -> sink``.

    Returns ``None`` when the sink is unreachable.  Used to enforce the
    paper's "non-trivial flow" query-selection criterion (hops >= 3).

    The search state is (node, arrival time); a BFS over hop count with
    per-node dominance on arrival times keeps it near-linear in practice.
    """
    if source not in network or sink not in network:
        raise UnknownNodeError(source if source not in network else sink)
    start = network.t_min if tau_s is None else tau_s
    horizon = network.t_max if tau_e is None else tau_e
    # best_arrival[node] = smallest arrival time seen at this hop count or
    # earlier; visiting again with a later arrival is never useful.
    best_arrival: dict[NodeId, float] = {source: float(start)}
    frontier: deque[tuple[NodeId, float]] = deque([(source, float(start))])
    hops = 0
    while frontier:
        hops += 1
        next_frontier: deque[tuple[NodeId, float]] = deque()
        for node, at in frontier:
            for tau, neighbours in network.out_timestamps_of(node).items():
                if tau < at or tau > horizon:
                    continue
                for other in neighbours:
                    if other == sink:
                        return hops
                    known = best_arrival.get(other, INFINITY_TIME)
                    if tau < known:
                        best_arrival[other] = float(tau)
                        next_frontier.append((other, float(tau)))
        frontier = next_frontier
    return None


def reachable_set(
    network: TemporalFlowNetwork,
    source: NodeId,
    *,
    tau_s: Timestamp | None = None,
    tau_e: Timestamp | None = None,
) -> frozenset[NodeId]:
    """All nodes temporally reachable from ``source`` within the window."""
    return frozenset(earliest_arrival(network, source, depart_at=tau_s, until=tau_e))
