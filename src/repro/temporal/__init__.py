"""Temporal flow network substrate.

Everything the delta-BFlow algorithms need to represent, validate, load and
inspect temporal flow networks (Section 3 of the paper).
"""

from repro.temporal.builder import TemporalFlowNetworkBuilder, TimestampCodec
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.flow import TemporalFlow, validate_temporal_flow
from repro.temporal.io import load_edge_list, load_jsonl, save_edge_list, save_jsonl
from repro.temporal.network import TemporalFlowNetwork
from repro.temporal.reachability import (
    earliest_arrival,
    is_temporally_reachable,
    min_temporal_hops,
    reachable_set,
)
from repro.temporal.stats import NetworkStats, format_stats_table, network_stats
from repro.temporal.views import (
    filter_edges,
    merge_networks,
    node_induced_subnetwork,
    relabel_nodes,
    shift_timestamps,
    window_subnetwork,
)

__all__ = [
    "NodeId",
    "Timestamp",
    "TemporalEdge",
    "TemporalFlowNetwork",
    "TemporalFlowNetworkBuilder",
    "TimestampCodec",
    "TemporalFlow",
    "validate_temporal_flow",
    "load_edge_list",
    "load_jsonl",
    "save_edge_list",
    "save_jsonl",
    "earliest_arrival",
    "is_temporally_reachable",
    "min_temporal_hops",
    "reachable_set",
    "NetworkStats",
    "network_stats",
    "window_subnetwork",
    "node_induced_subnetwork",
    "filter_edges",
    "relabel_nodes",
    "merge_networks",
    "shift_timestamps",
    "format_stats_table",
]
