"""Zero-copy network shipping over POSIX shared memory.

The process-pool engine backends ship the temporal network to workers by
pickling it through ``initializer``/``initargs`` — and, worse, *re-ship
the whole network by rebuilding the pool* every time a streaming append
moves the epoch.  On an append-heavy workload the service spends more
time tearing down and re-initialising worker processes than answering
queries.

:class:`SharedNetworkStore` replaces that with an **append-only edge log
in** :mod:`multiprocessing.shared_memory`:

* the owner (the server process) publishes every committed
  :class:`~repro.temporal.edge.TemporalEdge` as a length-prefixed pickled
  record into a data segment, and maintains a tiny fixed-layout header
  segment carrying ``(epoch, record count, used bytes, generation,
  data-segment name)``;
* each worker attaches both segments **once** (zero-copy: the record
  bytes are mapped, not duplicated per process), replays the log through
  :meth:`~repro.temporal.network.TemporalFlowNetwork.add_edge`, and
  adopts the published epoch;
* after an append the owner writes only the *new* records and bumps the
  header — workers catch up by replaying the suffix at their next task,
  and the pool itself is never rebuilt.

Concurrency contract: exactly one owner writes, and writes never overlap
reads of a *moving* header — the service guarantees this with its
reader/writer lock (appends publish under the writer lock; queries run
under reader locks).  Within that contract the header is written
data-first (records before ``used``/``count`` before ``epoch``), so even
a racing reader can only ever observe a fully published prefix.

The data segment grows by capacity doubling: the owner copies the log
into a fresh, larger segment under a bumped ``generation`` and unlinks
the old one (attached workers keep their mapping alive — POSIX shm
behaves like an unlinked file — and re-attach lazily when they notice
the generation moved).

Resource-tracker note (CPython ``bpo-39959``): readers are always pool
workers inside the owner's process tree, which share the parent's
``multiprocessing`` resource tracker — a worker attach re-registers a
name the owner already registered (a set, so a no-op), and nothing
special happens at worker exit.  The owner holds the single unlink
responsibility (:meth:`SharedNetworkStore.close`); if the owner dies
without closing, the shared tracker reaps the segments at interpreter
shutdown.  Attaching from an *unrelated* process tree (a foreign
tracker) is not supported: that tracker would unlink the owner's
segments when the foreign process exits.
"""

from __future__ import annotations

import pickle
import secrets
import struct
from multiprocessing import shared_memory

from repro.exceptions import ReproError
from repro.temporal.edge import TemporalEdge
from repro.temporal.network import TemporalFlowNetwork

#: Fixed header layout: epoch, record count, used data bytes, generation
#: (little-endian int64 each), then the utf-8 data-segment name padded to
#: the end of the header segment.
_HEADER = struct.Struct("<qqqq")
_NAME_OFFSET = 64
HEADER_SIZE = 256
#: Length prefix of one pickled record.
_LEN = struct.Struct("<I")

#: Initial data-segment capacity (bytes); doubled on demand.
INITIAL_CAPACITY = 1 << 16


def _encode_record(edge: TemporalEdge) -> bytes:
    payload = pickle.dumps(
        (edge.u, edge.v, edge.tau, edge.capacity),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _LEN.pack(len(payload)) + payload


class SharedNetworkStore:
    """Owner side: publish a network's edge log into shared memory.

    Args:
        network: the live network whose committed state to publish; all
            current edges are written immediately.
        capacity: initial data-segment size in bytes (grows by doubling).

    The store name (:attr:`name`) is what workers pass to
    :class:`SharedNetworkReader` — it travels through pool ``initargs``
    as a short string instead of the whole pickled network.
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        *,
        capacity: int = INITIAL_CAPACITY,
    ) -> None:
        self.name = f"repro-net-{secrets.token_hex(6)}"
        #: The last committed epoch — readers adopt it after replay, and
        #: the owner compares it against the live network to detect
        #: mutations that were never published through :meth:`publish`.
        self.epoch = 0
        self._generation = 0
        self._count = 0
        self._used = 0
        self._header = shared_memory.SharedMemory(
            name=self.name, create=True, size=HEADER_SIZE
        )
        self._data = shared_memory.SharedMemory(
            name=self._data_name(), create=True, size=max(capacity, 1024)
        )
        self._closed = False
        self._write_header(epoch=0)
        self.publish(network.edges(), epoch=network.epoch)

    # ------------------------------------------------------------------
    def _data_name(self) -> str:
        return f"{self.name}-d{self._generation}"

    def _write_header(self, *, epoch: int) -> None:
        # Order matters for racing readers: the name/generation and the
        # counters go first, the epoch (the "something changed" signal
        # readers poll) last.
        buf = self._header.buf
        name = self._data_name().encode("utf-8")
        buf[_NAME_OFFSET : _NAME_OFFSET + len(name)] = name
        buf[_NAME_OFFSET + len(name)] = 0
        _HEADER.pack_into(
            buf, 0, epoch, self._count, self._used, self._generation
        )

    def _grow(self, need: int) -> None:
        size = self._data.size
        while size < self._used + need:
            size *= 2
        old = self._data
        self._generation += 1
        fresh = shared_memory.SharedMemory(
            name=self._data_name(), create=True, size=size
        )
        fresh.buf[: self._used] = old.buf[: self._used]
        self._data = fresh
        # Attached workers keep their (now anonymous) mapping until they
        # re-attach; the owner is done with the old segment.
        old.close()
        old.unlink()

    def publish(self, edges, *, epoch: int) -> int:
        """Append ``edges`` to the log and commit the new ``epoch``.

        Returns the number of records written.  Must run while the
        network is quiescent (the service's writer lock).
        """
        if self._closed:
            raise ReproError(f"shared store {self.name} is closed")
        records = [_encode_record(edge) for edge in edges]
        need = sum(len(r) for r in records)
        if need and self._used + need > self._data.size:
            self._grow(need)
        buf = self._data.buf
        for record in records:
            buf[self._used : self._used + len(record)] = record
            self._used += len(record)
        self._count += len(records)
        self._write_header(epoch=epoch)
        self.epoch = epoch
        return len(records)

    @property
    def records(self) -> int:
        """Records published so far."""
        return self._count

    def close(self) -> None:
        """Release and unlink both segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for segment in (self._data, self._header):
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedNetworkStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SharedNetworkReader:
    """Worker side: a network replayed from a :class:`SharedNetworkStore`.

    Attach once (``SharedNetworkReader(name)``), then call
    :meth:`catch_up` before each task — it replays only the records
    published since the last call and fast-forwards the epoch, so an
    append-heavy stream costs each worker O(new edges), not a network
    rebuild.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._header = shared_memory.SharedMemory(name=name)
        self._data: shared_memory.SharedMemory | None = None
        self._generation = -1
        self._applied = 0
        self._offset = 0
        self.network = TemporalFlowNetwork()
        self.catch_up()

    # ------------------------------------------------------------------
    def _read_header(self) -> tuple[int, int, int, int, str]:
        buf = self._header.buf
        epoch, count, used, generation = _HEADER.unpack_from(buf, 0)
        raw = bytes(buf[_NAME_OFFSET:HEADER_SIZE])
        data_name = raw.split(b"\x00", 1)[0].decode("utf-8")
        return epoch, count, used, generation, data_name

    def _attach_data(self, generation: int, data_name: str) -> None:
        if self._data is not None:
            self._data.close()
        self._data = shared_memory.SharedMemory(name=data_name)
        self._generation = generation

    def catch_up(self) -> int:
        """Replay records published since the last call; returns how many.

        Safe to call redundantly — a no-change poll is two header reads.
        """
        epoch, count, used, generation, data_name = self._read_header()
        if count == self._applied:
            if epoch > self.network.epoch:
                self.network.adopt_epoch(epoch)
            return 0
        if self._data is None or generation != self._generation:
            self._attach_data(generation, data_name)
        buf = self._data.buf
        replayed = 0
        offset = self._offset
        while self._applied < count:
            (length,) = _LEN.unpack_from(buf, offset)
            offset += _LEN.size
            u, v, tau, capacity = pickle.loads(bytes(buf[offset : offset + length]))
            offset += length
            self.network.add_edge(TemporalEdge(u, v, tau, capacity))
            self._applied += 1
            replayed += 1
        self._offset = offset
        if used != offset:  # pragma: no cover - would be a logic bug
            raise ReproError(
                f"shared log {self.name} desynchronised: "
                f"replayed to byte {offset}, owner reports {used}"
            )
        if epoch > self.network.epoch:
            self.network.adopt_epoch(epoch)
        return replayed

    def close(self) -> None:
        """Detach (the owner keeps unlink responsibility)."""
        if self._data is not None:
            self._data.close()
            self._data = None
        self._header.close()

    def __enter__(self) -> "SharedNetworkReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# One-shot pool shipment
# ----------------------------------------------------------------------
# The batch layers (repro.core.batch / repro.core._pool) build short-lived
# pools whose initializers take the network as their first argument.
# pool_initargs() swaps the pickled network for a store name: each worker
# attaches, replays once, and hands the reconstructed network to the
# original initializer.  The reader is pinned in a module global so its
# shared-memory mapping outlives the initializer call.

_POOL_READER: SharedNetworkReader | None = None


def _attach_and_init(store_name: str, initializer, rest: tuple) -> None:
    """Worker-side trampoline for :func:`pool_initargs`."""
    global _POOL_READER
    _POOL_READER = SharedNetworkReader(store_name)
    initializer(_POOL_READER.network, *rest)


def pool_initargs(
    store: SharedNetworkStore, initializer, *rest: object
) -> tuple:
    """``(initializer, initargs)`` shipping ``store``'s network by name.

    Drop-in replacement for ``(initializer, (network, *rest))`` in a
    ``ProcessPoolExecutor``: workers attach to ``store`` instead of
    unpickling the network.  ``initializer`` must be a module-level
    callable (it travels pickled by reference).  The caller keeps
    ``store`` alive for the pool's lifetime and closes it afterwards.
    """
    return _attach_and_init, (store.name, initializer, tuple(rest))
