"""A fluent builder for :class:`~repro.temporal.network.TemporalFlowNetwork`.

The builder exists for two reasons.  First, it provides a compact way to
declare test fixtures and example networks::

    network = (
        TemporalFlowNetworkBuilder()
        .edge("s", "a", tau=1, capacity=3.0)
        .edge("a", "t", tau=2, capacity=3.0)
        .build()
    )

Second, it performs eager validation and can optionally normalise raw event
timestamps (e.g. unix epochs) into the dense 1..n sequence numbers the paper
uses, recording the mapping so results can be translated back to wall-clock
times (as done in the paper's case study, Table 3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import InvalidTimestampError
from repro.temporal.edge import NodeId, TemporalEdge
from repro.temporal.network import TemporalFlowNetwork


class TemporalFlowNetworkBuilder:
    """Accumulates temporal edges, then builds a network in one shot."""

    def __init__(self) -> None:
        self._edges: list[tuple[NodeId, NodeId, float, float]] = []
        self._nodes: set[NodeId] = set()

    def edge(
        self, u: NodeId, v: NodeId, tau: float, capacity: float
    ) -> "TemporalFlowNetworkBuilder":
        """Add one temporal edge; ``tau`` may be any real event time."""
        self._edges.append((u, v, tau, capacity))
        return self

    def edges(
        self, edges: Iterable[tuple[NodeId, NodeId, float, float]]
    ) -> "TemporalFlowNetworkBuilder":
        """Add many ``(u, v, tau, capacity)`` tuples."""
        for u, v, tau, capacity in edges:
            self.edge(u, v, tau, capacity)
        return self

    def node(self, node: NodeId) -> "TemporalFlowNetworkBuilder":
        """Register a node that may end up isolated."""
        self._nodes.add(node)
        return self

    def build(self) -> TemporalFlowNetwork:
        """Build a network using the raw integer timestamps as given.

        Raises:
            InvalidTimestampError: if any timestamp is not an integer.
        """
        network = TemporalFlowNetwork()
        for u, v, tau, capacity in self._edges:
            tau_int = _as_int_timestamp(tau)
            network.add_edge(TemporalEdge(u, v, tau_int, capacity))
        for node in self._nodes:
            network.add_node(node)
        return network

    def build_compacted(self) -> tuple[TemporalFlowNetwork, "TimestampCodec"]:
        """Build with timestamps compacted to sequence numbers 1..n.

        Returns the network together with a :class:`TimestampCodec` that maps
        sequence numbers back to the original event times.
        """
        raw_stamps = sorted({tau for (_, __, tau, ___) in self._edges})
        codec = TimestampCodec(raw_stamps)
        network = TemporalFlowNetwork()
        for u, v, tau, capacity in self._edges:
            network.add_edge(TemporalEdge(u, v, codec.encode(tau), capacity))
        for node in self._nodes:
            network.add_node(node)
        return network, codec


class TimestampCodec:
    """Bidirectional map between raw event times and sequence numbers.

    The paper converts each dataset's timestamps "into sequence numbers in
    sequence T" so that interval lengths count *distinct event times*; this
    codec reproduces that convention (sequence numbers start at 1).
    """

    def __init__(self, raw_timestamps: Sequence[float]) -> None:
        self._raw = list(raw_timestamps)
        if sorted(self._raw) != self._raw:
            raise InvalidTimestampError(raw_timestamps, "timestamps must be sorted")
        self._to_seq = {tau: i + 1 for i, tau in enumerate(self._raw)}
        if len(self._to_seq) != len(self._raw):
            raise InvalidTimestampError(raw_timestamps, "duplicate timestamps")

    def __len__(self) -> int:
        return len(self._raw)

    def encode(self, raw: float) -> int:
        """Raw event time -> 1-based sequence number."""
        try:
            return self._to_seq[raw]
        except KeyError:
            raise InvalidTimestampError(raw, "unknown event time") from None

    def decode(self, seq: int) -> float:
        """1-based sequence number -> raw event time."""
        if not 1 <= seq <= len(self._raw):
            raise InvalidTimestampError(seq, "sequence number out of range")
        return self._raw[seq - 1]

    def decode_interval(self, interval: tuple[int, int]) -> tuple[float, float]:
        """Translate a bursting interval back to raw event times."""
        lo, hi = interval
        return (self.decode(lo), self.decode(hi))


def _as_int_timestamp(tau: float) -> int:
    if isinstance(tau, bool) or not isinstance(tau, (int, float)):
        raise InvalidTimestampError(tau, "timestamp must be a number")
    as_int = int(tau)
    if as_int != tau:
        raise InvalidTimestampError(
            tau, "non-integer timestamp; use build_compacted() to normalise"
        )
    return as_int
