"""The temporal flow network data structure.

:class:`TemporalFlowNetwork` is the central input type of the library.  It
is an immutable (append-only until frozen) in-memory index over a multiset of
temporal edges, mirroring the paper's ``N_T = (V, E_T, T, C_T)``:

* ``V`` — the node set;
* ``E_T`` — directed temporal edges ``(u, v, tau)``;
* ``T`` — the (sorted) set of timestamps appearing on edges;
* ``C_T`` — the capacity map.  Parallel interactions (same ``(u, v, tau)``)
  are merged by summing capacities, which is the standard formatting used by
  the paper's datasets.

Beyond raw storage, the class maintains the per-node timestamp indexes used
throughout the algorithms:

* ``TiStamp_out(u)`` — timestamps of u's out-going edges;
* ``TiStamp_in(u)`` — timestamps of u's in-coming edges;
* ``Ti(u)``          — timestamps of u's edges that may be part of s-t flows
  (for a source this is ``TiStamp_out``, for a sink ``TiStamp_in``, and the
  union for everything else) — Table 1 of the paper.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import InvalidTimestampError, ReproError, UnknownNodeError
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp, validate_capacity


class TemporalFlowNetwork:
    """An in-memory temporal flow network with per-node timestamp indexes.

    Instances are built either through :class:`repro.temporal.builder.
    TemporalFlowNetworkBuilder` (preferred), from an iterable of
    :class:`TemporalEdge`, or from raw ``(u, v, tau, capacity)`` tuples via
    :meth:`from_tuples`.
    """

    def __init__(self, edges: Iterable[TemporalEdge] = ()) -> None:
        # Merged capacities keyed by (u, v, tau).
        self._capacity: dict[tuple[NodeId, NodeId, Timestamp], float] = {}
        # Sorted unique timestamps with out-going / in-coming edges, per node.
        self._out_stamps: dict[NodeId, list[Timestamp]] = defaultdict(list)
        self._in_stamps: dict[NodeId, list[Timestamp]] = defaultdict(list)
        # Edges grouped by timestamp for windowed traversal:
        #   tau -> list of (u, v) pairs with an edge at tau.
        self._edges_at: dict[Timestamp, list[tuple[NodeId, NodeId]]] = defaultdict(list)
        # Out-adjacency grouped per node: u -> tau -> list of v.
        self._out_adj: dict[NodeId, dict[Timestamp, list[NodeId]]] = defaultdict(dict)
        self._nodes: set[NodeId] = set()
        self._timestamps: list[Timestamp] = []
        # Per-node in-capacity prefix sums aligned with _in_stamps[v]:
        #   _in_prefix[v][i] = total capacity into v at _in_stamps[v][:i].
        self._in_prefix: dict[NodeId, list[float]] = {}
        self._stamps_dirty = False
        # Monotone mutation counter.  Bumped at exactly the points that set
        # _stamps_dirty (the hooks the residual arena's dirty journal also
        # rides on), so observers — the service result cache above all —
        # can fingerprint a network state as (id, epoch) and invalidate on
        # append without scanning edges.
        self._epoch = 0
        for edge in edges:
            self.add_edge(edge)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls, tuples: Iterable[tuple[NodeId, NodeId, Timestamp, float]]
    ) -> "TemporalFlowNetwork":
        """Build a network from raw ``(u, v, tau, capacity)`` tuples."""
        network = cls()
        for u, v, tau, capacity in tuples:
            network.add_edge(TemporalEdge(u, v, tau, capacity))
        return network

    def add_edge(self, edge: TemporalEdge) -> None:
        """Insert one temporal edge, merging capacity with any duplicate."""
        key = edge.key()
        if key in self._capacity:
            self._capacity[key] += edge.capacity
            # Structure is unchanged but the in-capacity prefix sums are
            # now stale; _refresh_indexes rebuilds them.
            self._stamps_dirty = True
        else:
            self._capacity[key] = edge.capacity
            self._edges_at[edge.tau].append((edge.u, edge.v))
            self._out_adj[edge.u].setdefault(edge.tau, []).append(edge.v)
            self._out_stamps[edge.u].append(edge.tau)
            self._in_stamps[edge.v].append(edge.tau)
            self._stamps_dirty = True
        self._epoch += 1
        self._nodes.add(edge.u)
        self._nodes.add(edge.v)

    def add_node(self, node: NodeId) -> None:
        """Register an isolated node (rarely needed; edges register nodes)."""
        if node not in self._nodes:
            self._epoch += 1
        self._nodes.add(node)

    @property
    def epoch(self) -> int:
        """Monotone mutation counter (0 for an empty, untouched network).

        Every :meth:`add_edge` (including capacity merges) and every new
        :meth:`add_node` bumps it, so two reads of ``epoch`` bracketing any
        sequence of operations detect whether the network changed in
        between.  Cached delta-BFlow answers keyed by
        ``(epoch, s, t, delta, algorithm)`` therefore can never be served
        stale: a streaming append moves the epoch and all earlier entries
        miss.
        """
        return self._epoch

    def adopt_epoch(self, epoch: int) -> None:
        """Fast-forward the mutation counter to ``epoch`` (snapshot restore).

        A network rebuilt from a snapshot's *merged* edges performs fewer
        :meth:`add_edge` calls than the append history the snapshot
        summarizes (capacity merges collapse), so its raw counter would
        undercount.  Adopting the snapshot's recorded epoch keeps the
        cluster invariant — "the epoch is a pure function of the applied
        history" — across restore + log-suffix replay.

        Raises:
            ReproError: when ``epoch`` would move the counter backwards
                (that would let a cached answer outlive a mutation).
        """
        if epoch < self._epoch:
            raise ReproError(
                f"cannot move the epoch backwards ({self._epoch} -> {epoch})"
            )
        self._epoch = int(epoch)

    def _refresh_indexes(self) -> None:
        if not self._stamps_dirty:
            return
        for stamps in self._out_stamps.values():
            stamps.sort()
            _dedupe_sorted(stamps)
        for stamps in self._in_stamps.values():
            stamps.sort()
            _dedupe_sorted(stamps)
        self._timestamps = sorted(self._edges_at)
        self._rebuild_in_prefix()
        self._stamps_dirty = False

    def _rebuild_in_prefix(self) -> None:
        """Recompute the per-node in-capacity prefix sums.

        One pass over the capacity map groups in-capacity per (node, tau);
        the prefix arrays then let :meth:`sink_capacity_in_window` answer
        any window with two bisects instead of scanning every edge at every
        in-stamp (the BFQ+/BFQ* inner-loop hot path).
        """
        per_node: dict[NodeId, dict[Timestamp, float]] = defaultdict(dict)
        for (_, v, tau), capacity in self._capacity.items():
            stamps = per_node[v]
            stamps[tau] = stamps.get(tau, 0.0) + capacity
        prefix: dict[NodeId, list[float]] = {}
        for v, per_tau in per_node.items():
            sums = [0.0]
            for tau in self._in_stamps[v]:
                sums.append(sums[-1] + per_tau[tau])
            prefix[v] = sums
        self._in_prefix = prefix

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[NodeId]:
        """The node set ``V``."""
        return frozenset(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of distinct temporal edges ``|E_T|`` (after merging)."""
        return len(self._capacity)

    @property
    def timestamps(self) -> Sequence[Timestamp]:
        """Sorted distinct timestamps ``T`` carrying at least one edge."""
        self._refresh_indexes()
        return self._timestamps

    @property
    def num_timestamps(self) -> int:
        """``|T|`` — the number of distinct timestamps."""
        return len(self.timestamps)

    @property
    def t_min(self) -> Timestamp:
        """Smallest timestamp in ``T``."""
        stamps = self.timestamps
        if not stamps:
            raise InvalidTimestampError(None, "network has no edges")
        return stamps[0]

    @property
    def t_max(self) -> Timestamp:
        """Largest timestamp in ``T``."""
        stamps = self.timestamps
        if not stamps:
            raise InvalidTimestampError(None, "network has no edges")
        return stamps[-1]

    def has_node(self, node: NodeId) -> bool:
        """Whether the node exists in the network."""
        return node in self._nodes

    def capacity(self, u: NodeId, v: NodeId, tau: Timestamp) -> float:
        """``C_T(u, v, tau)`` — the merged capacity, or 0 if absent."""
        return self._capacity.get((u, v, tau), 0.0)

    def edges(self) -> Iterator[TemporalEdge]:
        """Iterate all distinct temporal edges (merged capacities)."""
        for (u, v, tau), capacity in self._capacity.items():
            yield TemporalEdge(u, v, tau, capacity)

    def edges_in_window(
        self, tau_lo: Timestamp, tau_hi: Timestamp
    ) -> Iterator[TemporalEdge]:
        """Iterate edges with timestamps in the inclusive window.

        Iteration is ordered by timestamp, which the network transformation
        relies on for deterministic construction.
        """
        self._refresh_indexes()
        lo = bisect.bisect_left(self._timestamps, tau_lo)
        hi = bisect.bisect_right(self._timestamps, tau_hi)
        for tau in self._timestamps[lo:hi]:
            for u, v in self._edges_at[tau]:
                yield TemporalEdge(u, v, tau, self._capacity[(u, v, tau)])

    def out_neighbours(self, u: NodeId, tau: Timestamp) -> Sequence[NodeId]:
        """Nodes ``v`` with an edge ``(u, v, tau)``."""
        return self._out_adj.get(u, {}).get(tau, [])

    def out_timestamps_of(self, u: NodeId) -> Mapping[Timestamp, list[NodeId]]:
        """Out-adjacency of ``u`` grouped by timestamp."""
        return self._out_adj.get(u, {})

    # ------------------------------------------------------------------
    # Timestamp indexes (Table 1 notation)
    # ------------------------------------------------------------------
    def tistamp_out(self, u: NodeId) -> Sequence[Timestamp]:
        """``TiStamp_out(u)`` — sorted timestamps of u's out-going edges."""
        self._require_node(u)
        self._refresh_indexes()
        return self._out_stamps.get(u, [])

    def tistamp_in(self, u: NodeId) -> Sequence[Timestamp]:
        """``TiStamp_in(u)`` — sorted timestamps of u's in-coming edges."""
        self._require_node(u)
        self._refresh_indexes()
        return self._in_stamps.get(u, [])

    def ti(self, u: NodeId, source: NodeId, sink: NodeId) -> Sequence[Timestamp]:
        """``Ti(u)`` w.r.t. a query's source and sink (Table 1).

        ``Ti(s) = TiStamp_out(s)``, ``Ti(t) = TiStamp_in(t)`` and the sorted
        union of both otherwise.
        """
        if u == source:
            return self.tistamp_out(u)
        if u == sink:
            return self.tistamp_in(u)
        self._require_node(u)
        self._refresh_indexes()
        return _merge_sorted(self._out_stamps.get(u, []), self._in_stamps.get(u, []))

    def ti_in_window(
        self,
        u: NodeId,
        source: NodeId,
        sink: NodeId,
        tau_s: Timestamp,
        tau_e: Timestamp,
    ) -> list[Timestamp]:
        """``Ti_[tau_s, tau_e](u)`` — Ti(u) ∪ {tau_s, tau_e} clipped to the window.

        Per the timestamp-inline operator (Section 4.1, step 2), the window
        boundaries are always included for the source and the sink so that
        the transformed network has a well-defined super-source
        ``<s, tau_s>`` and super-sink ``<t, tau_e>``.
        """
        stamps = self.ti(u, source, sink)
        lo = bisect.bisect_left(stamps, tau_s)
        hi = bisect.bisect_right(stamps, tau_e)
        clipped = list(stamps[lo:hi])
        if u == source and (not clipped or clipped[0] != tau_s):
            clipped.insert(0, tau_s)
        if u == sink and (not clipped or clipped[-1] != tau_e):
            clipped.append(tau_e)
        return clipped

    # ------------------------------------------------------------------
    # Degree statistics
    # ------------------------------------------------------------------
    def degree(self, u: NodeId) -> int:
        """Total number of distinct temporal edges incident to ``u``."""
        self._require_node(u)
        out_deg = sum(len(vs) for vs in self._out_adj.get(u, {}).values())
        return out_deg + self._in_degree_cache().get(u, 0)

    def _in_degree_cache(self) -> dict[NodeId, int]:
        if self._stamps_dirty:
            self._refresh_indexes()
            self._in_deg = None
        cache = getattr(self, "_in_deg", None)
        if cache is None:
            counts: dict[NodeId, int] = defaultdict(int)
            for (_, v, __) in self._capacity:
                counts[v] += 1
            self._in_deg = dict(counts)
            cache = self._in_deg
        return cache

    def max_degree(self) -> int:
        """``d_max`` — the maximum total degree over all nodes."""
        if not self._nodes:
            return 0
        in_deg = self._in_degree_cache()
        best = 0
        for node in self._nodes:
            out_deg = sum(len(vs) for vs in self._out_adj.get(node, {}).values())
            best = max(best, out_deg + in_deg.get(node, 0))
        return best

    def query_degree(self, source: NodeId, sink: NodeId) -> int:
        """``d = max(|Ti(s)|, |Ti(t)|)`` — the candidate-interval driver."""
        return max(len(self.ti(source, source, sink)), len(self.ti(sink, source, sink)))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _require_node(self, node: NodeId) -> None:
        if node not in self._nodes:
            raise UnknownNodeError(node)

    def total_capacity(self) -> float:
        """Sum of all edge capacities (used for sanity bounds in tests)."""
        return sum(self._capacity.values())

    def sink_capacity_in_window(
        self, sink: NodeId, tau_lo: Timestamp, tau_hi: Timestamp
    ) -> float:
        """Total capacity entering ``sink`` during ``[tau_lo, tau_hi]``.

        This is the quantity used by the Observation-2 pruning rule:
        ``sum_{tau in [tau_lo, tau_hi]} sum_u C_T(u, t, tau)``.

        Answered from the per-node in-capacity prefix sums maintained by
        :meth:`_refresh_indexes` — two bisects instead of a scan over every
        edge at every in-stamp.
        """
        self._require_node(sink)
        self._refresh_indexes()
        stamps = self._in_stamps.get(sink, [])
        sums = self._in_prefix.get(sink)
        if not stamps or sums is None:
            return 0.0
        lo = bisect.bisect_left(stamps, tau_lo)
        hi = bisect.bisect_right(stamps, tau_hi)
        return sums[hi] - sums[lo]

    def _sink_capacity_in_window_scan(
        self, sink: NodeId, tau_lo: Timestamp, tau_hi: Timestamp
    ) -> float:
        """Reference O(edges-at-tau) implementation, kept for equality tests."""
        self._require_node(sink)
        self._refresh_indexes()
        stamps = self._in_stamps.get(sink, [])
        lo = bisect.bisect_left(stamps, tau_lo)
        hi = bisect.bisect_right(stamps, tau_hi)
        total = 0.0
        for tau in stamps[lo:hi]:
            for u, v in self._edges_at[tau]:
                if v == sink:
                    total += self._capacity[(u, v, tau)]
        return total

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalFlowNetwork(|V|={self.num_nodes}, |E_T|={self.num_edges}, "
            f"|T|={self.num_timestamps})"
        )


def _dedupe_sorted(values: list[Timestamp]) -> None:
    """Remove duplicates from a sorted list in place."""
    write = 0
    for read in range(len(values)):
        if write == 0 or values[read] != values[write - 1]:
            values[write] = values[read]
            write += 1
    del values[write:]


def _merge_sorted(a: Sequence[Timestamp], b: Sequence[Timestamp]) -> list[Timestamp]:
    """Merge two sorted sequences into a sorted, de-duplicated list."""
    merged: list[Timestamp] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] < b[j]:
            value = a[i]
            i += 1
        elif b[j] < a[i]:
            value = b[j]
            j += 1
        else:
            value = a[i]
            i += 1
            j += 1
        if not merged or merged[-1] != value:
            merged.append(value)
    for value in a[i:]:
        if not merged or merged[-1] != value:
            merged.append(value)
    for value in b[j:]:
        if not merged or merged[-1] != value:
            merged.append(value)
    return merged
