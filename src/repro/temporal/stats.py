"""Dataset statistics (Table 2 of the paper).

The paper characterises each dataset with ``|V|``, ``|E_T|``, ``|T|``, the
average degree and the degree standard deviation.  :func:`network_stats`
computes exactly those columns, and :func:`format_stats_table` renders a
Table-2-style report used by the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class NetworkStats:
    """The Table-2 statistics of one temporal flow network."""

    num_nodes: int
    num_edges: int
    num_timestamps: int
    avg_degree: float
    stddev_degree: float
    max_degree: int
    total_capacity: float

    def as_row(self) -> tuple[int, int, int, float, float]:
        """The five Table-2 columns, in paper order."""
        return (
            self.num_nodes,
            self.num_edges,
            self.num_timestamps,
            self.avg_degree,
            self.stddev_degree,
        )


def network_stats(network: TemporalFlowNetwork) -> NetworkStats:
    """Compute the Table-2 statistics for ``network``.

    Degree here counts distinct temporal edges incident to a node (in + out),
    matching the dataset summaries in the paper where average degree equals
    ``2 * |E_T| / |V|``.
    """
    degrees = [network.degree(node) for node in network.nodes]
    if degrees:
        avg = sum(degrees) / len(degrees)
        variance = sum((d - avg) ** 2 for d in degrees) / len(degrees)
        stddev = math.sqrt(variance)
        max_degree = max(degrees)
    else:
        avg = stddev = 0.0
        max_degree = 0
    return NetworkStats(
        num_nodes=network.num_nodes,
        num_edges=network.num_edges,
        num_timestamps=network.num_timestamps,
        avg_degree=avg,
        stddev_degree=stddev,
        max_degree=max_degree,
        total_capacity=network.total_capacity(),
    )


def format_stats_table(stats_by_name: Mapping[str, NetworkStats]) -> str:
    """Render a Table-2-style text table for a set of named datasets."""
    header = ("Dataset", "|V|", "|E_T|", "|T|", "Avg. degree", "Stddev. degree")
    rows: list[Sequence[str]] = [header]
    for name, stats in stats_by_name.items():
        rows.append(
            (
                name,
                _fmt_count(stats.num_nodes),
                _fmt_count(stats.num_edges),
                _fmt_count(stats.num_timestamps),
                f"{stats.avg_degree:.1f}",
                f"{stats.stddev_degree:.1f}",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt_count(value: int) -> str:
    """Format counts the way Table 2 does (21K, 3.3M, 1,259...)."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M".replace(".00M", "M")
    if value >= 10_000:
        return f"{value / 1_000:.1f}K".replace(".0K", "K")
    return f"{value:,}"
