"""Sub-network and transformation utilities for temporal flow networks.

Small, composable operations used across the library (the bursting-core
baseline restricts to node-induced windows, the labeled extension projects
edge subsets, examples slice time ranges) and useful to downstream users
assembling analysis pipelines.

All functions return *new* networks; inputs are never mutated.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import UnknownNodeError
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork


def window_subnetwork(
    network: TemporalFlowNetwork,
    tau_lo: Timestamp,
    tau_hi: Timestamp,
    *,
    keep_nodes: bool = False,
) -> TemporalFlowNetwork:
    """Edges with timestamps in the inclusive window ``[tau_lo, tau_hi]``.

    Args:
        keep_nodes: also register every node of the original network (even
            those left isolated), so queries against fixed endpoints fail
            soft instead of raising.
    """
    result = TemporalFlowNetwork()
    for edge in network.edges_in_window(tau_lo, tau_hi):
        result.add_edge(edge)
    if keep_nodes:
        for node in network.nodes:
            result.add_node(node)
    return result


def node_induced_subnetwork(
    network: TemporalFlowNetwork,
    nodes: Iterable[NodeId],
    *,
    keep_nodes: bool = True,
) -> TemporalFlowNetwork:
    """Edges whose *both* endpoints belong to ``nodes``."""
    member = set(nodes)
    result = TemporalFlowNetwork()
    for edge in network.edges():
        if edge.u in member and edge.v in member:
            result.add_edge(edge)
    if keep_nodes:
        for node in member:
            if network.has_node(node):
                result.add_node(node)
    return result


def filter_edges(
    network: TemporalFlowNetwork,
    predicate: Callable[[TemporalEdge], bool],
) -> TemporalFlowNetwork:
    """The sub-network of edges satisfying ``predicate`` (nodes preserved)."""
    result = TemporalFlowNetwork()
    for edge in network.edges():
        if predicate(edge):
            result.add_edge(edge)
    for node in network.nodes:
        result.add_node(node)
    return result


def relabel_nodes(
    network: TemporalFlowNetwork,
    mapping: Callable[[NodeId], NodeId] | dict,
) -> TemporalFlowNetwork:
    """A copy with every node passed through ``mapping``.

    Dict mappings may be partial (unmapped nodes keep their labels).

    Raises:
        UnknownNodeError: if the mapping merges two distinct nodes into
            one (that would silently change flow semantics).
    """
    if isinstance(mapping, dict):
        translate = lambda node: mapping.get(node, node)  # noqa: E731
    else:
        translate = mapping
    images: dict[NodeId, NodeId] = {}
    for node in network.nodes:
        image = translate(node)
        images[node] = image
    if len(set(images.values())) != len(images):
        raise UnknownNodeError("relabel mapping merges distinct nodes")
    result = TemporalFlowNetwork()
    for edge in network.edges():
        result.add_edge(
            TemporalEdge(images[edge.u], images[edge.v], edge.tau, edge.capacity)
        )
    for node in network.nodes:
        result.add_node(images[node])
    return result


def merge_networks(
    a: TemporalFlowNetwork, b: TemporalFlowNetwork
) -> TemporalFlowNetwork:
    """The union of two networks (shared ``(u, v, tau)`` capacities sum)."""
    result = TemporalFlowNetwork()
    for network in (a, b):
        for edge in network.edges():
            result.add_edge(edge)
        for node in network.nodes:
            result.add_node(node)
    return result


def shift_timestamps(
    network: TemporalFlowNetwork, offset: int
) -> TemporalFlowNetwork:
    """A copy with every timestamp moved by ``offset`` ticks."""
    result = TemporalFlowNetwork()
    for edge in network.edges():
        result.add_edge(
            TemporalEdge(edge.u, edge.v, edge.tau + offset, edge.capacity)
        )
    for node in network.nodes:
        result.add_node(node)
    return result
