"""Temporal edge primitives.

A temporal flow network is a multiset of :class:`TemporalEdge` values.  Each
edge is a directed interaction ``(u, v, tau)`` carrying a positive capacity,
e.g. a money transfer of a given amount at a given time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from repro.exceptions import InvalidCapacityError, InvalidEdgeError

NodeId = Hashable
Timestamp = int


@dataclass(frozen=True, slots=True)
class TemporalEdge:
    """A directed temporal edge ``u -> v`` at timestamp ``tau``.

    Attributes:
        u: tail (origin) node.
        v: head (destination) node.
        tau: integer timestamp of the interaction.  The paper normalises
            timestamps to consecutive sequence numbers; the loaders in
            :mod:`repro.temporal.io` perform that compaction, so ``tau`` is
            expected (but not required) to be small and dense.
        capacity: positive, finite amount that can flow along this edge
            (e.g. the transaction amount).
    """

    u: NodeId
    v: NodeId
    tau: Timestamp
    capacity: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise InvalidEdgeError(f"self loop not allowed: {self.u!r} at tau={self.tau}")
        if not isinstance(self.tau, int):
            raise InvalidEdgeError(f"timestamp must be an int, got {self.tau!r}")
        validate_capacity(self.capacity)

    def reversed(self) -> "TemporalEdge":
        """Return the edge with tail and head swapped (same time/capacity)."""
        return TemporalEdge(self.v, self.u, self.tau, self.capacity)

    def key(self) -> tuple[NodeId, NodeId, Timestamp]:
        """The ``(u, v, tau)`` triple identifying this interaction."""
        return (self.u, self.v, self.tau)


def validate_capacity(capacity: float) -> float:
    """Validate that ``capacity`` is a positive finite number.

    Returns the capacity unchanged, for use in fluent call sites.

    Raises:
        InvalidCapacityError: if the capacity is non-positive, NaN or inf.
    """
    if not isinstance(capacity, (int, float)) or isinstance(capacity, bool):
        raise InvalidCapacityError(capacity)
    if math.isnan(capacity) or math.isinf(capacity) or capacity <= 0:
        raise InvalidCapacityError(capacity)
    return capacity
