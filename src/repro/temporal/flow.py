"""Temporal flows and their validation.

A temporal flow ``F`` assigns a value to each temporal edge.  This module
provides the :class:`TemporalFlow` container plus validators for the three
defining constraints of Section 3.2:

* capacity constraint: ``0 <= F(u, v, tau) <= C_T(u, v, tau)``;
* flow conservation (Eq. 3): over the whole window, inflow equals outflow at
  every node except the source and the sink;
* time constraint (Eq. 4): at every prefix ``[tau_s, tau']`` of the window,
  cumulative inflow dominates cumulative outflow at intermediate nodes
  (a node cannot forward value it has not yet received).

The validators are used by the test-suite to check that flows reconstructed
from transformed-network Maxflows (Lemma 1) are genuine temporal flows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import FlowValidationError
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: Numerical slack for float comparisons in validators.
EPSILON = 1e-7


@dataclass
class TemporalFlow:
    """A temporal flow from ``source`` (at ``tau_s``) to ``sink`` (at ``tau_e``).

    ``values`` maps ``(u, v, tau)`` to the flow assigned to that temporal
    edge; absent keys mean zero flow.
    """

    source: NodeId
    sink: NodeId
    tau_s: Timestamp
    tau_e: Timestamp
    values: dict[tuple[NodeId, NodeId, Timestamp], float] = field(default_factory=dict)

    @property
    def interval(self) -> tuple[Timestamp, Timestamp]:
        """The flow's window [tau_s, tau_e]."""
        return (self.tau_s, self.tau_e)

    @property
    def interval_length(self) -> int:
        """Window length tau_e - tau_s."""
        return self.tau_e - self.tau_s

    def value_of(self, u: NodeId, v: NodeId, tau: Timestamp) -> float:
        """``F(u, v, tau)`` (zero when unset)."""
        return self.values.get((u, v, tau), 0.0)

    def set_value(self, u: NodeId, v: NodeId, tau: Timestamp, value: float) -> None:
        """Assign flow to one temporal edge (zero removes the entry)."""
        if value < -EPSILON:
            raise FlowValidationError(f"negative flow on ({u!r},{v!r},{tau}): {value}")
        if value <= EPSILON:
            self.values.pop((u, v, tau), None)
        else:
            self.values[(u, v, tau)] = value

    def nonzero_edges(self) -> Iterator[tuple[NodeId, NodeId, Timestamp, float]]:
        """Iterate (u, v, tau, value) for every positive assignment."""
        for (u, v, tau), value in self.values.items():
            if value > EPSILON:
                yield (u, v, tau, value)

    def flow_value(self) -> float:
        """``|F|`` — total flow leaving the source during the window (Eq. 5)."""
        total = 0.0
        for (u, _v, tau), value in self.values.items():
            if u == self.source and self.tau_s <= tau <= self.tau_e:
                total += value
        return total

    def density(self) -> float:
        """Flow density ``|F| / (tau_e - tau_s)`` (Eq. 6)."""
        length = self.interval_length
        if length <= 0:
            raise FlowValidationError(
                f"degenerate interval [{self.tau_s}, {self.tau_e}] has no density"
            )
        return self.flow_value() / length


def validate_temporal_flow(
    network: TemporalFlowNetwork, flow: TemporalFlow, *, strict: bool = True
) -> None:
    """Check all three temporal-flow constraints, raising on violation.

    Args:
        network: the temporal flow network the flow lives in.
        flow: the flow to validate.
        strict: when true, also verify that the flow value measured at the
            source equals the value measured at the sink (Eq. 5).

    Raises:
        FlowValidationError: describing the first violated constraint.
    """
    _check_capacity(network, flow)
    _check_window(flow)
    balances = _node_time_balances(flow)
    _check_time_constraint(flow, balances)
    _check_conservation(flow, balances)
    if strict:
        _check_value_agreement(flow, balances)


def _check_capacity(network: TemporalFlowNetwork, flow: TemporalFlow) -> None:
    for (u, v, tau), value in flow.values.items():
        if value < -EPSILON:
            raise FlowValidationError(
                f"negative flow {value} on ({u!r}, {v!r}, {tau})"
            )
        capacity = network.capacity(u, v, tau)
        if value > capacity + EPSILON:
            raise FlowValidationError(
                f"flow {value} exceeds capacity {capacity} on ({u!r}, {v!r}, {tau})"
            )


def _check_window(flow: TemporalFlow) -> None:
    if flow.tau_e <= flow.tau_s:
        raise FlowValidationError(
            f"window [{flow.tau_s}, {flow.tau_e}] must satisfy tau_e > tau_s"
        )
    for (u, v, tau), value in flow.values.items():
        if value > EPSILON and not flow.tau_s <= tau <= flow.tau_e:
            raise FlowValidationError(
                f"flow on ({u!r}, {v!r}, {tau}) lies outside "
                f"[{flow.tau_s}, {flow.tau_e}]"
            )


def _node_time_balances(
    flow: TemporalFlow,
) -> Mapping[NodeId, list[tuple[Timestamp, float]]]:
    """Per-node list of (tau, inflow - outflow at tau), sorted by tau."""
    balances: dict[NodeId, dict[Timestamp, float]] = defaultdict(
        lambda: defaultdict(float)
    )
    for (u, v, tau), value in flow.values.items():
        if value <= EPSILON:
            continue
        balances[u][tau] -= value
        balances[v][tau] += value
    return {
        node: sorted(per_tau.items()) for node, per_tau in balances.items()
    }


def _check_time_constraint(
    flow: TemporalFlow, balances: Mapping[NodeId, list[tuple[Timestamp, float]]]
) -> None:
    for node, series in balances.items():
        if node in (flow.source, flow.sink):
            continue
        running = 0.0
        for tau, delta in series:
            running += delta
            if running < -EPSILON * max(1.0, abs(running)) - EPSILON:
                raise FlowValidationError(
                    f"time constraint violated at node {node!r}: cumulative "
                    f"outflow exceeds inflow by {-running} at tau={tau}"
                )


def _check_conservation(
    flow: TemporalFlow, balances: Mapping[NodeId, list[tuple[Timestamp, float]]]
) -> None:
    for node, series in balances.items():
        if node in (flow.source, flow.sink):
            continue
        net = sum(delta for _, delta in series)
        if abs(net) > EPSILON * max(1.0, sum(abs(d) for _, d in series)):
            raise FlowValidationError(
                f"flow conservation violated at node {node!r}: net balance {net}"
            )


def _check_value_agreement(
    flow: TemporalFlow, balances: Mapping[NodeId, list[tuple[Timestamp, float]]]
) -> None:
    out_of_source = -sum(d for _, d in balances.get(flow.source, []))
    into_sink = sum(d for _, d in balances.get(flow.sink, []))
    scale = max(1.0, abs(out_of_source), abs(into_sink))
    if abs(out_of_source - into_sink) > EPSILON * scale:
        raise FlowValidationError(
            f"flow value mismatch: source emits {out_of_source}, "
            f"sink absorbs {into_sink}"
        )
