"""Loading and saving temporal flow networks.

The paper formats its datasets (Bitcoin transactions, CTU-13 botnet traffic,
Prosper loans, BAYC NFT trades) as temporal flow networks exported once from
a store such as Neo4j.  This module plays the role of that one-off export
layer: plain-text edge lists in CSV/TSV and JSON-lines form, with optional
timestamp compaction into the dense sequence numbers the algorithms expect.

File formats
------------
CSV / TSV (one edge per line, header optional)::

    u,v,tau,capacity
    alice,bob,17,250.0

JSON lines (one object per line)::

    {"u": "alice", "v": "bob", "tau": 17, "capacity": 250.0}
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.exceptions import DatasetError
from repro.temporal.builder import TemporalFlowNetworkBuilder, TimestampCodec
from repro.temporal.edge import TemporalEdge
from repro.temporal.network import TemporalFlowNetwork

_CSV_FIELDS = ("u", "v", "tau", "capacity")


def load_edge_list(
    path: str | Path,
    *,
    delimiter: str | None = None,
    compact_timestamps: bool = False,
) -> TemporalFlowNetwork | tuple[TemporalFlowNetwork, TimestampCodec]:
    """Load a temporal flow network from a CSV/TSV edge list.

    Args:
        path: file to read.  ``.tsv`` files default to tab delimiters,
            anything else to commas, unless ``delimiter`` is given.
        delimiter: explicit field delimiter.
        compact_timestamps: when true, timestamps are re-encoded into dense
            1..n sequence numbers and the codec is returned alongside the
            network.

    Raises:
        DatasetError: on malformed rows.
    """
    path = Path(path)
    if delimiter is None:
        delimiter = "\t" if path.suffix.lower() == ".tsv" else ","
    with path.open(newline="") as handle:
        rows = _parse_csv_rows(handle, delimiter, str(path))
        return _build(rows, compact_timestamps)


def load_jsonl(
    path: str | Path, *, compact_timestamps: bool = False
) -> TemporalFlowNetwork | tuple[TemporalFlowNetwork, TimestampCodec]:
    """Load a temporal flow network from a JSON-lines edge list."""
    path = Path(path)
    with path.open() as handle:
        rows = _parse_jsonl_rows(handle, str(path))
        return _build(rows, compact_timestamps)


def save_edge_list(
    network: TemporalFlowNetwork, path: str | Path, *, delimiter: str | None = None
) -> None:
    """Write a network as a CSV/TSV edge list (with header)."""
    path = Path(path)
    if delimiter is None:
        delimiter = "\t" if path.suffix.lower() == ".tsv" else ","
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(_CSV_FIELDS)
        for edge in sorted(network.edges(), key=_edge_sort_key):
            writer.writerow([edge.u, edge.v, edge.tau, repr(edge.capacity)])


def save_jsonl(network: TemporalFlowNetwork, path: str | Path) -> None:
    """Write a network as a JSON-lines edge list."""
    path = Path(path)
    with path.open("w") as handle:
        for edge in sorted(network.edges(), key=_edge_sort_key):
            record = {
                "u": edge.u,
                "v": edge.v,
                "tau": edge.tau,
                "capacity": edge.capacity,
            }
            handle.write(json.dumps(record))
            handle.write("\n")


def _edge_sort_key(edge: TemporalEdge) -> tuple:
    return (edge.tau, str(edge.u), str(edge.v))


def _parse_csv_rows(
    handle: TextIO, delimiter: str, origin: str
) -> Iterator[tuple[str, str, float, float]]:
    reader = csv.reader(handle, delimiter=delimiter)
    for line_no, row in enumerate(reader, start=1):
        if not row or (len(row) == 1 and not row[0].strip()):
            continue
        if line_no == 1 and _looks_like_header(row):
            continue
        if len(row) < 4:
            raise DatasetError(
                f"{origin}:{line_no}: expected 4 fields (u, v, tau, capacity), "
                f"got {len(row)}"
            )
        u, v, tau_text, cap_text = (field.strip() for field in row[:4])
        yield (u, v, _parse_number(tau_text, origin, line_no, "tau"),
               _parse_number(cap_text, origin, line_no, "capacity"))


def _parse_jsonl_rows(
    handle: TextIO, origin: str
) -> Iterator[tuple[str, str, float, float]]:
    for line_no, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{origin}:{line_no}: invalid JSON: {exc}") from exc
        try:
            yield (record["u"], record["v"], record["tau"], record["capacity"])
        except (KeyError, TypeError) as exc:
            raise DatasetError(
                f"{origin}:{line_no}: record must have u, v, tau, capacity"
            ) from exc


def _build(
    rows: Iterable[tuple[str, str, float, float]], compact_timestamps: bool
) -> TemporalFlowNetwork | tuple[TemporalFlowNetwork, TimestampCodec]:
    builder = TemporalFlowNetworkBuilder()
    for u, v, tau, capacity in rows:
        builder.edge(u, v, tau, capacity)
    if compact_timestamps:
        return builder.build_compacted()
    return builder.build()


def _looks_like_header(row: list[str]) -> bool:
    lowered = [field.strip().lower() for field in row[:4]]
    return lowered[:2] == ["u", "v"] or "tau" in lowered or "capacity" in lowered


def _parse_number(text: str, origin: str, line_no: int, field: str) -> float:
    try:
        return float(text)
    except ValueError as exc:
        raise DatasetError(
            f"{origin}:{line_no}: field {field!r} is not a number: {text!r}"
        ) from exc
