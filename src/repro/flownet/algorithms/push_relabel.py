"""Push-relabel (Goldberg-Tarjan) with FIFO selection and the gap heuristic.

Unlike the augmenting-path solvers this one is *self-contained*: it copies
the network's residual capacities into private arrays, replaces infinite
capacities with a finite surrogate (any value exceeding the total finite
capacity bounds the Maxflow, because every source-sink path crosses a
finite edge), runs to optimality, and reports the value without mutating
the input network.  It is therefore usable for cross-checking and for the
Table-4 solver comparison, but not for incremental resumption.
"""

from __future__ import annotations

import math
from collections import deque

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork


def push_relabel(network: FlowNetwork, source: int, sink: int) -> MaxflowRun:
    """Compute the Maxflow value with FIFO push-relabel + gap heuristic."""
    if source == sink:
        return MaxflowRun(value=0.0)
    heads, caps, rev, first_arc = _extract(network)
    n = network.num_nodes
    retired = network._retired  # noqa: SLF001

    height = [0] * n
    excess = [0.0] * n
    count_at_height = [0] * (2 * n + 1)
    count_at_height[0] = n
    height[source] = n
    count_at_height[0] -= 1
    count_at_height[n] += 1

    active: deque[int] = deque()
    in_queue = [False] * n

    def push(tail: int, arc_index: int) -> None:
        """Push min(excess, residual) along one admissible arc."""
        head = heads[arc_index]
        amount = min(excess[tail], caps[arc_index])
        caps[arc_index] -= amount
        caps[rev[arc_index]] += amount
        excess[tail] -= amount
        excess[head] += amount
        if head not in (source, sink) and not in_queue[head] and excess[head] > FLOW_EPSILON:
            active.append(head)
            in_queue[head] = True

    # Saturate all source out-arcs.
    for arc_index in range(first_arc[source], first_arc[source + 1]):
        head = heads[arc_index]
        if retired[head]:
            continue
        amount = caps[arc_index]
        if amount <= FLOW_EPSILON:
            continue
        caps[arc_index] = 0.0
        caps[rev[arc_index]] += amount
        excess[head] += amount
        if head not in (source, sink) and not in_queue[head]:
            active.append(head)
            in_queue[head] = True

    relabels = 0
    while active:
        node = active.popleft()
        in_queue[node] = False
        if retired[node]:
            continue
        while excess[node] > FLOW_EPSILON:
            pushed_any = False
            for arc_index in range(first_arc[node], first_arc[node + 1]):
                if caps[arc_index] <= FLOW_EPSILON:
                    continue
                head = heads[arc_index]
                if retired[head] or height[node] != height[head] + 1:
                    continue
                push(node, arc_index)
                pushed_any = True
                if excess[node] <= FLOW_EPSILON:
                    break
            if excess[node] <= FLOW_EPSILON:
                break
            if not pushed_any:
                # Relabel: raise to one above the lowest admissible neighbour.
                old_height = height[node]
                new_height = 2 * n
                for arc_index in range(first_arc[node], first_arc[node + 1]):
                    if caps[arc_index] > FLOW_EPSILON and not retired[heads[arc_index]]:
                        new_height = min(new_height, height[heads[arc_index]] + 1)
                if new_height >= 2 * n:
                    height[node] = 2 * n
                    break
                count_at_height[old_height] -= 1
                height[node] = new_height
                count_at_height[new_height] += 1
                relabels += 1
                # Gap heuristic: nodes stranded above an empty height can
                # never reach the sink again.
                if count_at_height[old_height] == 0 and old_height < n:
                    for other in range(n):
                        if old_height < height[other] < n and other != source:
                            count_at_height[height[other]] -= 1
                            height[other] = n + 1
                            count_at_height[n + 1] += 1
    return MaxflowRun(value=excess[sink], augmenting_paths=0, phases=relabels)


def _extract(
    network: FlowNetwork,
) -> tuple[list[int], list[float], list[int], list[int]]:
    """Flatten the network into CSR-ish arrays with finite capacities."""
    finite_total = 0.0
    for _, arc in network.iter_edges():
        if math.isfinite(arc.cap):
            finite_total += arc.cap + network._adj[arc.head][arc.rev].cap  # noqa: SLF001
    surrogate = finite_total + 1.0

    heads: list[int] = []
    caps: list[float] = []
    rev: list[int] = []
    first_arc: list[int] = [0]
    offsets: list[int] = []
    adj = network._adj  # noqa: SLF001
    for node in range(network.num_nodes):
        offsets.append(len(heads))
        for arc in adj[node]:
            heads.append(arc.head)
            caps.append(arc.cap if math.isfinite(arc.cap) else surrogate)
            rev.append(-1)  # fixed up below
        first_arc.append(len(heads))
    # Fix up reverse indices using the per-node arc positions.
    for node in range(network.num_nodes):
        for pos, arc in enumerate(adj[node]):
            rev[offsets[node] + pos] = offsets[arc.head] + arc.rev
    return heads, caps, rev, first_arc
