"""Flat-array Dinic: the same algorithm on CSR-style parallel lists.

The default :func:`~repro.flownet.algorithms.dinic.dinic` walks ``Arc``
objects; this variant flattens the network into parallel lists
(``heads`` / ``caps`` / ``rev`` with CSR offsets), runs Dinic entirely on
list indexing, and writes the updated residual capacities back.

Semantics are identical to ``dinic`` — including resumability, since the
flatten/write-back round-trips the residual state.  **Measured honestly:**
on CPython 3.11 a *per-run* flatten buys nothing (slotted attribute access
is as fast as list indexing, and the O(|E|) flatten/write-back is pure
overhead for light runs), so this variant is at parity with ``dinic`` and
is not the default.  What does pay is making the flat arrays *persistent*:
:func:`~repro.flownet.algorithms.dinic_flat_persistent.dinic_flat_persistent`
keeps them alive across runs in a
:class:`~repro.flownet.residual.ResidualArena` and adds sink-rooted levels,
and on the EXP-3 incremental-maxflow workload (BENCH_PR2.json: btc2011 /
ctu13 / prosper, BFQ+ and BFQ*) that cuts aggregate maxflow time from
4.45 s to 2.08 s — a measured 2.1x over the object walker, with ctu13 at
1.6-1.9x and prosper at 2.1-2.3x (btc2011's windows are too small to
amortise anything; it stays within ~1 ms of parity).  This per-run variant
is retained as the bridge between the two designs and as a third
independent Dinic implementation in the solver-agreement property tests.
"""

from __future__ import annotations

import math

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork

_UNREACHED = -1
#: Stand-in for infinite capacity inside the float arrays; restored on
#: write-back. Large enough that no finite augmentation can consume it.
_HUGE = math.inf


def dinic_flat(network: FlowNetwork, source: int, sink: int) -> MaxflowRun:
    """Run Dinic on a flattened copy of the residual state."""
    if source == sink:
        return MaxflowRun(value=0.0)
    network.detach_arena()  # the write-back bypasses the arena hooks
    adj = network._adj  # noqa: SLF001
    retired = network._retired  # noqa: SLF001
    n = len(adj)

    # ------------------------------------------------------------------
    # Flatten (CSR-ish): arcs of node i live in [first[i], first[i+1]).
    # ------------------------------------------------------------------
    first = [0] * (n + 1)
    for i in range(n):
        first[i + 1] = first[i] + len(adj[i])
    m = first[n]
    heads = [0] * m
    caps = [0.0] * m
    rev = [0] * m
    position = 0
    for i in range(n):
        base = first[i]
        for j, arc in enumerate(adj[i]):
            heads[base + j] = arc.head
            caps[base + j] = arc.cap
    for i in range(n):
        base = first[i]
        for j, arc in enumerate(adj[i]):
            rev[base + j] = first[arc.head] + arc.rev
    del position

    level = [_UNREACHED] * n
    iters = [0] * n
    total = 0.0
    n_paths = 0
    phases = 0

    while True:
        # BFS levels over positive-capacity arcs.
        for i in range(n):
            level[i] = _UNREACHED
        if retired[source] or retired[sink]:
            break
        level[source] = 0
        queue = [source]
        head_ptr = 0
        while head_ptr < len(queue):
            node = queue[head_ptr]
            head_ptr += 1
            next_level = level[node] + 1
            for k in range(first[node], first[node + 1]):
                other = heads[k]
                if caps[k] > FLOW_EPSILON and level[other] == _UNREACHED and not retired[other]:
                    level[other] = next_level
                    if other != sink:
                        queue.append(other)
        if level[sink] == _UNREACHED:
            break
        phases += 1
        for i in range(n):
            iters[i] = first[i]

        # Blocking flow: iterative advance/retreat DFS.
        while True:
            path_nodes = [source]
            path_arcs: list[int] = []
            pushed = 0.0
            while True:
                node = path_nodes[-1]
                if node == sink:
                    bottleneck = math.inf
                    for k in path_arcs:
                        if caps[k] < bottleneck:
                            bottleneck = caps[k]
                    for k in path_arcs:
                        if not math.isinf(caps[k]):
                            caps[k] -= bottleneck
                        caps[rev[k]] += bottleneck
                    pushed = bottleneck
                    break
                advanced = False
                k = iters[node]
                end = first[node + 1]
                while k < end:
                    other = heads[k]
                    if (
                        caps[k] > FLOW_EPSILON
                        and not retired[other]
                        and level[other] == level[node] + 1
                    ):
                        iters[node] = k
                        path_arcs.append(k)
                        path_nodes.append(other)
                        advanced = True
                        break
                    k += 1
                if advanced:
                    continue
                iters[node] = end
                level[node] = _UNREACHED
                if node == source:
                    break
                path_nodes.pop()
                last = path_arcs.pop()
                # Force the parent to move past the dead arc.
                parent = path_nodes[-1]
                if iters[parent] == last:
                    iters[parent] = last + 1
            if pushed <= FLOW_EPSILON:
                break
            if math.isinf(pushed):
                raise ArithmeticError("augmenting path with infinite bottleneck")
            total += pushed
            n_paths += 1

    # ------------------------------------------------------------------
    # Write the residual state back to the arcs.
    # ------------------------------------------------------------------
    for i in range(n):
        base = first[i]
        arcs = adj[i]
        for j in range(len(arcs)):
            arcs[j].cap = caps[base + j]
    return MaxflowRun(value=total, augmenting_paths=n_paths, phases=phases)
