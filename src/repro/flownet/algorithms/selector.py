"""Adaptive per-window kernel selection over the arena kernels.

``kernel="adaptive"`` routes every arena solve through a
:class:`KernelSelector`: a size/density policy seeds the choice, and an
EWMA of *observed* seconds-per-arc (bucketed by arena magnitude, fed by
every adaptive solve) takes over as soon as the candidate kernels have
been sampled in a bucket — so a sweep over similar windows
converges onto whichever kernel is actually fastest on this machine and
workload, not on whichever the static thresholds guessed.

The selector also keeps per-kernel choice counters
(:meth:`KernelSelector.snapshot`), which
:class:`repro.core.profile.PhaseBreakdown` and the service ``/metrics``
phases section surface — adaptive decisions are observable, not folklore.

:func:`arena_solve` is the single dispatch point used by the incremental
engine and the transform compiler; it stamps the executed kernel onto the
returned :class:`~repro.flownet.algorithms.base.MaxflowRun` so per-kernel
accounting works even when ``adaptive`` made the call.
"""

from __future__ import annotations

import threading
import time

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.algorithms.dinic_flat_persistent import arena_maxflow
from repro.flownet.algorithms.dinic_vectorized import arena_maxflow_vectorized
from repro.flownet.algorithms.push_relabel_flat import arena_push_relabel
from repro.flownet.network import FlowNetwork
from repro.flownet.residual import ResidualArena

#: The concrete arena kernels ``adaptive`` chooses between.
ARENA_SOLVERS = {
    "persistent": arena_maxflow,
    "vectorized": arena_maxflow_vectorized,
    "push_relabel": arena_push_relabel,
}

#: Below this arc count the specialised kernels' per-run setup (tensor
#: build / capacity localisation) dominates any win — always persistent.
SMALL_ARENA_ARCS = 3_000
#: From here up the python BFS dominates and the numpy frontier pays off.
VECTORIZED_ARCS = 24_000
#: Densest-window heuristic: average arc-per-node degree at which the
#: preflow wave beats path-at-a-time augmentation on short windows.
DENSE_DEGREE = 6.0


class KernelSelector:
    """Threshold-seeded, EWMA-refined kernel chooser (thread-safe).

    Observations are bucketed by ``arcs.bit_length()`` (powers of two) so
    timings from very different window sizes never mix.  Within a bucket
    the first call for each eligible-but-unsampled kernel explores it
    once; afterwards the lowest per-arc EWMA wins.
    """

    __slots__ = ("_lock", "_per_arc", "_choices", "alpha")

    def __init__(self, alpha: float = 0.3) -> None:
        self._lock = threading.Lock()
        #: {bucket: {kernel: EWMA seconds-per-arc}}
        self._per_arc: dict[int, dict[str, float]] = {}
        self._choices: dict[str, int] = {}
        self.alpha = alpha

    # ------------------------------------------------------------------
    def eligible(self, nodes: int, arcs: int) -> list[str]:
        """Kernels worth considering for an arena of this shape."""
        if arcs < SMALL_ARENA_ARCS:
            return ["persistent"]
        kernels = ["persistent"]
        if nodes and arcs / nodes >= DENSE_DEGREE:
            kernels.append("push_relabel")
        if arcs >= VECTORIZED_ARCS:
            kernels.append("vectorized")
        return kernels

    def choose(self, nodes: int, arcs: int) -> str:
        """Pick a kernel for one solve and count the choice."""
        return self.route(nodes, arcs)[0]

    def route(self, nodes: int, arcs: int) -> tuple[str, bool]:
        """Pick a kernel and say whether the solve is worth timing.

        When only one kernel is eligible there is no competition to
        learn from, so the caller should skip the stopwatch and the EWMA
        feedback entirely — that fast path is what keeps ``adaptive``
        within noise of a fixed ``persistent`` on sweeps of small
        windows, where the per-solve bookkeeping would otherwise be a
        measurable fraction of sub-millisecond solves.
        """
        if arcs < SMALL_ARENA_ARCS:
            # The dominant case on real workloads (Lemma-2 windows are
            # mostly tiny); keep it to one dict bump.  Lock-free: a lost
            # increment under thread contention is acceptable for an
            # advisory metric, and the GIL keeps the dict consistent.
            choices = self._choices
            choices["persistent"] = choices.get("persistent", 0) + 1
            return "persistent", False
        kernels = self.eligible(nodes, arcs)
        if len(kernels) == 1:
            chosen = kernels[0]
            self._choices[chosen] = self._choices.get(chosen, 0) + 1
            return chosen, False
        with self._lock:
            bucket = self._per_arc.get(arcs.bit_length(), {})
            unsampled = [k for k in kernels if k not in bucket]
            if unsampled:
                chosen = unsampled[0]  # explore each candidate once
            else:
                chosen = min(kernels, key=lambda k: bucket[k])
            self._choices[chosen] = self._choices.get(chosen, 0) + 1
            return chosen, True

    def record(self, kernel: str, arcs: int, seconds: float) -> None:
        """Feed one observed solve back into the per-bucket EWMA."""
        if arcs <= 0:
            return
        per_arc = seconds / arcs
        with self._lock:
            bucket = self._per_arc.setdefault(arcs.bit_length(), {})
            previous = bucket.get(kernel)
            if previous is None:
                bucket[kernel] = per_arc
            else:
                bucket[kernel] = previous + self.alpha * (per_arc - previous)

    def snapshot(self) -> dict[str, int]:
        """Per-kernel choice counts so far (for profiles and /metrics)."""
        with self._lock:
            return dict(self._choices)


#: Process-wide selector: sweeps, service workers and batch solves all
#: share one learned model per process.
DEFAULT_SELECTOR = KernelSelector()


def arena_solve(
    arena: ResidualArena,
    source: int,
    sink: int,
    *,
    kernel: str = "persistent",
    value_bound: float | None = None,
    selector: KernelSelector | None = None,
) -> MaxflowRun:
    """Run the named (or adaptively chosen) arena kernel on one arena.

    The returned run is stamped with the kernel that actually executed —
    under ``adaptive`` that is the chosen concrete kernel, which is what
    per-kernel profiling should attribute the time to.
    """
    if kernel == "adaptive":
        active = selector if selector is not None else DEFAULT_SELECTOR
        arcs = len(arena.heads)
        chosen, timed = active.route(len(arena.slots), arcs)
        if timed:
            started = time.perf_counter()
            run = ARENA_SOLVERS[chosen](
                arena, source, sink, value_bound=value_bound
            )
            active.record(chosen, arcs, time.perf_counter() - started)
        else:
            run = ARENA_SOLVERS[chosen](
                arena, source, sink, value_bound=value_bound
            )
        run.kernel = chosen
        return run
    run = ARENA_SOLVERS[kernel](arena, source, sink, value_bound=value_bound)
    run.kernel = kernel
    return run


def network_maxflow(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    kernel: str = "persistent",
    value_bound: float | None = None,
    selector: KernelSelector | None = None,
) -> MaxflowRun:
    """Run an engine kernel on an attached network (the engine's front door).

    ``"object"`` runs the pre-arena object-graph Dinic directly.  Every
    arena kernel first attaches (or journal-syncs) the network's persistent
    :class:`ResidualArena`, then dispatches through :func:`arena_solve` —
    so ``kernel="adaptive"`` and the specialised kernels get exactly the
    persistence the flat Dinic pioneered.
    """
    if kernel == "object":
        run = dinic(network, source, sink)
        run.kernel = "object"
        return run
    arena = network.arena
    if arena is None:
        arena = ResidualArena(network)
        network.attach_arena(arena)
    else:
        arena.sync(network)  # replay the structural journal in one batch
    return arena_solve(
        arena, source, sink, kernel=kernel, value_bound=value_bound,
        selector=selector,
    )
