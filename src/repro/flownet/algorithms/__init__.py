"""Classical Maxflow solvers (Appendix A of the paper)."""

from repro.flownet.algorithms.base import MaxflowRun, MaxflowSolver
from repro.flownet.algorithms.capacity_scaling import capacity_scaling
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.algorithms.dinic_flat import dinic_flat
from repro.flownet.algorithms.dinic_flat_persistent import dinic_flat_persistent
from repro.flownet.algorithms.edmonds_karp import edmonds_karp
from repro.flownet.algorithms.ford_fulkerson import ford_fulkerson
from repro.flownet.algorithms.lp import lp_maxflow
from repro.flownet.algorithms.push_relabel import push_relabel
from repro.flownet.algorithms.registry import (
    RESUMABLE_SOLVERS,
    SOLVERS,
    get_solver,
    solve_max_flow,
)

__all__ = [
    "MaxflowRun",
    "MaxflowSolver",
    "dinic",
    "dinic_flat",
    "dinic_flat_persistent",
    "capacity_scaling",
    "edmonds_karp",
    "ford_fulkerson",
    "push_relabel",
    "lp_maxflow",
    "SOLVERS",
    "RESUMABLE_SOLVERS",
    "get_solver",
    "solve_max_flow",
]
