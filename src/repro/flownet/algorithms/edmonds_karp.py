"""Edmonds-Karp: Ford-Fulkerson with BFS-shortest augmenting paths.

Kept as a baseline for the Table-4 solver comparison and as an independent
implementation to cross-check Dinic in the test-suite.  Like Dinic it is
resumable: it only reads the current residual state.
"""

from __future__ import annotations

import math

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork


def edmonds_karp(network: FlowNetwork, source: int, sink: int) -> MaxflowRun:
    """Augment along BFS-shortest residual paths until none remain."""
    if source == sink:
        return MaxflowRun(value=0.0)
    network.detach_arena()  # writes Arc.cap directly; a stale mirror is worse than none
    adj = network._adj  # noqa: SLF001 - hot path
    retired = network._retired  # noqa: SLF001
    total = 0.0
    n_paths = 0
    while True:
        parent = _bfs_parents(adj, retired, source, sink)
        if parent is None:
            break
        bottleneck = math.inf
        node = sink
        while node != source:
            tail, pos = parent[node]
            bottleneck = min(bottleneck, adj[tail][pos].cap)
            node = tail
        if not math.isfinite(bottleneck):
            raise ArithmeticError("augmenting path with infinite bottleneck")
        node = sink
        while node != source:
            tail, pos = parent[node]
            arc = adj[tail][pos]
            if not math.isinf(arc.cap):
                arc.cap -= bottleneck
            adj[arc.head][arc.rev].cap += bottleneck
            node = tail
        total += bottleneck
        n_paths += 1
    return MaxflowRun(value=total, augmenting_paths=n_paths, phases=n_paths)


def _bfs_parents(
    adj: list, retired: list[bool], source: int, sink: int
) -> dict[int, tuple[int, int]] | None:
    """Shortest-path BFS; returns child -> (parent, arc position), or None."""
    if retired[source] or retired[sink]:
        return None
    parent: dict[int, tuple[int, int]] = {source: (-1, -1)}
    queue = [source]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for pos, arc in enumerate(adj[node]):
            other = arc.head
            if arc.cap > FLOW_EPSILON and other not in parent and not retired[other]:
                parent[other] = (node, pos)
                if other == sink:
                    return parent
                queue.append(other)
    return None
