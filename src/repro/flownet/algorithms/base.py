"""Common types for Maxflow solvers.

Every solver in :mod:`repro.flownet.algorithms` implements the same
callable shape: given a :class:`~repro.flownet.network.FlowNetwork` and
source/sink node indices, compute a maximum flow and report how it went.

Augmenting-path solvers (Ford-Fulkerson, Edmonds-Karp, Dinic) *mutate the
residual state in place*, which is exactly what the incremental delta-BFlow
algorithms rely on: after a structural change, calling the solver again
finds only the missing augmenting paths (Lemma 3 / Lemma 4).  The
self-contained solvers (push-relabel, LP) work on private copies and only
report the optimal value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.flownet.network import FlowNetwork


@dataclass(slots=True)
class MaxflowRun:
    """Outcome of one solver invocation.

    Attributes:
        value: flow value *added by this run* (for resumable solvers this is
            the increment over whatever flow was already routed).
        augmenting_paths: number of augmenting paths found (0 for
            non-augmenting solvers).
        phases: number of BFS phases / relabel sweeps, solver specific.
        paths: optional recorded augmenting paths, each a list of node
            indices from source to sink (populated only when requested).
        kernel: engine-kernel name that executed this run, stamped by the
            arena dispatch (:func:`repro.flownet.algorithms.selector.
            arena_solve`) — under ``adaptive`` this is the concrete kernel
            chosen.  ``None`` for solver-registry runs outside the engine.
    """

    value: float
    augmenting_paths: int = 0
    phases: int = 0
    paths: list[list[int]] = field(default_factory=list)
    kernel: str | None = None


class MaxflowSolver(Protocol):
    """Callable protocol implemented by all solvers."""

    def __call__(
        self, network: FlowNetwork, source: int, sink: int
    ) -> MaxflowRun:  # pragma: no cover - protocol definition
        ...
