"""Capacity-scaling Ford-Fulkerson.

The classical fix for Ford-Fulkerson's value-dependent running time:
augment only along residual paths whose bottleneck is at least a threshold
``Δ``, halving ``Δ`` once no such path remains.  ``O(|E|^2 log U)`` with
integer-ish capacities — a useful middle ground between plain
Ford-Fulkerson and Dinic for the Table-4 comparison, and another
independent implementation for the solver-agreement property tests.

Resumable like the other augmenting-path solvers (reads only the current
residual state).
"""

from __future__ import annotations

import math

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork


def capacity_scaling(network: FlowNetwork, source: int, sink: int) -> MaxflowRun:
    """Scaling Ford-Fulkerson: DFS augmenting paths above a falling threshold."""
    if source == sink:
        return MaxflowRun(value=0.0)
    network.detach_arena()  # writes Arc.cap directly; a stale mirror is worse than none
    adj = network._adj  # noqa: SLF001 - hot path
    retired = network._retired  # noqa: SLF001

    largest_finite = 0.0
    for arcs in adj:
        for arc in arcs:
            if math.isfinite(arc.cap) and arc.cap > largest_finite:
                largest_finite = arc.cap
    if largest_finite <= FLOW_EPSILON:
        return MaxflowRun(value=0.0)
    threshold = 2.0 ** math.floor(math.log2(largest_finite))

    total = 0.0
    n_paths = 0
    phases = 0
    while threshold >= FLOW_EPSILON:
        phases += 1
        while True:
            path = _dfs_above(adj, retired, source, sink, threshold)
            if path is None:
                break
            bottleneck = min(adj[tail][pos].cap for tail, pos in path)
            for tail, pos in path:
                arc = adj[tail][pos]
                if not math.isinf(arc.cap):
                    arc.cap -= bottleneck
                adj[arc.head][arc.rev].cap += bottleneck
            total += bottleneck
            n_paths += 1
        if threshold < 1e-6:
            # Below any meaningful capacity resolution: finish exactly with
            # an unrestricted pass and stop.
            threshold = 0.0
            while True:
                path = _dfs_above(adj, retired, source, sink, FLOW_EPSILON)
                if path is None:
                    break
                bottleneck = min(adj[tail][pos].cap for tail, pos in path)
                for tail, pos in path:
                    arc = adj[tail][pos]
                    if not math.isinf(arc.cap):
                        arc.cap -= bottleneck
                    adj[arc.head][arc.rev].cap += bottleneck
                total += bottleneck
                n_paths += 1
            break
        threshold /= 2.0
    return MaxflowRun(value=total, augmenting_paths=n_paths, phases=phases)


def _dfs_above(
    adj: list,
    retired: list[bool],
    source: int,
    sink: int,
    threshold: float,
) -> list[tuple[int, int]] | None:
    """Iterative DFS along arcs with residual >= threshold."""
    if retired[source] or retired[sink]:
        return None
    floor = max(threshold, FLOW_EPSILON)
    seen = {source}
    stack: list[tuple[int, int]] = [(source, 0)]
    path: list[tuple[int, int]] = []
    while stack:
        node, pos = stack[-1]
        arcs = adj[node]
        if pos >= len(arcs):
            stack.pop()
            if path:
                path.pop()
            continue
        stack[-1] = (node, pos + 1)
        arc = arcs[pos]
        other = arc.head
        if arc.cap >= floor and other not in seen and not retired[other]:
            path.append((node, pos))
            if other == sink:
                return path
            seen.add(other)
            stack.append((other, 0))
    return None
