"""Flat FIFO push-relabel over the residual arena, for dense windows.

Dinic's phase structure pays off on long sparse level graphs; the dense
short-window candidate arenas Lemma 2 generates (many parallel timeline
arcs, short residual distances) are push-relabel's home turf — excess
floods the short window in one wave instead of one augmenting path at a
time.  This kernel runs FIFO push-relabel with exact BFS-distance initial
heights and the gap heuristic, directly on the arena's flat arrays.

Two design points keep it provably interchangeable with the Dinic
kernels:

* **Finite surrogate capacities.**  Transformed temporal networks carry
  ``inf`` hold-arc capacities, which break the height-function maximality
  argument.  The run therefore works on a *local* capacity copy where
  every ``inf`` is replaced by ``sum(finite caps) + 1`` — an upper bound
  on any finite s-t flow, so the maxflow value is unchanged and interior
  surrogate arcs can never saturate.  At exit the per-arc deltas are
  folded back into the real ``caps`` (``inf`` minus a finite push stays
  ``inf``), so the arena state is exactly as if an augmenting-path kernel
  had routed the same flow.

* **Dinic finish.**  After the preflow converges, the kernel hands the
  arena to :func:`~repro.flownet.algorithms.dinic_flat_persistent.
  arena_maxflow`.  In the normal case that run's first backward BFS fails
  immediately — it *is* the min-cut certificate sweep every arena kernel
  must leave behind (``level``/``stale_labels``/``cut_closed``), at the
  price Dinic itself pays.  If float-epsilon effects ever left an
  augmenting path behind, the finish routes it instead of certifying a
  non-maximal flow — correctness never rests on push-relabel alone.
"""

from __future__ import annotations

import math

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.algorithms.dinic_flat_persistent import arena_maxflow
from repro.flownet.network import FLOW_EPSILON
from repro.flownet.residual import ARENA_RETIRED, ResidualArena


def arena_push_relabel(
    arena: ResidualArena,
    source: int,
    sink: int,
    *,
    value_bound: float | None = None,
) -> MaxflowRun:
    """FIFO push-relabel on the arena; drop-in for ``arena_maxflow``.

    Same contract as the other arena kernels: resumable (computes the
    *increment* over whatever flow the arena already carries), mutates the
    arena in place, leaves the shared scratch/certificate state behind,
    and writes touched arcs back to attached object graphs.
    ``value_bound`` is honoured only as the O(1) zero-bound fast path —
    a preflow cannot stop early at a value bound without unwinding its
    internal excess, so positive bounds are ignored (they are an
    optimisation, never a semantic).
    """
    if source == sink:
        return MaxflowRun(value=0.0)
    level = arena.level
    if level[source] == ARENA_RETIRED or level[sink] == ARENA_RETIRED:
        return MaxflowRun(value=0.0)
    if arena.cut_closed and arena.cut_sink == sink and level[source] < 0:
        return MaxflowRun(value=0.0)
    eps = FLOW_EPSILON
    if value_bound is not None and value_bound <= eps:
        return MaxflowRun(value=0.0)

    # This run is about to reroute flow; whatever cut an earlier run
    # certified may be pierced by the reverse arcs it opens.
    arena.cut_closed = False

    gained, relabels, touched = _preflow(arena, source, sink)

    # Certify (and, defensively, complete) with the shared Dinic loop: its
    # first backward BFS doubles as the min-cut sweep.
    finish = arena_maxflow(arena, source, sink)

    arcs = arena.arcs
    if arcs is not None:
        caps = arena.caps
        for k in touched:
            arcs[k].cap = caps[k]
    return MaxflowRun(
        value=gained + finish.value,
        augmenting_paths=finish.augmenting_paths,
        phases=relabels + finish.phases,
    )


def _preflow(
    arena: ResidualArena, source: int, sink: int
) -> tuple[float, int, list[int]]:
    """The preflow core; returns (flow gained at sink, relabels, touched).

    Runs on a surrogate-finite local capacity copy (see the module
    docstring) and folds the deltas back into ``arena.caps`` before
    returning.  On exit every internal node's excess is zero, so the
    arena carries a valid (maximum, up to float eps) flow.
    """
    heads = arena.heads
    rev = arena.rev
    slots = arena.slots
    real_caps = arena.caps
    level = arena.level
    n = len(slots)
    eps = FLOW_EPSILON

    finite_total = 0.0
    for c in real_caps:
        if c != math.inf:
            finite_total += c
    surrogate = finite_total + 1.0
    local = [surrogate if c == math.inf else c for c in real_caps]

    # Exact initial heights: residual distance to the sink; unreachable
    # (and retired) nodes sit at n + 1, the source is pinned at n.
    unreached = n + 1
    height = [unreached] * n
    height[sink] = 0
    bfs = [sink]
    head_ptr = 0
    while head_ptr < len(bfs):
        node = bfs[head_ptr]
        head_ptr += 1
        depth = height[node] + 1
        for k in slots[node]:
            other = heads[k]
            if (
                height[other] == unreached
                and level[other] != ARENA_RETIRED
                and local[rev[k]] > eps
            ):
                height[other] = depth
                bfs.append(other)
    if height[source] == unreached:
        return 0.0, 0, []  # no augmenting path; the finish run certifies
    height[source] = n

    # Height occupancy for the gap heuristic (source/sink excluded — they
    # never relabel and must not be swept into a gap lift).
    count = [0] * (2 * n + 2)
    for i in range(n):
        if i != source and i != sink and level[i] != ARENA_RETIRED:
            count[height[i]] += 1

    excess = [0.0] * n
    cur = [0] * n
    touched: list[int] = []
    queue: list[int] = []
    queue_head = 0
    gained = 0.0
    relabels = 0

    def push(k: int, amount: float) -> None:
        local[k] -= amount
        local[rev[k]] += amount
        touched.append(k)
        touched.append(rev[k])

    # Saturate every source out-arc (surrogate-finite, so truly saturated).
    for k in slots[source]:
        c = local[k]
        if c <= eps:
            continue
        v = heads[k]
        if v == source or level[v] == ARENA_RETIRED:
            continue
        push(k, c)
        if v == sink:
            gained += c
            continue
        if excess[v] <= eps:
            queue.append(v)
        excess[v] += c

    while queue_head < len(queue):
        u = queue[queue_head]
        queue_head += 1
        # Discharge u completely: push over admissible arcs, relabel when
        # the current-arc scan exhausts, until the excess is gone.
        while excess[u] > eps:
            row = slots[u]
            end = len(row)
            position = cur[u]
            h_target = height[u] - 1
            while position < end and excess[u] > eps:
                k = row[position]
                c = local[k]
                if c > eps:
                    v = heads[k]
                    if height[v] == h_target and level[v] != ARENA_RETIRED:
                        amount = excess[u] if excess[u] < c else c
                        push(k, amount)
                        excess[u] -= amount
                        if v == sink:
                            gained += amount
                        elif v != source:
                            if excess[v] <= eps:
                                queue.append(v)
                            excess[v] += amount
                        continue  # retry the same arc (may still admit)
                position += 1
            cur[u] = position
            if excess[u] <= eps:
                break
            # Relabel: lowest neighbouring height over residual arcs.
            relabels += 1
            old = height[u]
            best = 2 * n + 1
            for k in row:
                if local[k] > eps:
                    v = heads[k]
                    if level[v] != ARENA_RETIRED:
                        hv = height[v]
                        if hv < best:
                            best = hv
            new = best + 1
            count[old] -= 1
            if count[old] == 0 and old < n:
                # Gap: nothing occupies height ``old`` any more, so every
                # node strictly above it can no longer reach the sink —
                # lift them (and u) straight past n.
                lift = n + 1
                for v in range(n):
                    if v == source or v == sink or level[v] == ARENA_RETIRED:
                        continue
                    hv = height[v]
                    if old < hv <= n:
                        count[hv] -= 1
                        count[lift] += 1
                        height[v] = lift
                        cur[v] = 0
                if new < lift:
                    new = lift
            count[new] += 1
            height[u] = new
            cur[u] = 0

    if gained > finite_total + eps:
        raise ArithmeticError("augmenting path with infinite bottleneck")

    # Fold the local state back into the real capacities: for finite arcs
    # the local value *is* the new residual; infinite arcs stay infinite
    # (their routed amount lives on the finite reverse arc).
    touched = list(set(touched))
    for k in touched:
        real = real_caps[k]
        if real == math.inf:
            continue  # inf minus any finite routed amount stays inf
        real_caps[k] = local[k]
    return gained, relabels, touched
