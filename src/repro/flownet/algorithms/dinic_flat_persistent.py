"""Resumable Dinic on a *persistent* flat residual arena.

``dinic_flat`` already showed that the CSR layout itself is not the win on
CPython — its per-run O(|E|) flatten/write-back is pure overhead.  This
kernel removes that overhead structurally: the flat arrays live in a
:class:`~repro.flownet.residual.ResidualArena` attached to the network and
maintained *incrementally* through the network's mutation hooks, so a
resumed run (the BFQ+/BFQ* hot path — dozens of runs over one growing and
shrinking network) touches no per-run conversion at all.  After a run,
only the arcs actually saturated or relaxed are written back to the object
graph, keeping both views byte-equivalent for ``flow_value()``,
``certify_maxflow`` and the differential oracle.

The core loop is exposed as :func:`arena_maxflow`, which runs on *any*
:class:`ResidualArena` — attached to a network or **detached**: the
transform compiler (:mod:`repro.core.skeleton`) materialises candidate
windows straight into detached arenas with no object graph behind them,
and the kernel's write-back simply no-ops (``arena.arcs is None``).

On top of the persistence, the kernel folds three constant-factor wins the
object-graph walker cannot have:

* **retirement folded into levels** — retired nodes permanently carry the
  :data:`~repro.flownet.residual.ARENA_RETIRED` sentinel, so the hot loops
  need no per-arc ``retired[]`` lookup;
* **sink-rooted levels** — the phase BFS runs *backwards from the sink*
  and stops the moment the source is labelled, so every labelled node has
  an admissible arc chain to the sink and the blocking-flow DFS only
  dead-ends on arcs the phase itself saturated (source-rooted levels send
  the DFS into the whole source-reachable set, which on transformed
  temporal networks is mostly dead ends);
* **O(labelled) scratch resets** — ``level``/``iters`` are persistent
  arrays cleared only where the previous BFS dirtied them, and the
  ``isinf`` guard disappears because ``inf - finite == inf``.

**Measured honestly** (CPython 3.11): on the EXP-3 incremental-maxflow
workload (BENCH_PR2.json: btc2011 / ctu13 / prosper, BFQ+ and BFQ*) the
persistent arena cuts aggregate maxflow time from 4.45 s to 2.08 s — a
2.1x over the object walker.  The remaining tax was the *transform*, not
the maxflow: BFQ still built a dict-backed ``FlowNetwork`` per candidate
window before this kernel saw an arc.  The EXP-4 transform-compiler
workload (BENCH_PR4.json: same datasets, BFQ end-to-end) removes that too
— skeleton-sliced detached arenas beat the per-window object-graph
transform by 4.1x aggregate (per-dataset 2.8-4.2x), with BFQ+/BFQ* no
slower on any dataset (1.05-1.87x).

This kernel is no longer alone on the arena: BENCH_PR9.json (the
``kernels`` experiment) races it against the ``vectorized`` numpy Dinic
and the ``push_relabel`` flat preflow on the same residual state.  On
the standard EXP-3 workload every candidate window is small and this
kernel remains the fastest fixed choice — which is why it stays the
default and why the ``adaptive`` selector routes small windows here.
The specialised kernels only pay off on large windows (roughly >= 24k
transformed arcs, e.g. prosper at --large-scale 3), where they reach
1.3-2x over this kernel on cold solves.  See
:mod:`repro.flownet.algorithms.selector` and docs/algorithms.md.

The computed flow *value*, the certified min cut, and the arena/object
byte-equivalence all match :func:`~repro.flownet.algorithms.dinic.dinic`
exactly; the residual flow *assignment* may differ (both are maximum
flows — sink-rooted and source-rooted level graphs admit different
blocking flows), which the differential oracle accounts for by comparing
values and certificates, not raw residuals.
"""

from __future__ import annotations

import math

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork
from repro.flownet.residual import ARENA_RETIRED, ARENA_UNREACHED, ResidualArena


def dinic_flat_persistent(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    value_bound: float | None = None,
) -> MaxflowRun:
    """Resume Dinic on the network's persistent residual arena.

    The first call builds and attaches the arena (one O(|V| + |E|) sweep);
    every later call reuses it, provided all intervening mutations went
    through the :class:`~repro.flownet.network.FlowNetwork` API (the
    in-place object-graph solvers detach the arena defensively, forcing a
    rebuild here rather than running on stale arrays).

    ``value_bound`` is an optional *proof of maximality*: a caller-supplied
    upper bound on how much this run can add (for the insertion sweep, the
    Observation-2 sink capacity added since the last computed Maxflow —
    place every new timeline node on the source side of the old min cut and
    the only new crossing arcs are the sink-window arcs).  Once the run's
    gain reaches the bound, no augmenting path can remain, so the kernel
    returns without the otherwise-mandatory final failed BFS — the single
    most expensive sweep of a resumed run.  A bound of zero certifies the
    resumed state as already maximal in O(1).
    """
    if source == sink:
        return MaxflowRun(value=0.0)
    arena = network.arena
    if arena is None:
        arena = ResidualArena(network)
        network.attach_arena(arena)
    else:
        arena.sync(network)  # replay the structural journal in one batch
    return arena_maxflow(arena, source, sink, value_bound=value_bound)


def arena_maxflow(
    arena: ResidualArena,
    source: int,
    sink: int,
    *,
    value_bound: float | None = None,
) -> MaxflowRun:
    """The kernel proper: resumable Dinic over an arena's flat arrays.

    Works identically on attached arenas (entered via
    :func:`dinic_flat_persistent`, which syncs the journal first) and on
    detached arenas built by the transform compiler — the only difference
    is the final write-back, which is skipped when there are no ``Arc``
    objects to mirror (``arena.arcs is None``).
    """
    if source == sink:
        return MaxflowRun(value=0.0)

    heads = arena.heads
    caps = arena.caps
    rev = arena.rev
    slots = arena.slots
    level = arena.level
    iters = arena.iters
    stale = arena.stale_labels

    total = 0.0
    n_paths = 0
    phases = 0
    touched: list[int] = []
    # Hot-loop locals: global/attribute lookups cost a dict probe per use on
    # CPython, and the loops below execute millions of steps per workload.
    eps = FLOW_EPSILON
    stale_append = stale.append

    if level[source] == ARENA_RETIRED or level[sink] == ARENA_RETIRED:
        return MaxflowRun(value=0.0)

    # Min-cut certificate fast path: the previous run towards this sink
    # left a closed sink-side cut that no mutation has pierced since, and
    # the source is outside it — no augmenting path can exist, skip the
    # BFS.
    if arena.cut_closed and arena.cut_sink == sink and level[source] < 0:
        return MaxflowRun(value=0.0)

    bounded = value_bound is not None
    if bounded and value_bound <= eps:
        return MaxflowRun(value=0.0)

    maximal_by_bound = False
    while True:
        # ------------------------------------------------------------------
        # BFS levels *backwards from the sink* (``level[i]`` = residual
        # distance to the sink), clearing only what the previous BFS
        # dirtied.  Sink-rooted levels are what kills dead-end exploration
        # in the blocking flow below: at phase start every labelled node
        # has, by construction of the backward BFS, an admissible arc
        # chain to the sink, so the DFS only ever dead-ends on arcs this
        # phase itself saturated.  Source-rooted levels (what the object
        # walker uses) label the whole source-reachable set, most of which
        # leads nowhere — on transformed temporal networks the DFS then
        # burns the bulk of its time retiring those nodes one by one.
        # ------------------------------------------------------------------
        for i in stale:
            if level[i] >= 0:
                level[i] = ARENA_UNREACHED
        del stale[:]
        level[sink] = 0
        stale_append(sink)
        queue = [sink]
        queue_append = queue.append
        head_ptr = 0
        source_found = False
        while head_ptr < len(queue):
            node = queue[head_ptr]
            head_ptr += 1
            next_level = level[node] + 1
            for k in slots[node]:
                # The arc *into* ``node`` from ``heads[k]`` is the partner
                # slot ``rev[k]``.  Test the level first: most scanned arcs
                # lead to nodes this BFS already labelled, so the cheaper
                # reject comes from the visited check.
                other = heads[k]
                if level[other] == ARENA_UNREACHED and caps[rev[k]] > eps:
                    level[other] = next_level
                    stale_append(other)
                    if other == source:
                        # Every interior node of a shortest augmenting
                        # path is levelled already; stop here.
                        source_found = True
                        break
                    queue_append(other)
            if source_found:
                break
        if not source_found:
            break
        phases += 1
        for i in stale:
            iters[i] = 0

        remaining = (value_bound - total) if bounded else math.inf
        gained, phase_paths, maximal_by_bound = run_blocking_flow(
            heads, caps, rev, slots, level, iters, source, sink, touched,
            remaining,
        )
        total += gained
        n_paths += phase_paths
        if maximal_by_bound:
            break

    if maximal_by_bound:
        # Termination came from the capacity argument, not a failed BFS, so
        # there is no fresh cut to certify — and this run's augmentations
        # may have pierced whatever older cut was recorded.
        arena.cut_closed = False
    else:
        # The loop exits on a failed backward BFS, so the labels left in
        # ``level`` are exactly the can-reach-sink set T — a closed cut
        # certificate that lets the next run towards this sink skip its
        # BFS if nothing pierces it.
        arena.cut_closed = True
        arena.cut_sink = sink

    # ------------------------------------------------------------------
    # Write back only the arcs this run actually touched.  Detached
    # arenas (transform-compiler windows) have no object graph to mirror.
    # ------------------------------------------------------------------
    arcs = arena.arcs
    if arcs is not None:
        for k in touched:
            arcs[k].cap = caps[k]
    return MaxflowRun(value=total, augmenting_paths=n_paths, phases=phases)


def run_blocking_flow(
    heads: list[int],
    caps: list[float],
    rev: list[int],
    slots: list[list[int]],
    level: list[int],
    iters: list[int],
    source: int,
    sink: int,
    touched: list[int],
    remaining_bound: float,
) -> tuple[float, int, bool]:
    """One blocking-flow phase over an admissible (sink-rooted) level graph.

    Shared by the persistent kernel and the vectorized kernel — the levels
    may come from the scalar early-stopping BFS or from the numpy
    frontier-at-a-time BFS; the DFS below only needs ``level[head] ==
    level[node] - 1`` admissibility.  Mutates ``caps`` / ``iters`` /
    ``level`` in place, appends every modified slot to ``touched`` and
    returns ``(gained, paths, hit_bound)`` where ``hit_bound`` reports
    that the accumulated gain reached ``remaining_bound`` (pass
    ``math.inf`` for unbounded runs) and the caller may skip the final
    certifying BFS.

    Iterative advance/retreat DFS over slot ids.  Unlike the object
    walker, the stack survives an augmentation: the walk retreats only to
    the first *saturated* arc of the path, not to the source.  Equivalent
    by the current-arc argument — a restart from the source re-follows
    ``iters`` over still-positive arcs and reproduces exactly the retained
    prefix — but it skips the O(path length) re-walk per path, which
    dominates on temporal transformed networks (hold chains make paths
    hundreds of nodes long).
    """
    eps = FLOW_EPSILON
    # Pre-push capacities via C-level map(); paths run hundreds of arcs
    # long on transformed networks, so every per-arc interpreter step in
    # this section is paid dearly.
    caps_item = caps.__getitem__
    rev_item = rev.__getitem__
    total = 0.0
    n_paths = 0
    path_nodes = [source]
    path_slots: list[int] = []
    while True:
        node = path_nodes[-1]
        if node == sink:
            path_caps = list(map(caps_item, path_slots))
            bottleneck = min(path_caps)
            if math.isinf(bottleneck):
                raise ArithmeticError(
                    "augmenting path with infinite bottleneck"
                )
            for k in path_slots:
                caps[k] -= bottleneck  # inf - finite stays inf
            reverse_slots = list(map(rev_item, path_slots))
            for k in reverse_slots:
                caps[k] += bottleneck
            touched += path_slots
            touched += reverse_slots
            total += bottleneck
            n_paths += 1
            if total >= remaining_bound - eps:
                # The gain hit the caller's capacity bound: the flow is
                # maximal, so skip the rest of this phase *and* the
                # final failed BFS.
                return total, n_paths, True
            # Retreat to the first saturated arc (pre-push capacity
            # within eps of the bottleneck); the prefix before it is
            # exactly what a source restart would re-walk.
            cut = 0
            limit = bottleneck + eps
            while path_caps[cut] > limit:
                cut += 1
            del path_slots[cut:]
            del path_nodes[cut + 1 :]
            continue
        slot_row = slots[node]
        position = iters[node]
        end = len(slot_row)
        next_level = level[node] - 1
        advanced = False
        while position < end:
            k = slot_row[position]
            if caps[k] > eps and level[heads[k]] == next_level:
                iters[node] = position
                path_slots.append(k)
                path_nodes.append(heads[k])
                advanced = True
                break
            position += 1
        if advanced:
            continue
        iters[node] = end
        level[node] = ARENA_UNREACHED
        if node == source:
            return total, n_paths, False  # level graph exhausted
        path_nodes.pop()
        last = path_slots.pop()
        parent = path_nodes[-1]
        # Force the parent to move past the dead arc.
        parent_position = iters[parent]
        if slots[parent][parent_position] == last:
            iters[parent] = parent_position + 1
