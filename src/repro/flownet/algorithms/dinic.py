"""Dinic's algorithm (the paper's default Maxflow solver).

Dinic repeatedly (i) builds a *level graph* with a BFS over the residual
network and (ii) saturates a *blocking flow* in it with a DFS that advances
along level-increasing arcs only.  The implementation is fully iterative
(no recursion), skips retired nodes, and — crucially for the incremental
algorithms of Section 5 — is *resumable*: it reads nothing but the current
residual capacities, so it can be re-invoked after the network has been
extended (insertion case) or had flow withdrawn (deletion case) and will
find exactly the augmenting paths that are still missing.
"""

from __future__ import annotations

import math

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork

_UNREACHED = -1


def dinic(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    track_paths: bool = False,
) -> MaxflowRun:
    """Run Dinic from the network's current residual state.

    Args:
        network: the flow network; its residual state is mutated in place.
        source: index of the source node.
        sink: index of the sink node.
        track_paths: record every augmenting path (index sequences).  Off by
            default because recording costs memory proportional to total
            path length.

    Returns:
        A :class:`MaxflowRun` whose ``value`` is the flow added by this run.
    """
    if source == sink:
        return MaxflowRun(value=0.0)
    # This solver writes Arc.cap directly; a stale flat mirror would be
    # worse than none, so drop any attached arena (rebuilt on next use).
    network.detach_arena()
    total = 0.0
    phases = 0
    n_paths = 0
    recorded: list[list[int]] = []
    adj = network._adj  # noqa: SLF001 - hot path, internal by design
    retired = network._retired  # noqa: SLF001
    n = len(adj)
    level = [_UNREACHED] * n
    iters = [0] * n

    while True:
        grown = _bfs_levels(adj, retired, level, source, sink)
        if not grown:
            break
        phases += 1
        n = len(adj)  # the network may have grown since the previous phase
        iters = [0] * n
        while True:
            pushed, path = _augment_once(
                adj, retired, level, iters, source, sink, track_paths
            )
            if pushed <= FLOW_EPSILON:
                break
            total += pushed
            n_paths += 1
            if track_paths and path is not None:
                recorded.append(path)
    return MaxflowRun(
        value=total, augmenting_paths=n_paths, phases=phases, paths=recorded
    )


def _bfs_levels(
    adj: list,
    retired: list[bool],
    level: list[int],
    source: int,
    sink: int,
) -> bool:
    """Assign BFS levels in the residual network; True if sink reached."""
    for i in range(len(level)):
        level[i] = _UNREACHED
    while len(level) < len(adj):
        level.append(_UNREACHED)
    if retired[source] or retired[sink]:
        return False
    level[source] = 0
    queue = [source]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        next_level = level[node] + 1
        for arc in adj[node]:
            other = arc.head
            if arc.cap > FLOW_EPSILON and level[other] == _UNREACHED and not retired[other]:
                level[other] = next_level
                if other == sink:
                    # Keep scanning current queue entries is unnecessary:
                    # levels beyond the sink's are never used by the DFS.
                    continue
                queue.append(other)
    return level[sink] != _UNREACHED


def _augment_once(
    adj: list,
    retired: list[bool],
    level: list[int],
    iters: list[int],
    source: int,
    sink: int,
    track_paths: bool,
) -> tuple[float, list[int] | None]:
    """Advance/retreat DFS: push one augmenting path in the level graph.

    Returns (pushed amount, path) — (0, None) when the level graph is
    exhausted.
    """
    # Stack of (node, arc position used to get here). The arc positions let
    # us both compute the bottleneck and apply the push on unwind.
    path_nodes = [source]
    path_arcs: list[tuple[int, int]] = []  # (tail, arc index in adj[tail])
    while True:
        node = path_nodes[-1]
        if node == sink:
            bottleneck = math.inf
            for tail, pos in path_arcs:
                residual = adj[tail][pos].cap
                if residual < bottleneck:
                    bottleneck = residual
            if not math.isfinite(bottleneck):
                # Every s-t path in a transformed network crosses a finite
                # capacity edge, so this indicates a malformed network.
                raise ArithmeticError("augmenting path with infinite bottleneck")
            for tail, pos in path_arcs:
                arc = adj[tail][pos]
                if not math.isinf(arc.cap):
                    arc.cap -= bottleneck
                adj[arc.head][arc.rev].cap += bottleneck
            recorded = list(path_nodes) if track_paths else None
            return bottleneck, recorded
        advanced = False
        arcs = adj[node]
        while iters[node] < len(arcs):
            arc = arcs[iters[node]]
            other = arc.head
            if (
                arc.cap > FLOW_EPSILON
                and not retired[other]
                and level[other] == level[node] + 1
            ):
                path_arcs.append((node, iters[node]))
                path_nodes.append(other)
                advanced = True
                break
            iters[node] += 1
        if advanced:
            continue
        # Dead end: remove the node from the level graph and retreat.
        level[node] = _UNREACHED
        if node == source:
            return 0.0, None
        path_nodes.pop()
        tail, _pos = path_arcs.pop()
        iters[tail] += 1
