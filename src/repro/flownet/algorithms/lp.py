"""Linear-programming formulation of Maxflow (scipy ``linprog``).

The paper cites [27] (Kosyfaki et al.) as solving temporal Maxflow with an
LP and reports that the LP "cannot handle temporal networks with more than
10K edges".  This module reproduces that baseline so the benchmark suite
can demonstrate the same scaling cliff against Dinic.

Formulation: one variable per edge, ``0 <= x_e <= c_e`` (infinite
capacities replaced by a finite surrogate exceeding the total finite
capacity); conservation equality at every node except source and sink;
objective: maximise net flow out of the source.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.exceptions import SolverError
from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FlowNetwork


def lp_maxflow(network: FlowNetwork, source: int, sink: int) -> MaxflowRun:
    """Solve Maxflow as a linear program.  Does not mutate the network.

    Raises:
        SolverError: if the LP solver fails to converge.
    """
    if source == sink:
        return MaxflowRun(value=0.0)
    edges: list[tuple[int, int]] = []  # (tail, head)
    upper: list[float] = []
    finite_total = 0.0
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        reverse_cap = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
        capacity = arc.cap if math.isinf(arc.cap) else arc.cap + reverse_cap
        edges.append((tail, arc.head))
        upper.append(capacity)
        if math.isfinite(capacity):
            finite_total += capacity
    if not edges:
        return MaxflowRun(value=0.0)
    surrogate = finite_total + 1.0
    upper = [u if math.isfinite(u) else surrogate for u in upper]

    num_edges = len(edges)
    # Objective: maximise sum(out of source) - sum(into source).
    cost = np.zeros(num_edges)
    for j, (tail, head) in enumerate(edges):
        if tail == source:
            cost[j] -= 1.0
        if head == source:
            cost[j] += 1.0

    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    node_row: dict[int, int] = {}
    for j, (tail, head) in enumerate(edges):
        for node, sign in ((tail, -1.0), (head, 1.0)):
            if node in (source, sink):
                continue
            row = node_row.setdefault(node, len(node_row))
            rows.append(row)
            cols.append(j)
            data.append(sign)
    if node_row:
        a_eq = csr_matrix(
            (data, (rows, cols)), shape=(len(node_row), num_edges)
        )
        b_eq = np.zeros(len(node_row))
    else:
        a_eq = None
        b_eq = None

    result = linprog(
        c=cost,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=list(zip([0.0] * num_edges, upper)),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP maxflow failed: {result.message}")
    return MaxflowRun(value=-float(result.fun), augmenting_paths=0, phases=0)
