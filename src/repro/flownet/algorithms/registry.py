"""Name-based registry of Maxflow solvers.

The delta-BFlow solutions are parameterised by a Maxflow solver ("other
augmenting path-based Maxflow algorithms can be also applied in our
solutions", Section 3.1).  The registry gives benches, tests and the engine
a single place to resolve solver names.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import SolverError
from repro.flownet.algorithms.base import MaxflowRun, MaxflowSolver
from repro.flownet.algorithms.capacity_scaling import capacity_scaling
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.algorithms.dinic_flat import dinic_flat
from repro.flownet.algorithms.dinic_flat_persistent import dinic_flat_persistent
from repro.flownet.algorithms.edmonds_karp import edmonds_karp
from repro.flownet.algorithms.ford_fulkerson import ford_fulkerson
from repro.flownet.algorithms.lp import lp_maxflow
from repro.flownet.algorithms.push_relabel import push_relabel
from repro.flownet.network import FlowNetwork

SOLVERS: dict[str, MaxflowSolver] = {
    "dinic": dinic,
    "dinic-flat": dinic_flat,
    "dinic-flat-persistent": dinic_flat_persistent,
    "edmonds-karp": edmonds_karp,
    "ford-fulkerson": ford_fulkerson,
    "capacity-scaling": capacity_scaling,
    "push-relabel": push_relabel,
    "lp": lp_maxflow,
}

#: Solvers that mutate the residual state in place and can be re-invoked to
#: find only the missing augmenting paths — a requirement of BFQ+/BFQ*.
RESUMABLE_SOLVERS: frozenset[str] = frozenset(
    {
        "dinic",
        "dinic-flat",
        "dinic-flat-persistent",
        "edmonds-karp",
        "ford-fulkerson",
        "capacity-scaling",
    }
)


def get_solver(name: str) -> MaxflowSolver:
    """Resolve a solver by name.

    Raises:
        SolverError: for unknown names (message lists the known ones).
    """
    try:
        return SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise SolverError(f"unknown maxflow solver {name!r}; known: {known}") from None


def solve_max_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    algorithm: str = "dinic",
) -> MaxflowRun:
    """Run the named solver on (network, source, sink)."""
    solver: Callable[[FlowNetwork, int, int], MaxflowRun] = get_solver(algorithm)
    return solver(network, source, sink)
