"""Name-based registry of Maxflow solvers and engine kernels.

The delta-BFlow solutions are parameterised by a Maxflow solver ("other
augmenting path-based Maxflow algorithms can be also applied in our
solutions", Section 3.1).  The registry gives benches, tests and the engine
a single place to resolve solver names.

It is also the single source of truth for the **engine kernels** — the
``kernel=`` values accepted by BFQ+/BFQ*, the CLI, the service and the
cluster (:data:`ENGINE_KERNELS`).  Every consumer validates through
:func:`validate_kernel`, so adding a kernel here is the *only* edit needed
for it to be accepted end to end.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import SolverError
from repro.flownet.algorithms.base import MaxflowRun, MaxflowSolver
from repro.flownet.algorithms.capacity_scaling import capacity_scaling
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.algorithms.dinic_flat import dinic_flat
from repro.flownet.algorithms.dinic_flat_persistent import dinic_flat_persistent
from repro.flownet.algorithms.edmonds_karp import edmonds_karp
from repro.flownet.algorithms.ford_fulkerson import ford_fulkerson
from repro.flownet.algorithms.lp import lp_maxflow
from repro.flownet.algorithms.push_relabel import push_relabel
from repro.flownet.network import FlowNetwork

SOLVERS: dict[str, MaxflowSolver] = {
    "dinic": dinic,
    "dinic-flat": dinic_flat,
    "dinic-flat-persistent": dinic_flat_persistent,
    "edmonds-karp": edmonds_karp,
    "ford-fulkerson": ford_fulkerson,
    "capacity-scaling": capacity_scaling,
    "push-relabel": push_relabel,
    "lp": lp_maxflow,
}

#: Solvers that mutate the residual state in place and can be re-invoked to
#: find only the missing augmenting paths — a requirement of BFQ+/BFQ*.
RESUMABLE_SOLVERS: frozenset[str] = frozenset(
    {
        "dinic",
        "dinic-flat",
        "dinic-flat-persistent",
        "edmonds-karp",
        "ford-fulkerson",
        "capacity-scaling",
    }
)


#: Engine kernels, in documentation order.  ``persistent`` is the flat
#: resumable arena Dinic, ``vectorized`` its numpy frontier-at-a-time
#: variant, ``push_relabel`` the flat FIFO/gap push-relabel specialised
#: for dense short-window arenas, ``adaptive`` the per-window selector
#: over the three, and ``object`` the original object-graph walker.
ENGINE_KERNELS: tuple[str, ...] = (
    "persistent",
    "vectorized",
    "push_relabel",
    "adaptive",
    "object",
)

#: The kernel an unqualified engine call runs.
DEFAULT_ENGINE_KERNEL = "persistent"

#: Kernels that run on a :class:`~repro.flownet.residual.ResidualArena`
#: (attached or detached) rather than the object graph.
ARENA_KERNELS: frozenset[str] = frozenset(
    {"persistent", "vectorized", "push_relabel", "adaptive"}
)


def validate_kernel(kernel: str | None) -> str:
    """Resolve ``kernel`` (``None`` means the default) against the registry.

    Raises:
        SolverError: for unknown names (message lists the known ones).
    """
    if kernel is None:
        return DEFAULT_ENGINE_KERNEL
    if kernel not in ENGINE_KERNELS:
        known = ", ".join(ENGINE_KERNELS)
        raise SolverError(f"unknown kernel {kernel!r}; known kernels: {known}")
    return kernel


def get_solver(name: str) -> MaxflowSolver:
    """Resolve a solver by name.

    Raises:
        SolverError: for unknown names (message lists the known ones).
    """
    try:
        return SOLVERS[name]
    except KeyError:
        known = ", ".join(sorted(SOLVERS))
        raise SolverError(f"unknown maxflow solver {name!r}; known: {known}") from None


def solve_max_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    algorithm: str = "dinic",
) -> MaxflowRun:
    """Run the named solver on (network, source, sink)."""
    solver: Callable[[FlowNetwork, int, int], MaxflowRun] = get_solver(algorithm)
    return solver(network, source, sink)
