"""Vectorized Dinic: numpy frontier-at-a-time BFS over the flat arena.

The persistent kernel's profile on wide candidate windows is dominated by
the phase BFS — a pure-python scan of every arc adjacent to the frontier,
one interpreter step per arc.  This kernel replaces that scan with numpy
whole-frontier gathers: the arena's topology is compiled once into CSR
tensors (:class:`ArenaTensors`, cached on ``arena.tensors`` and
invalidated by every structural change), and each BFS level expands as
four array ops — gather the frontier's arc rows, test residual-in
capacity and unvisited-ness in bulk, dedupe, assign.  Per-arc interpreter
cost drops to per-*level* cost.

The blocking flow itself stays the shared scalar DFS
(:func:`~repro.flownet.algorithms.dinic_flat_persistent.run_blocking_flow`)
— augmenting-path walks are sequential by nature and the persistent
kernel's retained-stack DFS is already near-optimal on CPython.  The
labelled levels are synced back into the arena's ``level`` list (with the
same ``stale_labels`` bookkeeping the persistent kernel uses), so the two
kernels interoperate freely on one arena: any mix of persistent /
vectorized / push-relabel runs sees consistent scratch state and
certificates.

Trade-off, measured honestly: the per-phase ``caps`` snapshot and the
per-structure tensor build are O(|E|) each, so tiny windows are *slower*
here than under the persistent kernel — this kernel wins when windows are
wide enough that the python BFS dominates (see ``kernel="adaptive"``,
which makes exactly that call per window).
"""

from __future__ import annotations

import math

import numpy as np

from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.algorithms.dinic_flat_persistent import run_blocking_flow
from repro.flownet.network import FLOW_EPSILON
from repro.flownet.residual import ARENA_RETIRED, ARENA_UNREACHED, ResidualArena


class ArenaTensors:
    """Structure-derived numpy views of one arena, cached until it grows.

    ``indptr``/``arc_of`` form the CSR over ``arena.slots``;
    ``neighbor[j]`` is the node on the other end of row entry ``j`` and
    ``in_slot[j]`` the slot of the arc *into* the row's owner from that
    neighbor (the partner slot — what a backward BFS must test).
    ``base_level`` is the retirement-folded blank level array each BFS
    starts from.  Capacities are deliberately not cached: the kernels
    mutate ``arena.caps`` between (and within) runs, so each phase
    snapshots them fresh.
    """

    __slots__ = ("indptr", "neighbor", "in_slot", "arc_of", "base_level")

    def __init__(self, arena: ResidualArena) -> None:
        slots = arena.slots
        n = len(slots)
        counts = np.fromiter(map(len, slots), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        arc_of = np.fromiter(
            (k for row in slots for k in row), dtype=np.int64, count=total
        )
        heads_np = np.fromiter(arena.heads, dtype=np.int64, count=len(arena.heads))
        rev_np = np.fromiter(arena.rev, dtype=np.int64, count=len(arena.rev))
        self.indptr = indptr
        self.arc_of = arc_of
        self.neighbor = heads_np[arc_of]
        self.in_slot = rev_np[arc_of]
        base = np.full(n, ARENA_UNREACHED, dtype=np.int64)
        level = arena.level
        retired = [i for i in range(n) if level[i] == ARENA_RETIRED]
        if retired:
            base[retired] = ARENA_RETIRED
        self.base_level = base


def _tensors_for(arena: ResidualArena) -> ArenaTensors:
    tensors = arena.tensors
    if tensors is None:
        tensors = ArenaTensors(arena)
        arena.tensors = tensors
    return tensors


def _bfs_levels(
    tensors: ArenaTensors,
    caps_np: np.ndarray,
    source: int,
    sink: int,
) -> tuple[np.ndarray, bool]:
    """Backward frontier-at-a-time BFS; returns (levels, source_found).

    Levels are residual distances to the sink (``-1`` unreached, ``-2``
    retired), computed whole-frontier: gather every arc row adjacent to
    the frontier, keep neighbors that are unvisited *and* have a positive
    residual arc into the frontier node, dedupe, label.  Stops at the
    first level that labels the source — like the scalar kernel, every
    interior node of a shortest augmenting path is labelled by then.
    """
    indptr = tensors.indptr
    neighbor = tensors.neighbor
    in_slot = tensors.in_slot
    levels = tensors.base_level.copy()
    levels[sink] = 0
    frontier = np.array([sink], dtype=np.int64)
    eps = FLOW_EPSILON
    depth = 0
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Concatenated per-node ranges via the repeat/cumsum gather trick.
        cum = np.cumsum(counts)
        row = np.arange(total, dtype=np.int64) + np.repeat(
            starts - (cum - counts), counts
        )
        nbr = neighbor[row]
        admissible = (levels[nbr] == ARENA_UNREACHED) & (
            caps_np[in_slot[row]] > eps
        )
        fresh = np.unique(nbr[admissible])
        if fresh.size == 0:
            break
        depth += 1
        levels[fresh] = depth
        if levels[source] >= 0:
            return levels, True
        frontier = fresh
    return levels, False


def arena_maxflow_vectorized(
    arena: ResidualArena,
    source: int,
    sink: int,
    *,
    value_bound: float | None = None,
) -> MaxflowRun:
    """Resumable Dinic with numpy BFS phases; drop-in for ``arena_maxflow``.

    Same contract as the persistent kernel: mutates the arena in place,
    maintains ``level``/``stale_labels``/the min-cut certificate in the
    shared convention, honours ``value_bound`` maximality early-outs, and
    writes touched arcs back to the object graph of attached arenas.
    """
    if source == sink:
        return MaxflowRun(value=0.0)

    level = arena.level
    if level[source] == ARENA_RETIRED or level[sink] == ARENA_RETIRED:
        return MaxflowRun(value=0.0)
    if arena.cut_closed and arena.cut_sink == sink and level[source] < 0:
        return MaxflowRun(value=0.0)
    eps = FLOW_EPSILON
    bounded = value_bound is not None
    if bounded and value_bound <= eps:
        return MaxflowRun(value=0.0)

    heads = arena.heads
    caps = arena.caps
    rev = arena.rev
    slots = arena.slots
    iters = arena.iters
    stale = arena.stale_labels
    tensors = _tensors_for(arena)

    total = 0.0
    n_paths = 0
    phases = 0
    touched: list[int] = []
    maximal_by_bound = False
    while True:
        # Snapshot the (kernel-mutated) capacities for this phase's BFS.
        caps_np = np.fromiter(caps, dtype=np.float64, count=len(caps))
        levels_np, source_found = _bfs_levels(tensors, caps_np, source, sink)

        # Sync the numpy labels into the shared scalar scratch arrays with
        # the persistent kernel's stale bookkeeping, so the blocking-flow
        # DFS (and any later kernel run on this arena) sees them.
        for i in stale:
            if level[i] >= 0:
                level[i] = ARENA_UNREACHED
        del stale[:]
        labelled = np.flatnonzero(levels_np >= 0)
        lab_list = labelled.tolist()
        for i, depth in zip(lab_list, levels_np[labelled].tolist()):
            level[i] = depth
            iters[i] = 0
        stale.extend(lab_list)

        if not source_found:
            break
        phases += 1
        remaining = (value_bound - total) if bounded else math.inf
        gained, phase_paths, maximal_by_bound = run_blocking_flow(
            heads, caps, rev, slots, level, iters, source, sink, touched,
            remaining,
        )
        total += gained
        n_paths += phase_paths
        if maximal_by_bound:
            break

    if maximal_by_bound:
        # Bound-certified termination: no fresh cut was computed, and this
        # run's pushes may have pierced whatever cut was recorded before.
        arena.cut_closed = False
    else:
        # The failed BFS labelled exactly the can-reach-sink set T.
        arena.cut_closed = True
        arena.cut_sink = sink

    arcs = arena.arcs
    if arcs is not None:
        for k in touched:
            arcs[k].cap = caps[k]
    return MaxflowRun(value=total, augmenting_paths=n_paths, phases=phases)
