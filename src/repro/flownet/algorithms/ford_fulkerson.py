"""Ford-Fulkerson with depth-first augmenting paths.

The historical first Maxflow algorithm [13].  Present for the Table-4
comparison; its O(|E| * |f|) behaviour on adversarial capacities is part of
what that comparison demonstrates.  A safety valve bounds the number of
augmentations so float capacities cannot loop effectively forever.
"""

from __future__ import annotations

import math

from repro.exceptions import SolverError
from repro.flownet.algorithms.base import MaxflowRun
from repro.flownet.network import FLOW_EPSILON, FlowNetwork

#: Upper bound on augmentations before we conclude something is wrong.
MAX_AUGMENTATIONS = 1_000_000


def ford_fulkerson(network: FlowNetwork, source: int, sink: int) -> MaxflowRun:
    """Augment along arbitrary (DFS-first) residual paths until none remain."""
    if source == sink:
        return MaxflowRun(value=0.0)
    network.detach_arena()  # writes Arc.cap directly; a stale mirror is worse than none
    adj = network._adj  # noqa: SLF001 - hot path
    retired = network._retired  # noqa: SLF001
    total = 0.0
    n_paths = 0
    while True:
        path = _dfs_path(adj, retired, source, sink)
        if path is None:
            break
        bottleneck = min(adj[tail][pos].cap for tail, pos in path)
        if not math.isfinite(bottleneck):
            raise ArithmeticError("augmenting path with infinite bottleneck")
        for tail, pos in path:
            arc = adj[tail][pos]
            if not math.isinf(arc.cap):
                arc.cap -= bottleneck
            adj[arc.head][arc.rev].cap += bottleneck
        total += bottleneck
        n_paths += 1
        if n_paths > MAX_AUGMENTATIONS:
            raise SolverError(
                "Ford-Fulkerson exceeded the augmentation budget; "
                "use Dinic for this network"
            )
    return MaxflowRun(value=total, augmenting_paths=n_paths, phases=n_paths)


def _dfs_path(
    adj: list, retired: list[bool], source: int, sink: int
) -> list[tuple[int, int]] | None:
    """Iterative DFS for any residual path; returns [(tail, arc pos)] or None."""
    if retired[source] or retired[sink]:
        return None
    seen = {source}
    stack: list[tuple[int, int]] = [(source, 0)]
    path: list[tuple[int, int]] = []
    while stack:
        node, pos = stack[-1]
        arcs = adj[node]
        if pos >= len(arcs):
            stack.pop()
            if path:
                path.pop()
            continue
        stack[-1] = (node, pos + 1)
        arc = arcs[pos]
        other = arc.head
        if arc.cap > FLOW_EPSILON and other not in seen and not retired[other]:
            path.append((node, pos))
            if other == sink:
                return path
            seen.add(other)
            stack.append((other, 0))
    return None
