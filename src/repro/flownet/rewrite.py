"""Antiparallel-edge rewrite (the paper's footnote 2).

Classical residual-network formalisms assume that a flow network never
contains both ``(u, v)`` and ``(v, u)``.  Footnote 2 describes the standard
fix: "we can revise the flow network N by removing (v, u) and then
creating a new node w and two edges (v, w), (w, u) such that
C(v, w) = C(w, u) = C(v, u)".

Our arc-based :class:`~repro.flownet.network.FlowNetwork` does **not**
need this rewrite (each edge owns its own arc pair), but the utility is
provided for interoperability — e.g. when exporting a network to a solver
or formalism that does assume antiparallel-freeness — and to validate that
the rewrite preserves Maxflow values, which the test-suite checks against
the unrewritten network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flownet.network import EdgeKind, FlowNetwork


@dataclass(frozen=True, slots=True)
class RewriteReport:
    """What :func:`split_antiparallel_edges` did."""

    rewritten: FlowNetwork
    split_count: int
    helper_nodes: tuple[object, ...]


def has_antiparallel_edges(network: FlowNetwork) -> bool:
    """Whether any pair of nodes is connected in both directions."""
    seen: set[tuple[int, int]] = set()
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        if (arc.head, tail) in seen:
            return True
        seen.add((tail, arc.head))
    return False


def split_antiparallel_edges(network: FlowNetwork) -> RewriteReport:
    """Return an equivalent network without antiparallel edge pairs.

    For every ordered pair ``(u, v)`` that also has a ``(v, u)`` edge, the
    ``(v, u)`` direction is re-routed through a fresh helper node ``w``:
    ``v -> w -> u`` with both legs carrying the original capacity.
    Parallel edges in the *same* direction are merged first (capacity
    summation), matching the classical single-edge-per-pair model.

    The input network must carry no flow (the rewrite is a modelling
    transformation, not a residual operation).

    Returns:
        A :class:`RewriteReport` with the new network (labels preserved;
        helper nodes labelled ``("__split__", u, v, k)``).
    """
    merged: dict[tuple[object, object], float] = {}
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        key = (network.label_of(tail), network.label_of(arc.head))
        routed = network.arcs_of(arc.head)[arc.rev].cap
        if routed > 1e-12:
            raise ValueError("split_antiparallel_edges requires a flow-free network")
        capacity = arc.cap
        merged[key] = merged.get(key, 0.0) + capacity

    rewritten = FlowNetwork()
    for index in network.active_indices():
        rewritten.add_node(network.label_of(index))

    helper_nodes: list[object] = []
    split_count = 0
    processed: set[tuple[object, object]] = set()
    for (u, v), capacity in sorted(merged.items(), key=lambda kv: str(kv[0])):
        if (u, v) in processed:
            continue
        reverse_capacity = merged.get((v, u))
        if reverse_capacity is None:
            rewritten.add_edge_labeled(u, v, capacity, kind=EdgeKind.PLAIN)
            processed.add((u, v))
            continue
        # Keep (u, v) direct; re-route (v, u) through a helper node.
        rewritten.add_edge_labeled(u, v, capacity, kind=EdgeKind.PLAIN)
        helper = ("__split__", str(v), str(u), split_count)
        rewritten.add_edge_labeled(v, helper, reverse_capacity, kind=EdgeKind.PLAIN)
        rewritten.add_edge_labeled(helper, u, reverse_capacity, kind=EdgeKind.PLAIN)
        helper_nodes.append(helper)
        split_count += 1
        processed.add((u, v))
        processed.add((v, u))
    return RewriteReport(
        rewritten=rewritten,
        split_count=split_count,
        helper_nodes=tuple(helper_nodes),
    )
