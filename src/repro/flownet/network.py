"""Arc-based flow network with residual semantics.

This is the workhorse data structure shared by every Maxflow solver and by
the incremental delta-BFlow algorithms.  Design points:

* **Paired arcs.**  Every edge is stored as a pair of arcs: the forward arc
  starts with residual capacity equal to the edge capacity, the reverse arc
  with zero.  Pushing ``x`` units moves ``x`` of residual capacity from an
  arc to its partner.  The flow currently on an edge is therefore the
  residual capacity of its reverse arc — no separate flow bookkeeping.
  Because each edge owns its own pair, parallel and antiparallel edges are
  handled natively (the paper's footnote-2 node-splitting rewrite is not
  needed).

* **Dynamic growth.**  Nodes and edges can be appended at any time; the
  incremental insertion case (Lemma 3) extends a live network while keeping
  the residual state of the flow found so far.

* **Node retirement.**  The deletion case (Lemma 4) removes a prefix of the
  transformed network.  Rather than physically deleting arcs, nodes are
  marked *retired*; all traversals skip them.  This is O(1) per node and
  keeps arc handles stable.

* **Snapshots.**  :meth:`clone` deep-copies the residual state so BFQ* can
  branch the network at the moment the zig-zag pattern (Figure 5(c))
  requires it.

* **Infinite capacities.**  Hold ("timestamp-inline") edges have capacity
  ``math.inf``.  Every augmenting path also crosses a finite capacity edge,
  so bottlenecks remain finite and the arithmetic stays exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Hashable, Iterator

from repro.exceptions import GraphError, UnknownNodeError

Label = Hashable

#: Numerical slack used when comparing float capacities.
FLOW_EPSILON = 1e-9


class EdgeKind(Enum):
    """Role of an edge inside a transformed flow network."""

    CAPACITY = "capacity"  # image of a temporal edge (finite capacity)
    HOLD = "hold"  # timestamp-inline chain edge (infinite capacity)
    VIRTUAL = "virtual"  # withdrawal plumbing for the deletion case
    PLAIN = "plain"  # ordinary edge of a classical flow network


class Arc:
    """Half of an edge: a directed residual arc.

    ``cap`` is the *remaining* (residual) capacity.  ``rev`` indexes the
    partner arc inside ``adj[head]``.  ``forward`` marks which of the pair
    is the original edge direction.
    """

    __slots__ = ("head", "cap", "rev", "forward", "kind", "meta")

    def __init__(
        self,
        head: int,
        cap: float,
        rev: int,
        forward: bool,
        kind: EdgeKind,
        meta: object = None,
    ) -> None:
        self.head = head
        self.cap = cap
        self.rev = rev
        self.forward = forward
        self.kind = kind
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        direction = "fwd" if self.forward else "rev"
        return f"Arc(head={self.head}, cap={self.cap}, {direction}, {self.kind.value})"


@dataclass(frozen=True, slots=True)
class EdgeRef:
    """Stable handle to an edge: the forward arc's position in the network."""

    tail: int
    index: int


class FlowNetwork:
    """A mutable flow network over hashable node labels.

    All solver-facing operations work on integer node indices for speed;
    label-based helpers are provided for construction and inspection.
    """

    def __init__(self) -> None:
        self._adj: list[list[Arc]] = []
        self._labels: list[Label] = []
        self._index_of: dict[Label, int] = {}
        self._retired: list[bool] = []
        self._num_edges = 0
        self._arena = None
        # Monotone mutation counter, bumped by the same hooks that journal
        # into an attached arena (structure and capacity changes alike).
        # Lets observers fingerprint a network state without diffing arcs.
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Monotone mutation counter; bumps on any structural/capacity change."""
        return self._epoch

    # ------------------------------------------------------------------
    # Residual arena (persistent CSR mirror)
    # ------------------------------------------------------------------
    @property
    def arena(self):
        """The attached :class:`~repro.flownet.residual.ResidualArena`."""
        return self._arena

    def attach_arena(self, arena) -> None:
        """Attach a flat residual mirror; mutation hooks keep it in sync.

        Structural growth is journaled lazily (``add_edge`` records the
        endpoints; the arena catches up at the next kernel entry), while
        capacity changes and retirements are applied eagerly.  The arena
        stays synchronised only while every capacity change goes through
        this class's API (:meth:`add_edge`, :meth:`push_on`,
        :meth:`set_capacity`, :meth:`disable_edge`, :meth:`clear_flow`) or
        through the persistent kernel.  Solvers that write ``Arc.cap``
        directly must call :meth:`detach_arena` first — the in-place
        object-graph solvers do so defensively.
        """
        self._arena = arena

    def detach_arena(self) -> None:
        """Drop the attached arena (it will be rebuilt on next kernel use)."""
        self._arena = None

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, label: Label) -> int:
        """Add a node (idempotent); returns its index."""
        existing = self._index_of.get(label)
        if existing is not None:
            return existing
        index = len(self._adj)
        self._adj.append([])
        self._labels.append(label)
        self._retired.append(False)
        self._index_of[label] = index
        self._epoch += 1
        # No arena hook: an attached arena discovers new nodes by length
        # during its next sync().
        return index

    def has_node(self, label: Label) -> bool:
        """Whether a node with this label exists."""
        return label in self._index_of

    def index_of(self, label: Label) -> int:
        """The node index for a label (UnknownNodeError when absent)."""
        try:
            return self._index_of[label]
        except KeyError:
            raise UnknownNodeError(label) from None

    def label_of(self, index: int) -> Label:
        """The label of a node index."""
        return self._labels[index]

    @property
    def num_nodes(self) -> int:
        """Total nodes ever added (including retired ones)."""
        return len(self._adj)

    @property
    def num_active_nodes(self) -> int:
        """Nodes not yet retired."""
        return sum(1 for retired in self._retired if not retired)

    @property
    def num_edges(self) -> int:
        """Total edges added (arc pairs)."""
        return self._num_edges

    def retire_node(self, index: int) -> None:
        """Mark a node as deleted; traversals will skip it."""
        self._retired[index] = True
        self._epoch += 1
        if self._arena is not None:
            self._arena.on_retire_node(index)

    def retire_label(self, label: Label) -> None:
        """Retire a node by label."""
        self.retire_node(self.index_of(label))

    def is_retired(self, index: int) -> bool:
        """Whether a node index has been retired."""
        return self._retired[index]

    def active_indices(self) -> Iterator[int]:
        """Iterate the indices of non-retired nodes."""
        for index, retired in enumerate(self._retired):
            if not retired:
                yield index

    def labels(self) -> Iterator[Label]:
        """All node labels, including retired ones."""
        return iter(self._labels)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(
        self,
        tail: int,
        head: int,
        capacity: float,
        *,
        kind: EdgeKind = EdgeKind.PLAIN,
        meta: object = None,
    ) -> EdgeRef:
        """Add a directed edge with the given capacity; returns its handle."""
        if capacity < 0:
            raise GraphError(f"negative capacity {capacity}")
        if not (0 <= tail < len(self._adj)) or not (0 <= head < len(self._adj)):
            raise GraphError(f"edge endpoints out of range: {tail} -> {head}")
        if tail == head:
            raise GraphError(f"self loop at node index {tail}")
        fwd_pos = len(self._adj[tail])
        rev_pos = len(self._adj[head])
        forward = Arc(head, capacity, rev_pos, True, kind, meta)
        reverse = Arc(tail, 0.0, fwd_pos, False, kind, meta)
        self._adj[tail].append(forward)
        self._adj[head].append(reverse)
        self._num_edges += 1
        self._epoch += 1
        arena = self._arena
        if arena is not None:
            # Journal only; the arena mirrors the batch at kernel entry.
            dirty = arena.dirty
            dirty.append(tail)
            dirty.append(head)
            if arena.cut_closed and capacity > 0:
                # Does the new arc pierce the recorded sink-side cut (head
                # inside T, tail outside)?  Indices beyond the level array
                # are nodes added after the certificate — outside T by
                # construction.
                level = arena.level
                n_level = len(level)
                if (
                    head < n_level
                    and level[head] >= 0
                    and not (tail < n_level and level[tail] >= 0)
                ):
                    arena.cut_closed = False
        return EdgeRef(tail, fwd_pos)

    def add_edge_labeled(
        self,
        tail: Label,
        head: Label,
        capacity: float,
        *,
        kind: EdgeKind = EdgeKind.PLAIN,
        meta: object = None,
    ) -> EdgeRef:
        """Label-based convenience wrapper around :meth:`add_edge`."""
        return self.add_edge(
            self.add_node(tail), self.add_node(head), capacity, kind=kind, meta=meta
        )

    def arcs_of(self, index: int) -> list[Arc]:
        """The (mutable) arc list of a node — solvers iterate this directly."""
        return self._adj[index]

    def forward_arc(self, ref: EdgeRef) -> Arc:
        """The forward arc an EdgeRef points at."""
        arc = self._adj[ref.tail][ref.index]
        if not arc.forward:
            raise GraphError("EdgeRef does not point at a forward arc")
        return arc

    def reverse_arc(self, ref: EdgeRef) -> Arc:
        """The paired reverse arc of an edge."""
        forward = self.forward_arc(ref)
        return self._adj[forward.head][forward.rev]

    # ------------------------------------------------------------------
    # Flow accounting
    # ------------------------------------------------------------------
    def flow_on(self, ref: EdgeRef) -> float:
        """Flow currently routed through an edge (= reverse residual cap)."""
        return self.reverse_arc(ref).cap

    def edge_capacity(self, ref: EdgeRef) -> float:
        """Original capacity of an edge (forward residual + flow)."""
        forward = self.forward_arc(ref)
        if math.isinf(forward.cap):
            return math.inf
        return forward.cap + self.reverse_arc(ref).cap

    def push_on(self, ref: EdgeRef, amount: float) -> None:
        """Manually push flow along an edge (used by the operators module)."""
        forward = self.forward_arc(ref)
        reverse = self.reverse_arc(ref)
        if amount < 0 and reverse.cap + amount < -FLOW_EPSILON:
            raise GraphError(f"cannot withdraw {-amount}: only {reverse.cap} routed")
        if amount > 0 and not math.isinf(forward.cap) and forward.cap - amount < -FLOW_EPSILON:
            raise GraphError(f"cannot push {amount}: only {forward.cap} residual")
        if not math.isinf(forward.cap):
            forward.cap -= amount
        reverse.cap += amount
        self._epoch += 1
        arena = self._arena
        if arena is not None:
            arena.on_edge_caps_changed(ref.tail, ref.index)
            if arena.cut_closed:
                # A push opens residual capacity in one direction: residual
                # head -> tail for amount > 0, tail -> head for amount < 0.
                # Invalidate the cut certificate if that arc *enters* the
                # recorded sink side T from outside.
                level = arena.level
                n_level = len(level)
                tail_in = ref.tail < n_level and level[ref.tail] >= 0
                head_in = forward.head < n_level and level[forward.head] >= 0
                if amount > 0:
                    if tail_in and not head_in:
                        arena.cut_closed = False
                elif head_in and not tail_in:
                    arena.cut_closed = False

    def set_capacity(self, ref: EdgeRef, capacity: float) -> None:
        """Reset an edge's capacity, preserving currently routed flow."""
        forward = self.forward_arc(ref)
        routed = self.reverse_arc(ref).cap
        if capacity + FLOW_EPSILON < routed:
            raise GraphError(
                f"new capacity {capacity} is below routed flow {routed}"
            )
        forward.cap = capacity - routed if not math.isinf(capacity) else math.inf
        self._epoch += 1
        arena = self._arena
        if arena is not None:
            arena.on_edge_caps_changed(ref.tail, ref.index)
            # A capacity raise can open a residual arc out of S; this call
            # is rare, so invalidate without checking endpoints.
            arena.cut_closed = False

    def disable_edge(self, ref: EdgeRef) -> None:
        """Zero both residual directions of an edge (capacity *and* flow).

        Used by timestamp injection (the spanning hold edge is replaced by
        its two halves) and by single-edge deletion in
        :class:`~repro.flownet.dynamic.DynamicMaxflow`.
        """
        self.forward_arc(ref).cap = 0.0
        self.reverse_arc(ref).cap = 0.0
        self._epoch += 1
        if self._arena is not None:
            self._arena.on_edge_caps_changed(ref.tail, ref.index)

    def iter_edges(self) -> Iterator[tuple[int, Arc]]:
        """Iterate (tail index, forward arc) for every edge."""
        for tail, arcs in enumerate(self._adj):
            for arc in arcs:
                if arc.forward:
                    yield (tail, arc)

    def out_flow(self, index: int, *, kinds: tuple[EdgeKind, ...] | None = None) -> float:
        """Total flow leaving node ``index`` on forward arcs (optionally filtered)."""
        total = 0.0
        for arc in self._adj[index]:
            if not arc.forward:
                continue
            if kinds is not None and arc.kind not in kinds:
                continue
            total += self._adj[arc.head][arc.rev].cap
        return total

    def in_flow(self, index: int, *, kinds: tuple[EdgeKind, ...] | None = None) -> float:
        """Total flow entering node ``index`` on forward arcs."""
        total = 0.0
        for arc in self._adj[index]:
            if arc.forward:
                continue
            if kinds is not None and arc.kind not in kinds:
                continue
            # ``arc`` is the reverse half: its cap *is* the routed flow.
            total += arc.cap
        return total

    def clear_flow(self) -> None:
        """Reset every edge to zero flow (restores full forward capacity)."""
        for tail, arcs in enumerate(self._adj):
            for arc in arcs:
                if arc.forward:
                    reverse = self._adj[arc.head][arc.rev]
                    if not math.isinf(arc.cap):
                        arc.cap += reverse.cap
                    reverse.cap = 0.0
        self._epoch += 1
        if self._arena is not None:
            self._arena.resync()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def clone(self) -> "FlowNetwork":
        """Deep copy of the full residual state (labels, arcs, retirements)."""
        other = FlowNetwork.__new__(FlowNetwork)
        other._arena = None  # arenas hold arc references; never shared
        other._epoch = self._epoch
        other._labels = list(self._labels)
        other._index_of = dict(self._index_of)
        other._retired = list(self._retired)
        other._num_edges = self._num_edges
        other._adj = [
            [Arc(a.head, a.cap, a.rev, a.forward, a.kind, a.meta) for a in arcs]
            for arcs in self._adj
        ]
        return other

    def compacted_clone(
        self,
    ) -> tuple["FlowNetwork", dict[tuple[int, int], EdgeRef]]:
        """Deep copy that drops retired nodes and their incident arcs.

        Returns the compacted network together with a handle map from
        ``(old tail index, old arc position)`` of every surviving *forward*
        arc to its new :class:`EdgeRef`, so callers can remap stored edge
        handles.  Dangling arcs (one retired endpoint) disappear; because
        retirement always removes a consistent prefix whose boundary flow
        has been withdrawn, dropping them never unbalances a surviving
        node.
        """
        other = FlowNetwork.__new__(FlowNetwork)
        other._arena = None
        other._epoch = self._epoch
        node_map: dict[int, int] = {}
        other._labels = []
        other._index_of = {}
        other._retired = []
        for old_index, retired in enumerate(self._retired):
            if retired:
                continue
            node_map[old_index] = len(other._labels)
            label = self._labels[old_index]
            other._index_of[label] = len(other._labels)
            other._labels.append(label)
            other._retired.append(False)

        arc_map: dict[tuple[int, int], tuple[int, int]] = {}
        other._adj = [[] for _ in range(len(other._labels))]
        for old_tail, arcs in enumerate(self._adj):
            new_tail = node_map.get(old_tail)
            if new_tail is None:
                continue
            for old_pos, arc in enumerate(arcs):
                new_head = node_map.get(arc.head)
                if new_head is None:
                    continue
                arc_map[(old_tail, old_pos)] = (new_tail, len(other._adj[new_tail]))
                other._adj[new_tail].append(
                    Arc(new_head, arc.cap, -1, arc.forward, arc.kind, arc.meta)
                )
        # Second pass: rewire reverse-arc indices through the mapping.
        edge_count = 0
        for old_tail, arcs in enumerate(self._adj):
            for old_pos, arc in enumerate(arcs):
                position = arc_map.get((old_tail, old_pos))
                if position is None:
                    continue
                new_tail, new_pos = position
                partner = arc_map[(arc.head, arc.rev)]
                other._adj[new_tail][new_pos].rev = partner[1]
                if arc.forward:
                    edge_count += 1
        other._num_edges = edge_count
        ref_map = {
            (old_tail, old_pos): EdgeRef(new_tail, new_pos)
            for (old_tail, old_pos), (new_tail, new_pos) in arc_map.items()
            if self._adj[old_tail][old_pos].forward
        }
        return other, ref_map

    # ------------------------------------------------------------------
    # Debug / validation helpers
    # ------------------------------------------------------------------
    def check_conservation(
        self,
        *,
        exempt: tuple[int, ...] = (),
        tolerance: float = 1e-6,
        node_filter: Callable[[int], bool] | None = None,
    ) -> None:
        """Assert flow conservation at every active, non-exempt node."""
        exempt_set = set(exempt)
        for index in self.active_indices():
            if index in exempt_set:
                continue
            if node_filter is not None and not node_filter(index):
                continue
            balance = self.in_flow(index) - self.out_flow(index)
            if abs(balance) > tolerance:
                raise GraphError(
                    f"conservation violated at {self._labels[index]!r}: "
                    f"balance {balance}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowNetwork(nodes={self.num_nodes}, active={self.num_active_nodes}, "
            f"edges={self.num_edges})"
        )
