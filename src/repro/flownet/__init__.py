"""Classical flow-network substrate: residual graphs and Maxflow solvers."""

from repro.flownet.algorithms import (
    capacity_scaling,
    RESUMABLE_SOLVERS,
    SOLVERS,
    MaxflowRun,
    dinic,
    dinic_flat,
    dinic_flat_persistent,
    edmonds_karp,
    ford_fulkerson,
    get_solver,
    lp_maxflow,
    push_relabel,
    solve_max_flow,
)
from repro.flownet.dynamic import DynamicMaxflow
from repro.flownet.mincut import MinCut, certify_maxflow, min_cut
from repro.flownet.rewrite import (
    RewriteReport,
    has_antiparallel_edges,
    split_antiparallel_edges,
)
from repro.flownet.network import Arc, EdgeKind, EdgeRef, FlowNetwork
from repro.flownet.residual import (
    ResidualArena,
    decompose_into_paths,
    extract_flow,
    flow_value_at,
    validate_classical_flow,
)

__all__ = [
    "Arc",
    "EdgeKind",
    "EdgeRef",
    "FlowNetwork",
    "ResidualArena",
    "MaxflowRun",
    "MinCut",
    "min_cut",
    "certify_maxflow",
    "dinic",
    "dinic_flat",
    "dinic_flat_persistent",
    "capacity_scaling",
    "DynamicMaxflow",
    "RewriteReport",
    "has_antiparallel_edges",
    "split_antiparallel_edges",
    "edmonds_karp",
    "ford_fulkerson",
    "push_relabel",
    "lp_maxflow",
    "SOLVERS",
    "RESUMABLE_SOLVERS",
    "get_solver",
    "solve_max_flow",
    "extract_flow",
    "flow_value_at",
    "validate_classical_flow",
    "decompose_into_paths",
]
