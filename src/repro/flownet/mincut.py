"""Minimum-cut extraction.

After a Maxflow has been computed, the source side of a minimum cut is the
set of nodes reachable in the residual network.  The max-flow/min-cut
theorem makes this the library's cheapest independent certificate of
optimality; the property-based tests compare cut capacities against solver
values on random networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.flownet.network import FLOW_EPSILON, FlowNetwork


@dataclass(frozen=True, slots=True)
class MinCut:
    """A minimum s-t cut.

    Attributes:
        source_side: node indices reachable from the source in the residual
            network (always contains the source).
        capacity: total capacity of the forward edges crossing the cut.
        edges: the (tail, head) index pairs of crossing forward edges.
    """

    source_side: frozenset[int]
    capacity: float
    edges: tuple[tuple[int, int], ...]


def min_cut(network: FlowNetwork, source: int, sink: int) -> MinCut:
    """Extract a minimum cut from the current residual state.

    Must be called after a Maxflow has been computed (otherwise the
    "cut" found is not minimal and may not even separate s from t).
    """
    reachable = _residual_reachable(network, source)
    crossing: list[tuple[int, int]] = []
    capacity = 0.0
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        if tail in reachable and arc.head not in reachable:
            crossing.append((tail, arc.head))
            routed = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
            edge_capacity = arc.cap + routed if math.isfinite(arc.cap) else math.inf
            capacity += edge_capacity
    return MinCut(
        source_side=frozenset(reachable),
        capacity=capacity,
        edges=tuple(crossing),
    )


def certify_maxflow(
    network: FlowNetwork,
    source: int,
    sink: int,
    value: float,
    *,
    eps: float = 1e-7,
) -> list[str]:
    """Max-flow/min-cut optimality witness for a computed flow.

    Must be called on the residual state left behind by a Maxflow run.
    Checks that the residual cut actually separates ``source`` from
    ``sink`` and that its capacity equals ``value`` (within ``eps``,
    relative) — together these certify that ``value`` is *maximal*, not
    just feasible.

    Returns:
        A list of human-readable problems; empty when the certificate holds.
    """
    issues: list[str] = []
    cut = min_cut(network, source, sink)
    if source not in cut.source_side:
        issues.append("min-cut witness: source missing from its own side")
    if sink in cut.source_side:
        issues.append(
            "min-cut witness: sink still residually reachable from source "
            "(the flow is not maximal)"
        )
    scale = max(1.0, abs(value), abs(cut.capacity))
    if not math.isfinite(cut.capacity) or abs(cut.capacity - value) > eps * scale:
        issues.append(
            f"min-cut witness: cut capacity {cut.capacity!r} != flow value "
            f"{value!r}"
        )
    return issues


def _residual_reachable(network: FlowNetwork, source: int) -> set[int]:
    adj = network._adj  # noqa: SLF001
    retired = network._retired  # noqa: SLF001
    if retired[source]:
        return set()
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for arc in adj[node]:
            other = arc.head
            if arc.cap > FLOW_EPSILON and other not in seen and not retired[other]:
                seen.add(other)
                stack.append(other)
    return seen
