"""Minimum-cut extraction.

After a Maxflow has been computed, the source side of a minimum cut is the
set of nodes reachable in the residual network.  The max-flow/min-cut
theorem makes this the library's cheapest independent certificate of
optimality; the property-based tests compare cut capacities against solver
values on random networks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.flownet.network import FLOW_EPSILON, FlowNetwork


@dataclass(frozen=True, slots=True)
class MinCut:
    """A minimum s-t cut.

    Attributes:
        source_side: node indices reachable from the source in the residual
            network (always contains the source).
        capacity: total capacity of the forward edges crossing the cut.
        edges: the (tail, head) index pairs of crossing forward edges.
    """

    source_side: frozenset[int]
    capacity: float
    edges: tuple[tuple[int, int], ...]


def min_cut(network: FlowNetwork, source: int, sink: int) -> MinCut:
    """Extract a minimum cut from the current residual state.

    Must be called after a Maxflow has been computed (otherwise the
    "cut" found is not minimal and may not even separate s from t).
    """
    reachable = _residual_reachable(network, source)
    crossing: list[tuple[int, int]] = []
    capacity = 0.0
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        if tail in reachable and arc.head not in reachable:
            crossing.append((tail, arc.head))
            routed = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
            edge_capacity = arc.cap + routed if math.isfinite(arc.cap) else math.inf
            capacity += edge_capacity
    return MinCut(
        source_side=frozenset(reachable),
        capacity=capacity,
        edges=tuple(crossing),
    )


def _residual_reachable(network: FlowNetwork, source: int) -> set[int]:
    adj = network._adj  # noqa: SLF001
    retired = network._retired  # noqa: SLF001
    if retired[source]:
        return set()
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for arc in adj[node]:
            other = arc.head
            if arc.cap > FLOW_EPSILON and other not in seen and not retired[other]:
                seen.add(other)
                stack.append(other)
    return seen
