"""Flow extraction, validation, and the persistent CSR residual arena.

The solvers leave the flow implicitly encoded in the residual state.  These
helpers decode it back into explicit per-edge assignments, verify the flow
axioms, and decompose a flow into paths — all of which the test-suite uses
to check Lemma 1 style equivalences.

This module also hosts :class:`ResidualArena`, the flat-array mirror of a
:class:`~repro.flownet.network.FlowNetwork` that the persistent Dinic
kernel (:func:`~repro.flownet.algorithms.dinic_flat_persistent.
dinic_flat_persistent`) operates on.  Unlike the per-run flatten of
``dinic_flat``, an arena is built once, *attached* to its network, and then
kept in sync incrementally.  Structural growth is deliberately *lazy*:
``add_edge`` merely journals the new edge's endpoints into :attr:`dirty`
(two list appends — the insertion case adds tens of thousands of edges
between kernel runs, so per-edge Python-level mirroring would dominate),
and :meth:`sync` replays the journal in one tight loop at kernel entry.
Capacity changes on already-mirrored edges (``push_on`` /
``set_capacity`` / ``disable_edge``) and retirements are applied eagerly,
since they are rare.  The kernel mutates the arena's ``caps`` array
directly and writes back only the arcs it actually touched, so the object
graph stays authoritative and the two views are byte-equivalent at every
kernel boundary.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.exceptions import FlowValidationError
from repro.flownet.network import FLOW_EPSILON, Arc, EdgeKind, FlowNetwork

#: Tolerance for conservation checks (scaled by magnitude internally).
_TOLERANCE = 1e-6

#: Level-array sentinels shared with the persistent kernel.  Retirement is
#: folded into the level labels so the kernel's hot loops need no separate
#: ``retired[]`` lookups: a retired node can never look "unvisited".
ARENA_UNREACHED = -1
ARENA_RETIRED = -2


class ResidualArena:
    """Persistent flat mirror of a :class:`FlowNetwork`'s residual state.

    Layout: every arc (both halves of every edge) occupies one *slot* of
    the parallel arrays ``heads`` / ``caps`` / ``rev`` (``rev[k]`` is the
    partner arc's slot), and ``arcs[k]`` keeps the slot's :class:`Arc`
    object so touched capacities can be written back in O(1).
    ``slots[i]`` lists node *i*'s arc slots in the same order as
    ``network.arcs_of(i)``.  A list-of-lists costs more to build than a
    CSR offset array, but the hot loops iterate each row thousands of
    times per build, and CPython iterates a materialised int list with no
    per-step allocation — measurably faster than ``range``-based CSR
    scans, which allocate an int per arc visited.

    ``level`` and ``iters`` are the kernel's scratch state, kept here so a
    resumed run allocates nothing: ``level`` doubles as the retirement mask
    (:data:`ARENA_RETIRED`), and ``stale_labels`` remembers which entries
    the previous BFS dirtied so clearing costs O(labelled), not O(n).

    Construction costs one O(|V| + |E|) sweep; afterwards edges appended to
    the network accumulate in the :attr:`dirty` journal (interleaved
    ``tail, head`` pairs, in insertion order) and :meth:`sync` mirrors them
    in one batch at the next kernel entry.  New nodes need no journal at
    all — ``sync`` discovers them by length.

    **Min-cut certificate.**  Every completed kernel run ends with a
    *backward* BFS from the sink that fails to reach the source, leaving
    T = ``{i : level[i] >= 0}`` as the residual can-reach-sink side: no
    positive residual arc enters T from outside.  The certificate
    (:attr:`cut_closed` / :attr:`cut_sink`) stays valid until a mutation
    *pierces* the cut — a new positive-capacity edge from outside T into
    it, or a manual push that opens such a residual arc; the
    ``FlowNetwork`` hooks check exactly this.  Nodes appended later are
    outside T by construction, and retiring a T-member only shrinks the
    set the hooks consider "inside"; a retired node cannot lie on an
    augmenting path, so arcs into it need no monitoring.  While the
    certificate holds, a kernel re-run towards ``cut_sink`` from any
    source outside T is a no-op and returns without touching the arrays —
    this is what makes resumed runs on unpierced states O(1) instead of
    O(|V| + |E|).
    """

    __slots__ = (
        "heads",
        "caps",
        "rev",
        "arcs",
        "slots",
        "level",
        "iters",
        "stale_labels",
        "dirty",
        "cut_closed",
        "cut_sink",
        "tensors",
    )

    def __init__(self, network: FlowNetwork) -> None:
        adj = network._adj  # noqa: SLF001 - mirror construction
        retired = network._retired  # noqa: SLF001
        n = len(adj)
        # The build is on the per-state critical path (BFQ* clones drop the
        # arena, forcing a rebuild), so it is written as comprehensions —
        # several times faster than per-arc append loops on CPython.
        offsets = [0] * (n + 1)
        running = 0
        for i in range(n):
            running += len(adj[i])
            offsets[i + 1] = running
        self.slots = [list(range(offsets[i], offsets[i + 1])) for i in range(n)]
        self.heads: list[int] = [arc.head for row in adj for arc in row]
        self.caps: list[float] = [arc.cap for row in adj for arc in row]
        self.arcs: list[Arc] = [arc for row in adj for arc in row]
        self.rev: list[int] = [
            offsets[arc.head] + arc.rev for row in adj for arc in row
        ]
        self.level = [
            ARENA_RETIRED if flag else ARENA_UNREACHED for flag in retired
        ]
        self.iters = [0] * n
        self.stale_labels: list[int] = []
        #: Journal of edges appended since the last :meth:`sync`:
        #: interleaved ``tail, head`` index pairs in insertion order.
        self.dirty: list[int] = []
        # Min-cut certificate (see the class docstring): when the kernel's
        # final backward BFS fails, the labelled set T = {i : level[i] >= 0}
        # is the residual can-reach-sink side — no positive residual arc
        # enters it from outside.  While it stays closed (the mutation
        # hooks watch for piercings), a re-run towards ``cut_sink`` can
        # skip the BFS outright.
        self.cut_closed = False
        self.cut_sink = -1
        #: Structure-derived numpy views cached by the vectorized kernel
        #: (:mod:`repro.flownet.algorithms.dinic_vectorized`).  ``None``
        #: until that kernel first runs; every structural change (growth,
        #: retirement) resets it to ``None`` so the cache can never serve
        #: stale topology.  Capacities are *not* cached here — the kernel
        #: snapshots ``caps`` per phase.
        self.tensors = None

    @classmethod
    def detached(
        cls,
        heads: list[int],
        caps: list[float],
        rev: list[int],
        slots: list[list[int]],
    ) -> "ResidualArena":
        """An arena over caller-built flat arrays, owned by no network.

        This is the transform compiler's entry point
        (:meth:`repro.core.skeleton.WindowSkeleton.materialize`): the
        candidate window is assembled straight into ``heads`` / ``caps`` /
        ``rev`` / ``slots`` and the kernel runs on it without any
        :class:`FlowNetwork` behind it.  ``arcs`` is ``None`` — there are
        no ``Arc`` objects to write back to — and the kernel skips its
        write-back accordingly.  Mutation hooks (:meth:`sync` and friends)
        must not be used on a detached arena.
        """
        arena = cls.__new__(cls)
        n = len(slots)
        arena.heads = heads
        arena.caps = caps
        arena.rev = rev
        arena.arcs = None  # type: ignore[assignment]
        arena.slots = slots
        arena.level = [ARENA_UNREACHED] * n
        arena.iters = [0] * n
        arena.stale_labels = []
        arena.dirty = []
        arena.cut_closed = False
        arena.cut_sink = -1
        arena.tensors = None
        return arena

    # ------------------------------------------------------------------
    # Batch catch-up (invoked by the kernel at entry)
    # ------------------------------------------------------------------
    def sync(self, network: FlowNetwork) -> None:
        """Mirror all nodes and edges appended since the last sync.

        Correctness of the journal replay relies on append order: within
        one ``add_edge`` the forward arc lands in ``adj[tail]`` before the
        reverse arc lands in ``adj[head]``, and the journal preserves the
        global insertion order, so for each ``(tail, head)`` pair the next
        unmirrored arc of ``tail`` is the forward half and the next
        unmirrored arc of ``head`` is the reverse half.
        """
        adj = network._adj  # noqa: SLF001 - mirror maintenance
        retired = network._retired  # noqa: SLF001
        slots = self.slots
        level = self.level
        iters = self.iters
        if len(adj) > len(slots):
            self.tensors = None  # new nodes: cached topology is stale
        for i in range(len(slots), len(adj)):
            slots.append([])
            level.append(ARENA_RETIRED if retired[i] else ARENA_UNREACHED)
            iters.append(0)
        dirty = self.dirty
        if not dirty:
            return
        self.tensors = None  # new arcs: cached topology is stale
        heads = self.heads
        caps = self.caps
        arcs = self.arcs
        rev = self.rev
        for position in range(0, len(dirty), 2):
            tail = dirty[position]
            head = dirty[position + 1]
            tail_row = slots[tail]
            head_row = slots[head]
            forward = adj[tail][len(tail_row)]
            reverse = adj[head][len(head_row)]
            forward_slot = len(heads)
            heads.append(forward.head)
            caps.append(forward.cap)
            arcs.append(forward)
            rev.append(forward_slot + 1)
            heads.append(reverse.head)
            caps.append(reverse.cap)
            arcs.append(reverse)
            rev.append(forward_slot)
            tail_row.append(forward_slot)
            head_row.append(forward_slot + 1)
        del dirty[:]

    # ------------------------------------------------------------------
    # Eager hooks (invoked by the owning FlowNetwork; rare events)
    # ------------------------------------------------------------------
    def on_retire_node(self, index: int) -> None:
        """A node was retired; fold it into the level mask permanently."""
        if index < len(self.level):
            self.level[index] = ARENA_RETIRED
            self.tensors = None  # the cached retirement mask is stale
        # else: not mirrored yet — sync() reads the retirement flag.

    def on_edge_caps_changed(self, tail: int, position: int) -> None:
        """Both halves of edge ``(tail, position)`` may have new capacities."""
        if tail >= len(self.slots):
            return  # unmirrored node — sync() reads the caps fresh
        slot_row = self.slots[tail]
        if position >= len(slot_row):
            return  # unmirrored edge — still in the dirty journal
        forward_slot = slot_row[position]
        self.caps[forward_slot] = self.arcs[forward_slot].cap
        reverse_slot = self.rev[forward_slot]
        self.caps[reverse_slot] = self.arcs[reverse_slot].cap

    def resync(self) -> None:
        """Recopy every mirrored capacity from the arc objects."""
        self.cut_closed = False  # bulk capacity changes void the certificate
        caps = self.caps
        for k, arc in enumerate(self.arcs):
            caps[k] = arc.cap

    # ------------------------------------------------------------------
    # Introspection (tests / debugging)
    # ------------------------------------------------------------------
    def mirrors(self, network: FlowNetwork) -> bool:
        """Whether the arrays are byte-equivalent to the object graph.

        Catches up the lazy journal first, so this asserts the invariant
        the kernel sees at entry (and leaves behind at exit).
        """
        self.sync(network)
        adj = network._adj  # noqa: SLF001
        retired = network._retired  # noqa: SLF001
        if len(self.slots) != len(adj):
            return False
        for i, arcs in enumerate(adj):
            slot_row = self.slots[i]
            if len(slot_row) != len(arcs):
                return False
            if retired[i] != (self.level[i] == ARENA_RETIRED):
                return False
            for j, arc in enumerate(arcs):
                k = slot_row[j]
                if self.heads[k] != arc.head or self.arcs[k] is not arc:
                    return False
                cap = self.caps[k]
                if cap != arc.cap and not (math.isnan(cap) and math.isnan(arc.cap)):
                    return False
                if self.rev[k] != self.slots[arc.head][arc.rev]:
                    return False
        return True


def extract_flow(
    network: FlowNetwork, *, kinds: tuple[EdgeKind, ...] | None = None
) -> dict[tuple[int, int], float]:
    """Read the routed flow off every (active) forward edge.

    Returns a dict mapping (tail index, head index) to total flow; parallel
    edges are merged.  Retired endpoints are skipped.
    """
    flows: dict[tuple[int, int], float] = defaultdict(float)
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        if kinds is not None and arc.kind not in kinds:
            continue
        routed = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
        if routed > FLOW_EPSILON:
            flows[(tail, arc.head)] += routed
    return dict(flows)


def flow_value_at(network: FlowNetwork, source: int) -> float:
    """Net flow leaving ``source`` (out minus in on forward edges)."""
    return network.out_flow(source) - network.in_flow(source)


def validate_classical_flow(
    network: FlowNetwork, source: int, sink: int
) -> float:
    """Verify capacity + conservation; returns the flow value.

    Raises:
        FlowValidationError: on any violated axiom.
    """
    balance: dict[int, float] = defaultdict(float)
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        routed = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
        if routed < -FLOW_EPSILON:
            raise FlowValidationError(
                f"negative flow {routed} on edge "
                f"{network.label_of(tail)!r} -> {network.label_of(arc.head)!r}"
            )
        if math.isfinite(arc.cap) and arc.cap < -FLOW_EPSILON:
            raise FlowValidationError(
                f"negative residual {arc.cap} on edge "
                f"{network.label_of(tail)!r} -> {network.label_of(arc.head)!r}"
            )
        balance[tail] -= routed
        balance[arc.head] += routed
    for node, net in balance.items():
        if node in (source, sink):
            continue
        if abs(net) > _TOLERANCE * max(1.0, abs(net)) + _TOLERANCE:
            raise FlowValidationError(
                f"conservation violated at {network.label_of(node)!r}: {net}"
            )
    out_value = -balance.get(source, 0.0)
    in_value = balance.get(sink, 0.0)
    if abs(out_value - in_value) > _TOLERANCE * max(1.0, out_value, in_value):
        raise FlowValidationError(
            f"source emits {out_value} but sink absorbs {in_value}"
        )
    return out_value


def decompose_into_paths(
    network: FlowNetwork, source: int, sink: int
) -> list[tuple[list[int], float]]:
    """Decompose the routed flow into (path, amount) pairs.

    Standard flow decomposition by repeatedly tracing a positive-flow path
    from source to sink and subtracting its bottleneck.  Cycles (possible in
    principle after withdrawals) are cancelled silently.  The input network
    is not modified; decomposition works on a copy of the flow.
    """
    flows = defaultdict(float)
    adjacency: dict[int, list[int]] = defaultdict(list)
    for (tail, head), amount in extract_flow(network).items():
        flows[(tail, head)] = amount
        adjacency[tail].append(head)

    paths: list[tuple[list[int], float]] = []
    guard = 0
    while True:
        guard += 1
        if guard > 10_000_000:  # pragma: no cover - safety valve
            raise FlowValidationError("flow decomposition did not terminate")
        path = _trace_path(flows, adjacency, source, sink)
        if path is None:
            break
        bottleneck = min(
            flows[(path[i], path[i + 1])] for i in range(len(path) - 1)
        )
        for i in range(len(path) - 1):
            key = (path[i], path[i + 1])
            flows[key] -= bottleneck
            if flows[key] <= FLOW_EPSILON:
                flows[key] = 0.0
        if path[0] == source and path[-1] == sink:
            paths.append((path, bottleneck))
        # else: a cycle got cancelled; nothing to record.
    return paths


def _trace_path(
    flows: dict[tuple[int, int], float],
    adjacency: dict[int, list[int]],
    source: int,
    sink: int,
) -> list[int] | None:
    """Follow positive-flow edges from source; detect cycles on the way."""
    path = [source]
    position: dict[int, int] = {source: 0}
    node = source
    while node != sink:
        next_node = None
        for head in adjacency.get(node, []):
            if flows.get((node, head), 0.0) > FLOW_EPSILON:
                next_node = head
                break
        if next_node is None:
            return None
        if next_node in position:
            # Found a cycle: return just the cycle for cancellation.
            start = position[next_node]
            return path[start:] + [next_node]
        path.append(next_node)
        position[next_node] = len(path) - 1
        node = next_node
    return path
