"""Flow extraction and validation on classical flow networks.

The solvers leave the flow implicitly encoded in the residual state.  These
helpers decode it back into explicit per-edge assignments, verify the flow
axioms, and decompose a flow into paths — all of which the test-suite uses
to check Lemma 1 style equivalences.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.exceptions import FlowValidationError
from repro.flownet.network import FLOW_EPSILON, EdgeKind, FlowNetwork

#: Tolerance for conservation checks (scaled by magnitude internally).
_TOLERANCE = 1e-6


def extract_flow(
    network: FlowNetwork, *, kinds: tuple[EdgeKind, ...] | None = None
) -> dict[tuple[int, int], float]:
    """Read the routed flow off every (active) forward edge.

    Returns a dict mapping (tail index, head index) to total flow; parallel
    edges are merged.  Retired endpoints are skipped.
    """
    flows: dict[tuple[int, int], float] = defaultdict(float)
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        if kinds is not None and arc.kind not in kinds:
            continue
        routed = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
        if routed > FLOW_EPSILON:
            flows[(tail, arc.head)] += routed
    return dict(flows)


def flow_value_at(network: FlowNetwork, source: int) -> float:
    """Net flow leaving ``source`` (out minus in on forward edges)."""
    return network.out_flow(source) - network.in_flow(source)


def validate_classical_flow(
    network: FlowNetwork, source: int, sink: int
) -> float:
    """Verify capacity + conservation; returns the flow value.

    Raises:
        FlowValidationError: on any violated axiom.
    """
    balance: dict[int, float] = defaultdict(float)
    for tail, arc in network.iter_edges():
        if network.is_retired(tail) or network.is_retired(arc.head):
            continue
        routed = network._adj[arc.head][arc.rev].cap  # noqa: SLF001
        if routed < -FLOW_EPSILON:
            raise FlowValidationError(
                f"negative flow {routed} on edge "
                f"{network.label_of(tail)!r} -> {network.label_of(arc.head)!r}"
            )
        if math.isfinite(arc.cap) and arc.cap < -FLOW_EPSILON:
            raise FlowValidationError(
                f"negative residual {arc.cap} on edge "
                f"{network.label_of(tail)!r} -> {network.label_of(arc.head)!r}"
            )
        balance[tail] -= routed
        balance[arc.head] += routed
    for node, net in balance.items():
        if node in (source, sink):
            continue
        if abs(net) > _TOLERANCE * max(1.0, abs(net)) + _TOLERANCE:
            raise FlowValidationError(
                f"conservation violated at {network.label_of(node)!r}: {net}"
            )
    out_value = -balance.get(source, 0.0)
    in_value = balance.get(sink, 0.0)
    if abs(out_value - in_value) > _TOLERANCE * max(1.0, out_value, in_value):
        raise FlowValidationError(
            f"source emits {out_value} but sink absorbs {in_value}"
        )
    return out_value


def decompose_into_paths(
    network: FlowNetwork, source: int, sink: int
) -> list[tuple[list[int], float]]:
    """Decompose the routed flow into (path, amount) pairs.

    Standard flow decomposition by repeatedly tracing a positive-flow path
    from source to sink and subtracting its bottleneck.  Cycles (possible in
    principle after withdrawals) are cancelled silently.  The input network
    is not modified; decomposition works on a copy of the flow.
    """
    flows = defaultdict(float)
    adjacency: dict[int, list[int]] = defaultdict(list)
    for (tail, head), amount in extract_flow(network).items():
        flows[(tail, head)] = amount
        adjacency[tail].append(head)

    paths: list[tuple[list[int], float]] = []
    guard = 0
    while True:
        guard += 1
        if guard > 10_000_000:  # pragma: no cover - safety valve
            raise FlowValidationError("flow decomposition did not terminate")
        path = _trace_path(flows, adjacency, source, sink)
        if path is None:
            break
        bottleneck = min(
            flows[(path[i], path[i + 1])] for i in range(len(path) - 1)
        )
        for i in range(len(path) - 1):
            key = (path[i], path[i + 1])
            flows[key] -= bottleneck
            if flows[key] <= FLOW_EPSILON:
                flows[key] = 0.0
        if path[0] == source and path[-1] == sink:
            paths.append((path, bottleneck))
        # else: a cycle got cancelled; nothing to record.
    return paths


def _trace_path(
    flows: dict[tuple[int, int], float],
    adjacency: dict[int, list[int]],
    source: int,
    sink: int,
) -> list[int] | None:
    """Follow positive-flow edges from source; detect cycles on the way."""
    path = [source]
    position: dict[int, int] = {source: 0}
    node = source
    while node != sink:
        next_node = None
        for head in adjacency.get(node, []):
            if flows.get((node, head), 0.0) > FLOW_EPSILON:
                next_node = head
                break
        if next_node is None:
            return None
        if next_node in position:
            # Found a cycle: return just the cycle for cancellation.
            start = position[next_node]
            return path[start:] + [next_node]
        path.append(next_node)
        position[next_node] = len(path) - 1
        node = next_node
    return path
