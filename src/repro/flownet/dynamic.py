"""Single-edge incremental Maxflow on classical networks ([18]/[28]-style).

The related-work section discusses incremental Maxflow for *dynamic flow
networks* — Kumar & Gupta [28] (push-relabel based) and Greco et al. [18]
(augmenting-path based) maintain a Maxflow under insertion or deletion of a
single edge.  The paper points out these "cannot be adopted directly" for
temporal flows (the time constraint changes whole window structures, not
single edges); this module implements the augmenting-path variant so the
claim can be examined empirically and so the substrate is complete.

:class:`DynamicMaxflow` maintains a Maxflow from a fixed source to a fixed
sink under:

* :meth:`insert_edge` — add an edge, then augment from the current
  residual state (only the new augmenting paths are searched: Lemma-3-like
  reuse);
* :meth:`delete_edge` — remove an edge.  Any flow it carried is first
  *withdrawn*: the flow is cancelled along a source→tail residual-flow
  path and a head→sink one (found by walking backwards along routed flow),
  then the network re-augments.  This mirrors [18]'s
  cancel-and-reaugment strategy.
"""

from __future__ import annotations

import math

from repro.exceptions import GraphError
from repro.flownet.algorithms.dinic import dinic
from repro.flownet.network import FLOW_EPSILON, EdgeRef, FlowNetwork


class DynamicMaxflow:
    """Maintains a Maxflow under single-edge insertions and deletions."""

    def __init__(self, network: FlowNetwork, source: int, sink: int) -> None:
        if source == sink:
            raise GraphError("source and sink must differ")
        self.network = network
        self.source = source
        self.sink = sink
        self._value = dinic(network, source, sink).value
        self._augment_runs = 1

    @property
    def value(self) -> float:
        """The current Maxflow value."""
        return self._value

    @property
    def augment_runs(self) -> int:
        """How many Dinic invocations the lifetime has cost."""
        return self._augment_runs

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, tail: int, head: int, capacity: float) -> EdgeRef:
        """Add an edge and restore Maxflow incrementally.

        Returns the new edge's handle.  Cost: one resumed Dinic run that
        only finds augmenting paths through the new edge.
        """
        ref = self.network.add_edge(tail, head, capacity)
        gained = dinic(self.network, self.source, self.sink).value
        self._augment_runs += 1
        self._value += gained
        return ref

    def increase_capacity(self, ref: EdgeRef, extra: float) -> None:
        """Raise an edge's capacity and restore Maxflow incrementally."""
        if extra < 0:
            raise GraphError(f"capacity increase must be >= 0, got {extra}")
        forward = self.network.forward_arc(ref)
        if not math.isinf(forward.cap):
            forward.cap += extra
        gained = dinic(self.network, self.source, self.sink).value
        self._augment_runs += 1
        self._value += gained

    def delete_edge(self, ref: EdgeRef) -> float:
        """Remove an edge, withdrawing its flow; returns the new Maxflow.

        The edge is neutralised (both residual directions zeroed) rather
        than physically removed, keeping other handles stable.
        """
        routed = self.network.flow_on(ref)
        forward = self.network.forward_arc(ref)
        reverse = self.network.reverse_arc(ref)
        if routed > FLOW_EPSILON:
            self._withdraw_through(ref, routed)
        forward.cap = 0.0
        reverse.cap = 0.0
        gained = dinic(self.network, self.source, self.sink).value
        self._augment_runs += 1
        self._value += gained
        return self._value

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _withdraw_through(self, ref: EdgeRef, amount: float) -> None:
        """Cancel ``amount`` units of flow routed through ``ref``.

        Following [18]: push ``amount`` units backwards from the edge's
        tail to the source along reverse-residual arcs of routed flow, and
        backwards from the sink to the edge's head likewise; then cancel
        the edge's own flow.  Decrements the maintained value.
        """
        tail = ref.tail
        head = self.network.forward_arc(ref).head
        cancelled_left = self._cancel_path(self.source, tail, amount)
        cancelled_right = self._cancel_path(head, self.sink, amount)
        if (
            abs(cancelled_left - amount) > 1e-6
            or abs(cancelled_right - amount) > 1e-6
        ):
            raise GraphError(
                "withdrawal failed to cancel the full flow through the edge"
            )
        self.network.push_on(ref, -amount)
        self._value -= amount

    def _cancel_path(self, from_node: int, to_node: int, amount: float) -> float:
        """Cancel ``amount`` units along routed-flow paths from_node→to_node.

        Works on the *flow* graph (edges with positive routed flow),
        repeatedly tracing a path and decreasing the flow along it.  By
        flow decomposition such paths exist whenever ``amount`` units of
        the current flow traverse both endpoints in this order.
        """
        if from_node == to_node:
            return amount  # the edge touches the endpoint directly
        remaining = amount
        while remaining > FLOW_EPSILON:
            path = self._trace_flow_path(from_node, to_node)
            if not path:
                break
            bottleneck = min(
                self.network.arcs_of(arc.head)[arc.rev].cap
                for _, arc in path
            )
            cancel = min(bottleneck, remaining)
            for _, arc in path:
                partner = self.network.arcs_of(arc.head)[arc.rev]
                if not math.isinf(arc.cap):
                    arc.cap += cancel
                partner.cap -= cancel
            remaining -= cancel
        return amount - remaining

    def _trace_flow_path(self, from_node: int, to_node: int):
        """DFS over edges carrying positive flow; returns [(tail, arc)]."""
        if from_node == to_node:
            return []
        adj = self.network._adj  # noqa: SLF001
        retired = self.network._retired  # noqa: SLF001
        seen = {from_node}
        stack: list[tuple[int, int]] = [(from_node, 0)]
        path: list[tuple[int, object]] = []
        while stack:
            node, pos = stack[-1]
            arcs = adj[node]
            if pos >= len(arcs):
                stack.pop()
                if path:
                    path.pop()
                continue
            stack[-1] = (node, pos + 1)
            arc = arcs[pos]
            if not arc.forward:
                continue
            routed = adj[arc.head][arc.rev].cap
            if routed <= FLOW_EPSILON:
                continue
            other = arc.head
            if other in seen or retired[other]:
                continue
            path.append((node, arc))
            if other == to_node:
                return path
            seen.add(other)
            stack.append((other, 0))
        return None
