"""The continuous burst-mining pipeline: ingest → pre-filter → confirm → persist.

:class:`MiningPipeline` is the paper's Grab case study run as a
*workload* instead of a one-shot script:

1. **ingest** — :class:`~repro.mining.stats.StreamStats` consumes
   appended edges incrementally (epoch-aware, so it composes with the
   service/cluster append path: appends made by anyone on the shared
   network are picked up by the next ``sync``).
2. **pre-filter** — :func:`~repro.mining.prefilter.rank_candidates`
   crosses the top burst-intense emitters with the top collectors; the
   survivors are a tiny fraction of the exhaustive S×T sweep
   (:attr:`FunnelStats.amortization` reports the measured ratio).
3. **confirm** — the survivors feed
   :func:`repro.core.planner.top_k_bursts`, so overlapping candidates
   share skeleton compiles and window memos, and every answer carries
   the engine's canonical tie-break.
4. **persist** — confirmed outliers become content-addressed
   :class:`~repro.mining.store.PatternRecord` rows in the durable
   :class:`~repro.mining.store.PatternStore`; a re-scan over unchanged
   history dedupes to the same ``pattern_id`` set.

Flagging uses the same robust modified-z-score + short-interval rule as
:class:`repro.anomaly.detector.BurstDetector` (density outlier against
the confirmed batch median, interval shorter than a fraction of the
horizon), so a mining hit means exactly what a case-study hit means.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from statistics import median
from typing import Any, Iterable, Mapping, Sequence

from repro.core.planner import BurstEntry, top_k_bursts
from repro.exceptions import InvalidQueryError
from repro.mining.prefilter import (
    NodeIntensity,
    node_intensities,
    rank_candidates,
)
from repro.mining.stats import StreamStats, modified_z_score
from repro.mining.store import (
    PatternRecord,
    PatternStore,
    canonical_evidence,
    pattern_hash,
    pattern_id_for,
)
from repro.temporal.edge import NodeId, TemporalEdge
from repro.temporal.network import TemporalFlowNetwork

#: ``persist=`` choices for :meth:`MiningPipeline.scan`.
PERSIST_MODES = ("flagged", "all")


@dataclass(frozen=True, slots=True)
class MiningConfig:
    """Knobs of the funnel (defaults follow the case-study detector)."""

    top_sources: int = 8
    top_sinks: int = 8
    min_volume: float = 0.0
    #: Modified z-score above which a confirmed burst is flagged.
    outlier_score: float = 3.5
    #: A flagged burst must be shorter than this fraction of the horizon.
    max_interval_fraction: float = 0.2
    #: Confirmed bursts below this density are never persisted.
    min_density: float = 0.0
    #: Hard cap on candidates entering confirmation (None = top product).
    max_candidates: int | None = None
    #: Pre-filter window length; None uses the scan's delta.
    window: int | None = None


@dataclass(slots=True)
class FunnelStats:
    """What the pre-filter saved (the measured amortization figure)."""

    nodes_scored: int = 0
    #: Size of the exhaustive S×T sweep the funnel avoided.
    exhaustive_pairs: int = 0
    candidates: int = 0
    #: δ-BFlow solves actually run (== candidates after filtering).
    solves: int = 0
    confirmed: int = 0
    flagged: int = 0

    @property
    def amortization(self) -> float:
        """Exhaustive solves avoided per solve run (≥ 1.0)."""
        if self.solves <= 0:
            return float(self.exhaustive_pairs) if self.exhaustive_pairs else 1.0
        return self.exhaustive_pairs / self.solves

    def as_dict(self) -> dict[str, Any]:
        return {
            "nodes_scored": self.nodes_scored,
            "exhaustive_pairs": self.exhaustive_pairs,
            "candidates": self.candidates,
            "solves": self.solves,
            "confirmed": self.confirmed,
            "flagged": self.flagged,
            "amortization": self.amortization,
        }


@dataclass(slots=True)
class ScanOutcome:
    """One scan's result: what was persisted and what the funnel did."""

    records: list[PatternRecord] = field(default_factory=list)
    new_ids: list[str] = field(default_factory=list)
    deduped: int = 0
    funnel: FunnelStats = field(default_factory=FunnelStats)
    epoch: int = 0
    elapsed_ms: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "patterns": [record.as_dict() for record in self.records],
            "new": len(self.new_ids),
            "new_ids": list(self.new_ids),
            "deduped": self.deduped,
            "funnel": self.funnel.as_dict(),
            "epoch": self.epoch,
            "elapsed_ms": self.elapsed_ms,
        }


def flag_entries(
    entries: Sequence[BurstEntry],
    *,
    horizon: int,
    outlier_score: float = 3.5,
    max_interval_fraction: float = 0.2,
    min_density: float = 0.0,
) -> list[tuple[BurstEntry, float]]:
    """The detector's outlier rule over confirmed entries, with scores.

    Returns ``(entry, z)`` pairs for entries whose density is a robust
    outlier against the batch median *and* whose interval is short.
    Mirrors :meth:`repro.anomaly.detector.BurstDetector._flag` —
    including its "fewer than 3 positives is not a distribution" guard —
    so mining and case-study scans agree on what counts as anomalous.
    """
    positives = [e for e in entries if e.density > 0]
    if len(positives) < 3:
        return []
    densities = [e.density for e in positives]
    mid = median(densities)
    mad = median(abs(d - mid) for d in densities)
    max_length = max(1, int(horizon * max_interval_fraction))
    flagged = []
    for entry in positives:
        if entry.density < min_density:
            continue
        z = modified_z_score(entry.density, mid, mad)
        length = entry.interval[1] - entry.interval[0]
        if z >= outlier_score and length <= max_length:
            flagged.append((entry, z))
    flagged.sort(key=lambda item: -item[0].density)
    return flagged


def build_record(
    network: TemporalFlowNetwork,
    entry: BurstEntry,
    *,
    epoch: int,
    z_score: float = 0.0,
    detection_method: str = "mining_funnel",
    intensities: Mapping[NodeId, NodeIntensity] | None = None,
) -> PatternRecord:
    """Materialise one confirmed burst as a content-addressed record."""
    evidence = canonical_evidence(
        network, entry.source, entry.sink, entry.interval
    )
    hash_hex = pattern_hash(entry.source, entry.sink, entry.interval, evidence)
    profile = intensities or {}
    source_profile = profile.get(entry.source)
    sink_profile = profile.get(entry.sink)
    return PatternRecord(
        pattern_id=pattern_id_for(hash_hex),
        pattern_hash=hash_hex,
        pattern_type="bursting_flow",
        source=entry.source,
        sink=entry.sink,
        delta=entry.delta,
        interval=entry.interval,
        density=entry.density,
        flow_value=entry.flow_value,
        epoch=epoch,
        detection_method=detection_method,
        z_score=z_score,
        source_concentration=(
            source_profile.concentration if source_profile else 0.0
        ),
        sink_concentration=(
            sink_profile.concentration if sink_profile else 0.0
        ),
        evidence=evidence,
    )


def persist_entries(
    store: PatternStore,
    network: TemporalFlowNetwork,
    scored_entries: Sequence[tuple[BurstEntry, float]],
    *,
    epoch: int,
    detection_method: str = "mining_funnel",
    intensities: Mapping[NodeId, NodeIntensity] | None = None,
) -> tuple[list[PatternRecord], list[str], int]:
    """Persist flagged entries; returns (records, new ids, dedupe count).

    ``records`` are the *stored* rows for every flagged entry — for a
    deduped entry that is the original record, proving the re-scan
    derived the same id.
    """
    records: list[PatternRecord] = []
    new_ids: list[str] = []
    deduped = 0
    for entry, z in scored_entries:
        record = build_record(
            network,
            entry,
            epoch=epoch,
            z_score=z,
            detection_method=detection_method,
            intensities=intensities,
        )
        if store.add(record):
            new_ids.append(record.pattern_id)
            records.append(record)
        else:
            deduped += 1
            stored = store.get(record.pattern_id)
            assert stored is not None
            records.append(stored)
    return records, new_ids, deduped


class MiningPipeline:
    """Continuous burst mining over one live network.

    Args:
        network: the temporal flow network to mine (shared with the
            service/cluster append path; ``scan`` syncs before ranking).
        store: the durable pattern store detections persist to.
        config: funnel knobs (:class:`MiningConfig`).
        processes / mp_context: forwarded to the planner's confirmation
            solves (``top_k_bursts``).
    """

    def __init__(
        self,
        network: TemporalFlowNetwork,
        store: PatternStore,
        *,
        config: MiningConfig | None = None,
        processes: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        self.network = network
        self.store = store
        self.config = config or MiningConfig()
        self.processes = processes
        self.mp_context = mp_context
        self.stats = StreamStats()
        self.stats.sync(network)
        self.scans = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, edges: Iterable[TemporalEdge]) -> int:
        """Append edges to the network and ingest them; returns count."""
        count = 0
        for edge in edges:
            self.network.add_edge(edge)
            count += 1
        self.sync()
        return count

    def sync(self) -> int:
        """Consume edges appended by anyone since the last sync."""
        return self.stats.sync(self.network)

    # ------------------------------------------------------------------
    # The scan: pre-filter → confirm → flag → persist
    # ------------------------------------------------------------------
    def scan(
        self,
        delta: int,
        *,
        pairs: Sequence[tuple[NodeId, NodeId]] | None = None,
        persist: str = "flagged",
        top: int | None = None,
        min_volume: float | None = None,
    ) -> ScanOutcome:
        """One full funnel pass; persists detections, returns the outcome.

        Args:
            delta: minimum bursting-interval length for confirmation.
            pairs: explicit candidate pairs (skips the pre-filter; the
                cluster coordinator and the oracle backend pin
                candidates this way).  Pairs with identical endpoints or
                endpoints missing from the network are skipped.
            persist: ``"flagged"`` stores only robust density outliers
                (the default, mirroring the case-study detector);
                ``"all"`` stores every confirmed positive burst above
                ``config.min_density`` (the oracle's differential mode).
            top: per-scan override of ``config.top_sources`` and
                ``config.top_sinks`` (wire requests carry this).
            min_volume: per-scan override of ``config.min_volume``.
        """
        if delta < 1:
            raise InvalidQueryError(f"delta must be >= 1, got {delta}")
        if persist not in PERSIST_MODES:
            raise InvalidQueryError(
                f"persist must be one of {', '.join(PERSIST_MODES)}, "
                f"got {persist!r}"
            )
        started = time.perf_counter()
        self.sync()
        epoch = self.network.epoch
        config = self.config
        if top is not None or min_volume is not None:
            config = replace(
                config,
                top_sources=top if top is not None else config.top_sources,
                top_sinks=top if top is not None else config.top_sinks,
                min_volume=(
                    min_volume if min_volume is not None else config.min_volume
                ),
            )
        window = config.window or delta
        outcome = ScanOutcome(epoch=epoch)
        funnel = outcome.funnel

        emit_volumes = {
            node for node, entries in self.stats.out_ledgers.items()
            if sum(amount for _, amount in entries) >= config.min_volume
        }
        sink_volumes = {
            node for node, entries in self.stats.in_ledgers.items()
            if sum(amount for _, amount in entries) >= config.min_volume
        }
        funnel.nodes_scored = len(
            set(self.stats.out_ledgers) | set(self.stats.in_ledgers)
        )
        funnel.exhaustive_pairs = len(emit_volumes) * len(sink_volumes) - len(
            emit_volumes & sink_volumes
        )

        intensity_index: dict[NodeId, NodeIntensity] = {}
        if pairs is None:
            candidates = rank_candidates(
                self.stats,
                window=window,
                top_sources=config.top_sources,
                top_sinks=config.top_sinks,
                min_volume=config.min_volume,
            )
            if config.max_candidates is not None:
                candidates = candidates[: config.max_candidates]
            candidate_pairs = [candidate.pair for candidate in candidates]
            for candidate in candidates:
                intensity_index.setdefault(
                    candidate.source, candidate.source_intensity
                )
                intensity_index.setdefault(
                    candidate.sink, candidate.sink_intensity
                )
        else:
            candidate_pairs = [
                (source, sink)
                for source, sink in pairs
                if source != sink
                and source in self.network
                and sink in self.network
            ]
        funnel.candidates = len(candidate_pairs)

        if not candidate_pairs:
            outcome.elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.scans += 1
            return outcome

        entries = top_k_bursts(
            self.network,
            candidate_pairs,
            delta,
            k=len(candidate_pairs),
            processes=self.processes,
            mp_context=self.mp_context,
        )
        funnel.solves = len(candidate_pairs)
        funnel.confirmed = len(entries)

        horizon = (
            self.network.t_max - self.network.t_min
            if self.network.num_edges
            else 0
        )
        if persist == "flagged":
            selected = flag_entries(
                entries,
                horizon=horizon,
                outlier_score=config.outlier_score,
                max_interval_fraction=config.max_interval_fraction,
                min_density=config.min_density,
            )
        else:
            positives = [e for e in entries if e.density > 0]
            densities = [e.density for e in positives]
            mid = median(densities) if densities else 0.0
            mad = (
                median(abs(d - mid) for d in densities) if densities else 0.0
            )
            selected = [
                (entry, modified_z_score(entry.density, mid, mad))
                for entry in positives
                if entry.density >= config.min_density
            ]
        funnel.flagged = len(selected)

        records, new_ids, deduped = persist_entries(
            self.store,
            self.network,
            selected,
            epoch=epoch,
            intensities=intensity_index,
        )
        outcome.records = records
        outcome.new_ids = new_ids
        outcome.deduped = deduped
        outcome.elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.scans += 1
        return outcome

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def patterns(self, **filters: Any) -> list[PatternRecord]:
        """Query the durable store (passthrough to ``PatternStore.query``)."""
        return self.store.query(**filters)

    def intensity_profile(
        self, *, window: int, direction: str = "out", min_volume: float = 0.0
    ) -> list[NodeIntensity]:
        """The current per-node intensity ranking (diagnostics/CLI)."""
        ledgers = (
            self.stats.out_ledgers if direction == "out" else self.stats.in_ledgers
        )
        return node_intensities(ledgers, window=window, min_volume=min_volume)
