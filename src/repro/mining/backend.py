"""The differential-oracle backend for the mining pipeline.

:func:`mining_bfq` answers a query by driving the *entire* mining
vertical for exactly that pair: the candidate is pinned into the
confirmation stage (which routes through the planner), the detection is
persisted to a throwaway :class:`~repro.mining.store.PatternStore`, the
store is closed and **reopened from disk**, and the answer is
reconstructed from the replayed record.  Registered as the ``"mining"``
backend in :mod:`repro.oracle.runner` (opt-in, like ``cluster``), it
proves on every fuzz case that a persisted pattern is byte-identical —
interval, flow value, density — to a direct ``find_bursting_flow``
solve, and that the durable round trip (serialize → fsync → replay →
deserialize) changes nothing.
"""

from __future__ import annotations

import tempfile

from repro.core.query import BurstingFlowQuery, BurstingFlowResult
from repro.exceptions import ReproError
from repro.mining.pipeline import MiningPipeline
from repro.mining.store import PatternStore
from repro.temporal.network import TemporalFlowNetwork


class MiningBackendError(ReproError):
    """The mining round trip produced duplicates or inconsistent records."""


def mining_bfq(
    network: TemporalFlowNetwork,
    query: BurstingFlowQuery,
    **_kwargs: object,
) -> BurstingFlowResult:
    """Answer one query through confirm → persist → restart → replay."""
    with tempfile.TemporaryDirectory(prefix="repro-mining-") as tmp:
        store = PatternStore(tmp, fsync=False)
        try:
            pipeline = MiningPipeline(network, store)
            pipeline.scan(
                query.delta,
                pairs=[(query.source, query.sink)],
                persist="all",
            )
            # Scan twice: the second pass must dedupe, not duplicate.
            pipeline.scan(
                query.delta,
                pairs=[(query.source, query.sink)],
                persist="all",
            )
        finally:
            store.close()
        reopened = PatternStore(tmp, fsync=False)
        try:
            records = [
                record
                for record in reopened.query(
                    source=query.source, sink=query.sink
                )
                if record.delta == query.delta
            ]
        finally:
            reopened.close()
    if not records:
        return BurstingFlowResult(density=0.0, interval=None, flow_value=0.0)
    if len(records) > 1:
        raise MiningBackendError(
            f"re-scan duplicated the pattern for {query!r}: "
            f"{[record.pattern_id for record in records]!r}"
        )
    record = records[0]
    return BurstingFlowResult(
        density=record.density,
        interval=record.interval,
        flow_value=record.flow_value,
    )
