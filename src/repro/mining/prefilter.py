"""The mining pre-filter: cheap statistical screening before δ-BFlow.

Scanning all ``|V|²`` (source, sink) pairs with the exact engine is
hopeless at fleet scale; this module ranks candidates with statistics
that cost one pass over the ledgers:

1. **temporal concentration** (:class:`NodeBurstScore`) — the share of a
   node's transfer volume inside its busiest window.  This is the
   screening :mod:`repro.anomaly.hunting` prototyped; it now lives here
   and ``hunting`` delegates to it, so there is exactly one
   implementation.
2. **robust z-score** — the peak window's volume scored against the
   node's own per-window median/MAD (:func:`~repro.mining.stats
   .modified_z_score`); steady-but-heavy nodes (merchants, corporates)
   stay near zero while spike-and-silence shells score high.
3. **Kleinberg burst states** — a two-state automaton over binned
   arrival *counts* (:func:`~repro.mining.stats.kleinberg_states`),
   which rewards sustained elevated activity rather than a single big
   transfer.

:func:`rank_candidates` combines the three into per-node
:class:`NodeIntensity` scores, crosses the top emitters with the top
collectors, and boosts pairs whose peak windows coincide.  The output
order feeds straight into :func:`repro.core.planner.top_k_bursts`.

The funnel is a heuristic, and its known miss is inherited from the
hunting prototype: a multi-hop-only burst whose endpoints look
individually calm (volume trickling out of the source over a long
horizon, reassembled at the sink far later) never ranks — the tests
exercise both the hit and the miss case.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Mapping

from repro.exceptions import InvalidQueryError
from repro.mining.stats import (
    StreamStats,
    burstiness,
    kleinberg_states,
    modified_z_score,
)
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

Ledger = list[tuple[Timestamp, float]]


@dataclass(frozen=True, slots=True)
class NodeBurstScore:
    """Temporal-concentration score of one node's ledger side."""

    node: NodeId
    total_volume: float
    peak_volume: float
    peak_window: tuple[Timestamp, Timestamp]

    @property
    def concentration(self) -> float:
        """Share of total volume inside the busiest window (0..1)."""
        if self.total_volume <= 0:
            return 0.0
        return self.peak_volume / self.total_volume

    @property
    def score(self) -> float:
        """Ranking score: concentrated *and* heavy beats either alone."""
        return self.concentration * self.peak_volume


@dataclass(frozen=True, slots=True)
class NodeIntensity:
    """One node's full pre-filter intensity profile."""

    base: NodeBurstScore
    #: Share of the node's arrivals inside Kleinberg burst bins (0..1).
    burstiness: float
    #: Peak-window volume vs the node's own window distribution.
    z_score: float

    @property
    def node(self) -> NodeId:
        return self.base.node

    @property
    def peak_window(self) -> tuple[Timestamp, Timestamp]:
        return self.base.peak_window

    @property
    def concentration(self) -> float:
        return self.base.concentration

    @property
    def intensity(self) -> float:
        """The ranking key: concentration-weighted peak volume, boosted
        when the burst automaton confirms the activity pattern."""
        return self.base.score * (1.0 + self.burstiness)


@dataclass(frozen=True, slots=True)
class PairCandidate:
    """A ranked (source, sink) candidate for δ-BFlow confirmation."""

    source: NodeId
    sink: NodeId
    rank_score: float
    source_intensity: NodeIntensity
    sink_intensity: NodeIntensity

    @property
    def pair(self) -> tuple[NodeId, NodeId]:
        return (self.source, self.sink)

    @property
    def windows_overlap(self) -> bool:
        """Whether the emitter's and collector's peak windows intersect."""
        (a_lo, a_hi) = self.source_intensity.peak_window
        (b_lo, b_hi) = self.sink_intensity.peak_window
        return a_lo <= b_hi and b_lo <= a_hi


def _peak_window(
    entries: Ledger, window: int
) -> tuple[float, tuple[Timestamp, Timestamp]]:
    """Max volume inside any window of the given length (two pointers)."""
    best = 0.0
    best_window = (entries[0][0], entries[0][0] + window)
    running = 0.0
    left = 0
    for right in range(len(entries)):
        running += entries[right][1]
        while entries[right][0] - entries[left][0] > window:
            running -= entries[left][1]
            left += 1
        if running > best:
            best = running
            best_window = (entries[left][0], entries[left][0] + window)
    return best, best_window


def score_ledgers(
    ledgers: Mapping[NodeId, Ledger],
    *,
    window: int,
    min_volume: float = 0.0,
) -> list[NodeBurstScore]:
    """Concentration-score every ledger; sorted best first.

    Ledger entry lists are sorted in place by timestamp (idempotent).
    """
    if window < 1:
        raise InvalidQueryError(f"window must be >= 1, got {window}")
    scores = []
    for node, entries in ledgers.items():
        if not entries:
            continue
        entries.sort()
        total = sum(amount for _, amount in entries)
        if total < min_volume:
            continue
        peak, peak_window = _peak_window(entries, window)
        scores.append(
            NodeBurstScore(
                node=node,
                total_volume=total,
                peak_volume=peak,
                peak_window=peak_window,
            )
        )
    scores.sort(key=lambda s: (-s.score, str(s.node)))
    return scores


def score_nodes(
    network: TemporalFlowNetwork,
    *,
    window: int,
    direction: str = "out",
    min_volume: float = 0.0,
) -> list[NodeBurstScore]:
    """Score every node's emission (or absorption) concentration.

    Args:
        window: length of the sliding window used for the peak.
        direction: ``"out"`` scores emitters, ``"in"`` scores collectors.
        min_volume: nodes whose total volume is below this are skipped.

    Returns scores sorted by :attr:`NodeBurstScore.score`, best first.
    (This is the screening primitive ``repro.anomaly.hunting`` ships —
    its implementation lives here so the hunting funnel and the mining
    pre-filter can never drift apart.)
    """
    if direction not in ("out", "in"):
        raise InvalidQueryError(
            f"direction must be 'out' or 'in', got {direction!r}"
        )
    ledgers: dict[NodeId, Ledger] = {}
    for edge in network.edges():
        key = edge.u if direction == "out" else edge.v
        ledgers.setdefault(key, []).append((edge.tau, edge.capacity))
    return score_ledgers(ledgers, window=window, min_volume=min_volume)


def node_intensities(
    ledgers: Mapping[NodeId, Ledger],
    *,
    window: int,
    min_volume: float = 0.0,
) -> list[NodeIntensity]:
    """The full intensity profile per node, sorted by intensity desc."""
    profiles = []
    for base in score_ledgers(ledgers, window=window, min_volume=min_volume):
        entries = ledgers[base.node]
        volumes, counts = _bin_ledger(entries, window)
        z = _peak_z(base.peak_volume, volumes)
        states = kleinberg_states(counts)
        profiles.append(
            NodeIntensity(
                base=base,
                burstiness=burstiness(counts, states),
                z_score=z,
            )
        )
    profiles.sort(key=lambda p: (-p.intensity, str(p.node)))
    return profiles


def _bin_ledger(
    entries: Ledger, window: int
) -> tuple[list[float], list[int]]:
    """Per-window (volume, arrival-count) bins over the node's own span."""
    t0 = entries[0][0]
    span = max(entries[-1][0] - t0, 0)
    bins = span // window + 1
    volumes = [0.0] * bins
    counts = [0] * bins
    for tau, amount in entries:
        index = (tau - t0) // window
        volumes[index] += amount
        counts[index] += 1
    return volumes, counts


def _peak_z(peak_volume: float, volumes: list[float]) -> float:
    mid = median(volumes)
    mad = median(abs(v - mid) for v in volumes)
    return modified_z_score(peak_volume, mid, mad)


def rank_candidates(
    stats: StreamStats,
    *,
    window: int,
    top_sources: int = 8,
    top_sinks: int = 8,
    min_volume: float = 0.0,
) -> list[PairCandidate]:
    """Cross the top emitters with the top collectors, ranked.

    The rank score is the product of the endpoint intensities, doubled
    when the peak windows overlap (money leaving the source while it is
    arriving at the sink is the laundering signature; independent bursts
    at unrelated times are usually coincidence).  Deterministic: ties
    break on the stringified node ids.
    """
    if top_sources < 1 or top_sinks < 1:
        raise InvalidQueryError(
            f"top_sources/top_sinks must be >= 1, "
            f"got {top_sources}/{top_sinks}"
        )
    emitters = node_intensities(
        stats.out_ledgers, window=window, min_volume=min_volume
    )[:top_sources]
    collectors = node_intensities(
        stats.in_ledgers, window=window, min_volume=min_volume
    )[:top_sinks]
    candidates = []
    for emitter in emitters:
        for collector in collectors:
            if emitter.node == collector.node:
                continue
            (a_lo, a_hi) = emitter.peak_window
            (b_lo, b_hi) = collector.peak_window
            boost = 2.0 if (a_lo <= b_hi and b_lo <= a_hi) else 1.0
            candidates.append(
                PairCandidate(
                    source=emitter.node,
                    sink=collector.node,
                    rank_score=emitter.intensity * collector.intensity * boost,
                    source_intensity=emitter,
                    sink_intensity=collector,
                )
            )
    candidates.sort(
        key=lambda c: (-c.rank_score, str(c.source), str(c.sink))
    )
    return candidates


def rank_candidates_for_network(
    network: TemporalFlowNetwork,
    *,
    window: int,
    top_sources: int = 8,
    top_sinks: int = 8,
    min_volume: float = 0.0,
) -> list[PairCandidate]:
    """One-shot ranking without a maintained :class:`StreamStats`.

    Used where only a network is at hand (the cluster coordinator ranks
    on its recovered mirror); a fresh stats object is built and dropped.
    """
    stats = StreamStats()
    stats.sync(network)
    return rank_candidates(
        stats,
        window=window,
        top_sources=top_sources,
        top_sinks=top_sinks,
        min_volume=min_volume,
    )
