"""Continuous burst mining with a durable, queryable pattern store.

The fleet-scale version of the paper's Grab case study: a streaming
ingestion stage (:class:`~repro.mining.stats.StreamStats`), a cheap
statistical pre-filter (:mod:`repro.mining.prefilter` — temporal
concentration, robust z-scores, Kleinberg burst states), δ-BFlow
confirmation through the multi-query planner, and content-addressed
persistence (:mod:`repro.mining.store`).  See ``docs/mining.md``.
"""

from repro.mining.backend import MiningBackendError, mining_bfq
from repro.mining.pipeline import (
    PERSIST_MODES,
    FunnelStats,
    MiningConfig,
    MiningPipeline,
    ScanOutcome,
    build_record,
    flag_entries,
    persist_entries,
)
from repro.mining.prefilter import (
    NodeBurstScore,
    NodeIntensity,
    PairCandidate,
    node_intensities,
    rank_candidates,
    rank_candidates_for_network,
    score_ledgers,
    score_nodes,
)
from repro.mining.stats import (
    StreamStats,
    burstiness,
    kleinberg_states,
    modified_z_score,
)
from repro.mining.store import (
    PatternRecord,
    PatternStore,
    canonical_evidence,
    pattern_hash,
    pattern_id_for,
)

__all__ = [
    "FunnelStats",
    "MiningBackendError",
    "MiningConfig",
    "MiningPipeline",
    "NodeBurstScore",
    "NodeIntensity",
    "PairCandidate",
    "PatternRecord",
    "PatternStore",
    "PERSIST_MODES",
    "ScanOutcome",
    "StreamStats",
    "build_record",
    "burstiness",
    "canonical_evidence",
    "flag_entries",
    "kleinberg_states",
    "mining_bfq",
    "modified_z_score",
    "node_intensities",
    "pattern_hash",
    "pattern_id_for",
    "persist_entries",
    "rank_candidates",
    "rank_candidates_for_network",
    "score_ledgers",
    "score_nodes",
]
