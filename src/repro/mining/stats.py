"""Streaming statistics for the burst-mining pipeline.

The ingestion stage of :class:`repro.mining.MiningPipeline` keeps one
:class:`StreamStats` per served network: per-node emission/absorption
ledgers and per-pair direct-flow tallies, maintained *incrementally* as
edges are appended.  The epoch contract mirrors the rest of the system:

* The network's monotone ``epoch`` counts every mutation.  When the
  epoch advanced by exactly the number of new distinct edges, the new
  edges are the dict-ordered suffix of ``network.edges()`` and
  :meth:`StreamStats.sync` consumes only that suffix (the streaming
  fast path).
* Any other advance (capacity merges onto existing edges, bare
  ``add_node`` calls, snapshot ``adopt_epoch`` fast-forwards) cannot be
  attributed to a suffix, so ``sync`` falls back to a full rebuild —
  never a silently stale ledger.

The module also hosts the two intensity primitives the pre-filter (and,
via delegation, :mod:`repro.anomaly.detector`) scores with:

* :func:`modified_z_score` — the robust ``0.6745 * (x - median) / MAD``
  outlier score (SNIPPETS.md snippet 1's ``z_score_threshold`` screen);
* :func:`kleinberg_states` — a two-state burst automaton over binned
  arrival counts (snippet 2's ``kleinberg_burst_detection``): a Viterbi
  decode between a base-rate state and an elevated-rate state, with a
  transition cost that makes isolated noisy bins stay "normal" while
  sustained elevated activity flips to "burst".
"""

from __future__ import annotations

import math
from itertools import islice
from typing import Iterable, Sequence

from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork


def modified_z_score(value: float, mid: float, mad: float) -> float:
    """Robust outlier score; degenerate MAD falls back to mean-free ratio."""
    if mad > 0:
        return 0.6745 * (value - mid) / mad
    if mid > 0:
        return value / mid - 1.0
    return float("inf") if value > 0 else 0.0


def kleinberg_states(
    counts: Sequence[int | float],
    *,
    scale: float = 2.0,
    gamma: float = 1.0,
) -> list[int]:
    """Two-state Kleinberg burst decode over binned arrival counts.

    State 0 emits at the sequence's base rate (its mean), state 1 at
    ``scale`` times that; emissions are scored with the Poisson
    log-likelihood and entering the burst state costs
    ``gamma * ln(n + 1)``.  Returns the optimal (Viterbi) state per bin:
    ``1`` marks bins inside a burst.

    A flat or empty sequence decodes to all zeros — the automaton only
    flags *sustained deviations* from the node's own baseline, which is
    what separates a smurfing shell (quiet, then a dense spike) from a
    merchant that is simply busy all day.
    """
    if scale <= 1.0:
        raise ValueError(f"scale must be > 1, got {scale}")
    n = len(counts)
    if n == 0:
        return []
    total = float(sum(counts))
    if total <= 0:
        return [0] * n
    base = max(total / n, 1e-12)
    high = base * scale
    enter_cost = gamma * math.log(n + 1)

    def emit(rate: float, count: float) -> float:
        # Negative Poisson log-likelihood (lgamma generalises count!).
        return rate - count * math.log(rate) + math.lgamma(count + 1.0)

    cost0 = emit(base, float(counts[0]))
    cost1 = enter_cost + emit(high, float(counts[0]))
    back: list[tuple[int, int]] = []
    for raw in counts[1:]:
        count = float(raw)
        stay0, from1 = cost0, cost1
        best_to_0 = min(stay0, from1)
        best_to_1 = min(stay0 + enter_cost, from1)
        back.append(
            (0 if stay0 <= from1 else 1, 0 if stay0 + enter_cost < from1 else 1)
        )
        cost0 = best_to_0 + emit(base, count)
        cost1 = best_to_1 + emit(high, count)
    state = 0 if cost0 <= cost1 else 1
    states = [state]
    for choices in reversed(back):
        state = choices[state]
        states.append(state)
    states.reverse()
    return states


def burstiness(counts: Sequence[int | float], states: Sequence[int]) -> float:
    """Share of total arrivals that fall in Kleinberg burst bins (0..1)."""
    total = float(sum(counts))
    if total <= 0:
        return 0.0
    in_burst = sum(
        float(count) for count, state in zip(counts, states) if state == 1
    )
    return in_burst / total


class StreamStats:
    """Incrementally maintained per-node / per-pair flow statistics.

    Attributes:
        out_ledgers: per-node list of ``(tau, amount)`` emissions.
        in_ledgers: per-node list of ``(tau, amount)`` absorptions.
        pair_volume / pair_count: direct ``(u, v)`` edge tallies.
        observed_epoch: the network epoch the stats are current for.
        edges_seen: distinct edges consumed so far.
        rebuilds: how many times ``sync`` had to fall back to a full
            rebuild (capacity merges / adopted epochs); the streaming
            fast path keeps this at zero for pure-append workloads.
    """

    def __init__(self) -> None:
        self.out_ledgers: dict[NodeId, list[tuple[Timestamp, float]]] = {}
        self.in_ledgers: dict[NodeId, list[tuple[Timestamp, float]]] = {}
        self.pair_volume: dict[tuple[NodeId, NodeId], float] = {}
        self.pair_count: dict[tuple[NodeId, NodeId], int] = {}
        self.observed_epoch = 0
        self.edges_seen = 0
        self.rebuilds = 0

    def observe(self, edge: TemporalEdge) -> None:
        """Fold one edge into the ledgers (does not move the epoch)."""
        entry = (edge.tau, edge.capacity)
        self.out_ledgers.setdefault(edge.u, []).append(entry)
        self.in_ledgers.setdefault(edge.v, []).append(entry)
        pair = (edge.u, edge.v)
        self.pair_volume[pair] = self.pair_volume.get(pair, 0.0) + edge.capacity
        self.pair_count[pair] = self.pair_count.get(pair, 0) + 1

    def observe_many(self, edges: Iterable[TemporalEdge]) -> int:
        count = 0
        for edge in edges:
            self.observe(edge)
            count += 1
        return count

    def sync(self, network: TemporalFlowNetwork) -> int:
        """Bring the stats up to ``network.epoch``; returns edges consumed.

        Pure appends of fresh distinct edges stream in as the insertion
        -ordered suffix of ``network.edges()``; any epoch advance the
        suffix cannot explain (capacity merges, added nodes, adopted
        snapshot epochs) triggers a full rebuild instead.
        """
        epoch = network.epoch
        if epoch == self.observed_epoch:
            return 0
        new_edges = network.num_edges - self.edges_seen
        if (
            epoch - self.observed_epoch == new_edges
            and new_edges >= 0
            and self.edges_seen <= network.num_edges
        ):
            consumed = self.observe_many(
                islice(network.edges(), self.edges_seen, None)
            )
            self.edges_seen = network.num_edges
            self.observed_epoch = epoch
            return consumed
        self.rebuild(network)
        return network.num_edges

    def rebuild(self, network: TemporalFlowNetwork) -> None:
        """Recompute every ledger from scratch (the merge/restore path)."""
        self.out_ledgers = {}
        self.in_ledgers = {}
        self.pair_volume = {}
        self.pair_count = {}
        self.observe_many(network.edges())
        self.edges_seen = network.num_edges
        self.observed_epoch = network.epoch
        self.rebuilds += 1

    def node_volume(self, node: NodeId, direction: str = "out") -> float:
        """Total emitted (``"out"``) or absorbed (``"in"``) volume."""
        ledgers = self.out_ledgers if direction == "out" else self.in_ledgers
        return sum(amount for _, amount in ledgers.get(node, ()))
