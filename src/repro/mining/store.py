"""The durable, queryable pattern store.

Detected bursting-flow patterns outlive the process that found them:
:class:`PatternStore` persists each :class:`PatternRecord` to an
append-only log built on :class:`repro.store.AppendLog` (the same
crash-atomic primitive the cluster's write-ahead log uses — every
append is flushed, optionally fsynced, and an interrupted write is
repaired as a torn tail at reopen; :meth:`PatternStore.compact`
rewrites the log through the temp-file → fsync → ``os.replace`` →
directory-fsync discipline).

**Identity is content-addressed.**  ``pattern_hash`` is the SHA-256 of
the canonical JSON of ``(pattern_type, source, sink, interval,
evidence)`` and ``pattern_id`` is its short prefix.  Two scans that
detect the same flow — at any later epoch, after a process restart,
with a different ``delta`` that lands on the same interval — derive the
same id, so re-scans *dedupe instead of duplicating*: ``add`` is a
no-op (first record wins) when the id is already stored.  The mutable
context a detection carries (epoch, z-score, delta, intensity stats)
is deliberately **outside** the hash: it describes the scan, not the
pattern.

The record schema is modeled on chainswarm's
``analyzers_patterns_burst`` table (SNIPPETS.md snippet 3): stable id +
hash, the burst interval, intensity statistics, a detection-method tag
and the evidence edges that substantiate the claim.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproError
from repro.store.log import AppendLog
from repro.temporal.edge import NodeId, Timestamp
from repro.temporal.network import TemporalFlowNetwork

#: The log record tag for one persisted pattern.
PATTERN_OP = "pattern"

#: One evidence edge: ``(u, v, tau, capacity)``.
EvidenceEdge = tuple[NodeId, NodeId, Timestamp, float]


@dataclass(frozen=True, slots=True)
class PatternRecord:
    """One detected bursting-flow pattern (the durable unit).

    ``pattern_id``/``pattern_hash`` are derived from the *content* —
    endpoints, interval and canonical evidence edges — via
    :func:`pattern_hash`; everything else is scan context.
    """

    pattern_id: str
    pattern_hash: str
    pattern_type: str
    source: NodeId
    sink: NodeId
    delta: int
    interval: tuple[Timestamp, Timestamp]
    density: float
    flow_value: float
    epoch: int
    detection_method: str
    z_score: float
    source_concentration: float
    sink_concentration: float
    evidence: tuple[EvidenceEdge, ...]

    @property
    def interval_length(self) -> int:
        return self.interval[1] - self.interval[0]

    @property
    def evidence_count(self) -> int:
        return len(self.evidence)

    def as_dict(self) -> dict[str, Any]:
        return {
            "pattern_id": self.pattern_id,
            "pattern_hash": self.pattern_hash,
            "pattern_type": self.pattern_type,
            "source": self.source,
            "sink": self.sink,
            "delta": self.delta,
            "interval": list(self.interval),
            "density": self.density,
            "flow_value": self.flow_value,
            "epoch": self.epoch,
            "detection_method": self.detection_method,
            "z_score": self.z_score,
            "source_concentration": self.source_concentration,
            "sink_concentration": self.sink_concentration,
            "evidence_count": self.evidence_count,
            "evidence": [list(edge) for edge in self.evidence],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PatternRecord":
        interval = payload["interval"]
        return cls(
            pattern_id=str(payload["pattern_id"]),
            pattern_hash=str(payload["pattern_hash"]),
            pattern_type=str(payload["pattern_type"]),
            source=payload["source"],
            sink=payload["sink"],
            delta=int(payload["delta"]),
            interval=(interval[0], interval[1]),
            density=float(payload["density"]),
            flow_value=float(payload["flow_value"]),
            epoch=int(payload["epoch"]),
            detection_method=str(payload["detection_method"]),
            z_score=float(payload["z_score"]),
            source_concentration=float(payload["source_concentration"]),
            sink_concentration=float(payload["sink_concentration"]),
            evidence=tuple(
                (edge[0], edge[1], edge[2], float(edge[3]))
                for edge in payload.get("evidence", ())
            ),
        )


def pattern_hash(
    source: NodeId,
    sink: NodeId,
    interval: tuple[Timestamp, Timestamp],
    evidence: tuple[EvidenceEdge, ...],
    *,
    pattern_type: str = "bursting_flow",
) -> str:
    """SHA-256 over the canonical content of a pattern.

    Canonical JSON (sorted keys, no whitespace) of the type, endpoints,
    interval and the evidence list — the evidence must already be in
    canonical order (:func:`canonical_evidence` guarantees it).
    """
    blob = json.dumps(
        {
            "type": pattern_type,
            "source": source,
            "sink": sink,
            "interval": list(interval),
            "evidence": [list(edge) for edge in evidence],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def pattern_id_for(hash_hex: str) -> str:
    """The short content-addressed id for one pattern hash."""
    return f"bf_{hash_hex[:16]}"


def canonical_evidence(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    interval: tuple[Timestamp, Timestamp],
) -> tuple[EvidenceEdge, ...]:
    """The deterministic evidence-edge set for one detected burst.

    Evidence = the window's edges that lie on some source → sink path
    (forward-reachable from the source and co-reachable to the sink in
    the static graph induced by the window), sorted by
    ``(tau, str(u), str(v))``.  This is a pure function of the network
    restricted to the interval, so re-scans over unchanged history
    derive byte-identical evidence — the foundation of the id/hash
    stability contract.
    """
    window_edges = list(network.edges_in_window(interval[0], interval[1]))
    forward = {source}
    backward = {sink}
    changed = True
    while changed:
        changed = False
        for edge in window_edges:
            if edge.u in forward and edge.v not in forward:
                forward.add(edge.v)
                changed = True
            if edge.v in backward and edge.u not in backward:
                backward.add(edge.u)
                changed = True
    relevant = [
        (edge.u, edge.v, edge.tau, edge.capacity)
        for edge in window_edges
        if edge.u in forward and edge.v in backward
    ]
    relevant.sort(key=lambda e: (e[2], str(e[0]), str(e[1])))
    return tuple(relevant)


class PatternStore:
    """Crash-safe pattern persistence with content-addressed dedupe.

    Args:
        directory: where ``patterns.log`` lives (created if absent).
        fsync: fsync every append (durable to media before ``add``
            returns).  Defaults to True — a pattern the store claimed to
            persist must survive ``kill -9``.

    Thread-safe: the service runs scans on executor threads while
    ``GET /patterns`` reads from the event loop.
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log = AppendLog(self.directory / "patterns.log", fsync=fsync)
        self._records: dict[str, PatternRecord] = {}
        self._lock = threading.Lock()
        for raw in self._log.replay():
            if raw.get("op") != PATTERN_OP:
                continue
            record = PatternRecord.from_dict(raw["record"])
            # First record wins — identical content by construction; a
            # duplicate in the log (pre-compaction) is simply skipped.
            self._records.setdefault(record.pattern_id, record)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def add(self, record: PatternRecord) -> bool:
        """Persist one pattern; returns False when it deduped.

        The append is flushed (and fsynced when enabled) before the
        in-memory index admits the record, so a crash can lose at most
        the pattern whose ``add`` had not returned yet — never one the
        caller was told about.
        """
        expected = pattern_hash(
            record.source,
            record.sink,
            record.interval,
            record.evidence,
            pattern_type=record.pattern_type,
        )
        if record.pattern_hash != expected:
            raise ReproError(
                f"pattern {record.pattern_id} carries hash "
                f"{record.pattern_hash[:16]}… but its content hashes to "
                f"{expected[:16]}… — refusing to persist a forgeable id"
            )
        with self._lock:
            if record.pattern_id in self._records:
                return False
            self._log.append({"op": PATTERN_OP, "record": record.as_dict()})
            self._log.flush()
            self._records[record.pattern_id] = record
            return True

    def compact(self) -> None:
        """Rewrite the log to exactly the live record set (atomic swap)."""
        with self._lock:
            self._log.compact(
                [
                    {"op": PATTERN_OP, "record": record.as_dict()}
                    for _, record in sorted(self._records.items())
                ]
            )

    def prune(
        self,
        *,
        max_age_epochs: int | None = None,
        max_patterns: int | None = None,
        now_epoch: int | None = None,
    ) -> int:
        """Retention: drop old/excess patterns and compact atomically.

        Args:
            max_age_epochs: drop records whose ``epoch`` is more than
                this many epochs behind ``now_epoch`` (default: the
                newest stored record's epoch).
            max_patterns: keep at most this many records, preferring
                the newest (epoch desc), then the canonical query
                tie-break (density desc, earlier start, shorter
                interval, ``pattern_id``).
            now_epoch: the reference epoch for the age cut; pass the
                live network's epoch when pruning a running store.

        Returns the number of records dropped.  The survivors are
        rewritten through :meth:`AppendLog.compact`'s temp-file →
        fsync → ``os.replace`` → directory-fsync discipline, so a crash
        at any point leaves either the old complete log or the new one
        — never a store missing records it did not mean to drop.
        """
        if max_age_epochs is None and max_patterns is None:
            raise ReproError(
                "prune needs max_age_epochs and/or max_patterns — "
                "a bound-less prune would be a no-op by accident"
            )
        if max_age_epochs is not None and max_age_epochs < 0:
            raise ReproError(
                f"max_age_epochs must be >= 0, got {max_age_epochs}"
            )
        if max_patterns is not None and max_patterns < 0:
            raise ReproError(
                f"max_patterns must be >= 0, got {max_patterns}"
            )
        with self._lock:
            records = list(self._records.values())
            if not records:
                return 0
            horizon = (
                now_epoch
                if now_epoch is not None
                else max(record.epoch for record in records)
            )
            survivors = records
            if max_age_epochs is not None:
                floor = horizon - max_age_epochs
                survivors = [r for r in survivors if r.epoch >= floor]
            if max_patterns is not None and len(survivors) > max_patterns:
                survivors = sorted(
                    survivors,
                    key=lambda r: (
                        -r.epoch,
                        -r.density,
                        r.interval[0],
                        r.interval_length,
                        r.pattern_id,
                    ),
                )[:max_patterns]
            dropped = len(records) - len(survivors)
            if dropped == 0:
                return 0
            by_id = {record.pattern_id: record for record in survivors}
            self._log.compact(
                [
                    {"op": PATTERN_OP, "record": record.as_dict()}
                    for _, record in sorted(by_id.items())
                ]
            )
            # Only after the atomic swap succeeded does the index drop
            # the pruned records — a crash above leaves both intact.
            self._records = by_id
            return dropped

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, pattern_id: str) -> PatternRecord | None:
        with self._lock:
            return self._records.get(pattern_id)

    def ids(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, pattern_id: object) -> bool:
        with self._lock:
            return pattern_id in self._records

    def query(
        self,
        *,
        source: NodeId | None = None,
        sink: NodeId | None = None,
        since: Timestamp | None = None,
        until: Timestamp | None = None,
        min_density: float | None = None,
        pattern_type: str | None = None,
        limit: int | None = None,
    ) -> list[PatternRecord]:
        """Filter the stored patterns; canonical order, densest first.

        ``since``/``until`` select patterns whose burst interval
        intersects ``[since, until]``.  Ordering mirrors the planner's
        tie-break: density desc, earlier start, shorter interval, then
        ``pattern_id`` for full determinism.
        """
        with self._lock:
            records = list(self._records.values())
        matched = []
        for record in records:
            if source is not None and record.source != source:
                continue
            if sink is not None and record.sink != sink:
                continue
            if min_density is not None and record.density < min_density:
                continue
            if pattern_type is not None and record.pattern_type != pattern_type:
                continue
            if since is not None and record.interval[1] < since:
                continue
            if until is not None and record.interval[0] > until:
                continue
            matched.append(record)
        matched.sort(
            key=lambda r: (
                -r.density,
                r.interval[0],
                r.interval_length,
                r.pattern_id,
            )
        )
        if limit is not None:
            matched = matched[: max(limit, 0)]
        return matched

    def __iter__(self) -> Iterator[PatternRecord]:
        return iter(self.query())

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "PatternStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
