"""Scaled-down replicas of the paper's four datasets (plus the case study).

The real datasets (Table 2) are not redistributable and are far beyond
pure-Python Maxflow scale, so each replica reproduces the *shape* that
drives the algorithms' relative behaviour, at a size where the full bench
suite runs in minutes:

===========  ==========================  =======================================
Replica      Paper original              Shape preserved
===========  ==========================  =======================================
btc2011      Bitcoin 2011 transactions   very sparse (avg degree ~4), timestamps
                                         plentiful, tiny ``|Ti(s)|``/``|Ti(t)|``
                                         -> little incremental work (Fig. 9a)
ctu13        CTU-13 botnet traffic       hub-dominated (huge degree stddev),
                                         small ``Ti`` for random queries
prosper      Prosper P2P loans           dense (avg degree ~70), *few distinct
                                         timestamps* -> large ``|Ti(s)|``,
                                         deletion case dominates (Fig. 9c)
bayc         BAYC NFT trades             small, moderately bursty
grab         Grab transaction network    planted laundering bursts + labelled
                                         suspicious users (case study, §6.3)
===========  ==========================  =======================================

Every factory takes a ``scale`` multiplier (default 1.0 = bench scale) and
a ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datasets.synthetic import (
    PlantedBurst,
    bursty_network,
    heavy_tailed_network,
    planted_burst,
    uniform_network,
)
from repro.temporal.edge import NodeId
from repro.temporal.network import TemporalFlowNetwork


def btc2011_like(*, scale: float = 1.0, seed: int = 2011) -> TemporalFlowNetwork:
    """Bitcoin-2011 replica: sparse, many timestamps, mild degree skew."""
    num_nodes = max(10, int(1200 * scale))
    num_edges = max(20, int(2400 * scale))
    num_timestamps = max(10, int(1500 * scale))
    return heavy_tailed_network(
        num_nodes,
        num_edges,
        num_timestamps,
        seed=seed,
        hub_bias=0.35,
        capacity_mu=3.5,
        capacity_sigma=1.5,
    )


def ctu13_like(*, scale: float = 1.0, seed: int = 13) -> TemporalFlowNetwork:
    """CTU-13 replica: hub-dominated botnet traffic, huge degree stddev."""
    num_nodes = max(10, int(1500 * scale))
    num_edges = max(20, int(4200 * scale))
    num_timestamps = max(10, int(600 * scale))
    return heavy_tailed_network(
        num_nodes,
        num_edges,
        num_timestamps,
        seed=seed,
        hub_bias=0.85,
        capacity_mu=4.0,
        capacity_sigma=1.0,
    )


def prosper_like(*, scale: float = 1.0, seed: int = 74) -> TemporalFlowNetwork:
    """Prosper replica: dense, very few distinct timestamps.

    The few-timestamps / high-degree combination is what makes
    ``|Ti(s)|`` large and therefore the deletion-case optimisation of
    BFQ* pay off (EXP-1 on Prosper).
    """
    num_nodes = max(10, int(170 * scale))
    num_edges = max(20, int(3800 * scale))
    num_timestamps = max(6, int(120 * scale))
    return heavy_tailed_network(
        num_nodes,
        num_edges,
        num_timestamps,
        seed=seed,
        hub_bias=0.55,
        capacity_mu=5.0,
        capacity_sigma=0.8,
    )


def bayc_like(*, scale: float = 1.0, seed: int = 404) -> TemporalFlowNetwork:
    """BAYC replica: small bursty NFT-trade network."""
    num_nodes = max(10, int(320 * scale))
    num_edges = max(20, int(900 * scale))
    num_timestamps = max(10, int(800 * scale))
    return bursty_network(
        num_nodes,
        num_edges,
        num_timestamps,
        seed=seed,
        num_bursts=6,
        burst_width_fraction=0.03,
        burst_edge_fraction=0.5,
        capacity_mu=2.5,
        capacity_sigma=1.3,
    )


@dataclass(slots=True)
class CaseStudyDataset:
    """The case-study network plus its ground truth (Section 6.3).

    Attributes:
        network: the transaction network with planted bursts.
        suspicious_sources / suspicious_sinks: labelled suspect accounts
            (the planted burst endpoints are among them).
        benign_sources / benign_sinks: randomly chosen normal accounts.
        planted: ground-truth records of the planted laundering bursts.
    """

    network: TemporalFlowNetwork
    suspicious_sources: list[NodeId]
    suspicious_sinks: list[NodeId]
    benign_sources: list[NodeId]
    benign_sinks: list[NodeId]
    planted: list[PlantedBurst] = field(default_factory=list)


def grab_like(*, scale: float = 1.0, seed: int = 648) -> CaseStudyDataset:
    """Case-study replica: background payments + planted laundering bursts.

    Mirrors the paper's setup: a transaction network in which a labelled
    suspicious (source, sink) pair moved a large volume through mule
    chains inside a short window, while benign heavy flows exist only over
    long windows.
    """
    rng = random.Random(seed)
    num_nodes = max(30, int(900 * scale))
    num_edges = max(60, int(3600 * scale))
    num_timestamps = max(60, int(1200 * scale))
    network = uniform_network(
        num_nodes,
        num_edges,
        num_timestamps,
        seed=seed,
        capacity_range=(5.0, 120.0),
    )

    suspect_src = "suspect_src"
    suspect_dst = "suspect_dst"
    burst_lo = int(num_timestamps * 0.55)
    burst_hi = burst_lo + max(8, int(num_timestamps * 0.012))
    planted = [
        planted_burst(
            network,
            suspect_src,
            suspect_dst,
            seed=seed + 1,
            interval=(burst_lo, burst_hi),
            volume=50_000.0,
            hops=3,
            num_mule_chains=3,
        )
    ]

    # A benign heavy flow: comparable volume but spread over a long window,
    # so its *density* stays unremarkable (the paper's Q2 pattern).
    benign_src = "benign_heavy_src"
    benign_dst = "benign_heavy_dst"
    slow_lo = int(num_timestamps * 0.05)
    slow_hi = int(num_timestamps * 0.95)
    planted_burst(
        network,
        benign_src,
        benign_dst,
        seed=seed + 2,
        interval=(slow_lo, slow_hi),
        volume=50_000.0,
        hops=3,
        num_mule_chains=3,
    )

    population = sorted(str(node) for node in network.nodes if str(node).startswith("n"))
    extra_sources = rng.sample(population, 4)
    extra_sinks = rng.sample(population, 4)
    return CaseStudyDataset(
        network=network,
        suspicious_sources=[suspect_src],
        suspicious_sinks=[suspect_dst],
        benign_sources=[benign_src, *extra_sources],
        benign_sinks=[benign_dst, *extra_sinks],
        planted=planted,
    )
