"""Named dataset registry.

Central lookup used by the benchmark suite and the examples so every
consumer builds the exact same replica for a given name / scale / seed.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.replicas import (
    CaseStudyDataset,
    bayc_like,
    btc2011_like,
    ctu13_like,
    grab_like,
    prosper_like,
)
from repro.exceptions import DatasetError
from repro.temporal.network import TemporalFlowNetwork

#: The paper's four benchmark datasets, in Table-2 order.
BENCHMARK_DATASETS: dict[str, Callable[..., TemporalFlowNetwork]] = {
    "bayc": bayc_like,
    "prosper": prosper_like,
    "ctu13": ctu13_like,
    "btc2011": btc2011_like,
}


def make_dataset(
    name: str, *, scale: float = 1.0, seed: int | None = None
) -> TemporalFlowNetwork:
    """Build a benchmark replica by name (``bayc``/``prosper``/``ctu13``/``btc2011``).

    Raises:
        DatasetError: for unknown names.
    """
    try:
        factory = BENCHMARK_DATASETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(BENCHMARK_DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)


def make_case_study(*, scale: float = 1.0, seed: int = 648) -> CaseStudyDataset:
    """Build the Section-6.3 case-study dataset (planted ground truth)."""
    return grab_like(scale=scale, seed=seed)
