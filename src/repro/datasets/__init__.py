"""Synthetic datasets, Table-2 replicas, and query workloads."""

from repro.datasets.queries import (
    DEFAULT_DELTA_FRACTION,
    QueryWorkload,
    generate_queries,
)
from repro.datasets.registry import (
    BENCHMARK_DATASETS,
    make_case_study,
    make_dataset,
)
from repro.datasets.replicas import (
    CaseStudyDataset,
    bayc_like,
    btc2011_like,
    ctu13_like,
    grab_like,
    prosper_like,
)
from repro.datasets.synthetic import (
    PlantedBurst,
    bursty_network,
    heavy_tailed_network,
    planted_burst,
    uniform_network,
)

__all__ = [
    "uniform_network",
    "heavy_tailed_network",
    "bursty_network",
    "planted_burst",
    "PlantedBurst",
    "btc2011_like",
    "ctu13_like",
    "prosper_like",
    "bayc_like",
    "grab_like",
    "CaseStudyDataset",
    "BENCHMARK_DATASETS",
    "make_dataset",
    "make_case_study",
    "generate_queries",
    "QueryWorkload",
    "DEFAULT_DELTA_FRACTION",
]
