"""Seeded synthetic temporal-flow-network generators.

The paper's real datasets cannot be redistributed, so the benchmark suite
runs on synthetic networks whose *shape* matches them (see
:mod:`repro.datasets.replicas`).  This module provides the generic
generators those replicas are assembled from:

* :func:`uniform_network` — Erdos-Renyi-style random temporal edges;
* :func:`heavy_tailed_network` — preferential-attachment degree skew (the
  Bitcoin/CTU degree distributions are extremely skewed, Table 2);
* :func:`bursty_network` — temporally clustered activity: most edges land
  inside a handful of short bursts (the signature pattern delta-BFlow is
  designed to find);
* :func:`planted_burst` — overlay a high-volume transfer chain between two
  chosen nodes inside a short window (the case study's ground truth).

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import DatasetError
from repro.temporal.edge import NodeId, TemporalEdge, Timestamp
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class PlantedBurst:
    """Ground-truth record of one planted bursting transfer."""

    source: NodeId
    sink: NodeId
    interval: tuple[Timestamp, Timestamp]
    volume: float
    hops: int

    @property
    def density(self) -> float:
        """Ground-truth density: volume over window length."""
        lo, hi = self.interval
        return self.volume / (hi - lo)


def uniform_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    *,
    seed: int,
    capacity_range: tuple[float, float] = (1.0, 100.0),
) -> TemporalFlowNetwork:
    """Uniformly random temporal edges over ``num_nodes`` nodes."""
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = random.Random(seed)
    network = TemporalFlowNetwork()
    lo, hi = capacity_range
    for _ in range(num_edges):
        u, v = _distinct_pair(rng, num_nodes)
        tau = rng.randint(1, num_timestamps)
        network.add_edge(TemporalEdge(u, v, tau, rng.uniform(lo, hi)))
    return network


def heavy_tailed_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    *,
    seed: int,
    hub_bias: float = 0.75,
    capacity_mu: float = 3.0,
    capacity_sigma: float = 1.2,
) -> TemporalFlowNetwork:
    """Degree-skewed network via preferential endpoint selection.

    With probability ``hub_bias`` an endpoint is drawn from the running
    multiset of previously used endpoints (rich get richer), otherwise
    uniformly.  Capacities are log-normal, mirroring transaction amounts.
    """
    _check_sizes(num_nodes, num_edges, num_timestamps)
    if not 0.0 <= hub_bias < 1.0:
        raise DatasetError(f"hub_bias must be in [0, 1), got {hub_bias}")
    rng = random.Random(seed)
    network = TemporalFlowNetwork()
    endpoints: list[int] = []
    for _ in range(num_edges):
        u = _preferential(rng, endpoints, num_nodes, hub_bias)
        v = _preferential(rng, endpoints, num_nodes, hub_bias)
        while v == u:
            v = rng.randrange(num_nodes)
        endpoints.append(u)
        endpoints.append(v)
        tau = rng.randint(1, num_timestamps)
        capacity = rng.lognormvariate(capacity_mu, capacity_sigma)
        network.add_edge(TemporalEdge(f"n{u}", f"n{v}", tau, capacity))
    return network


def bursty_network(
    num_nodes: int,
    num_edges: int,
    num_timestamps: int,
    *,
    seed: int,
    num_bursts: int = 5,
    burst_width_fraction: float = 0.02,
    burst_edge_fraction: float = 0.6,
    capacity_mu: float = 3.0,
    capacity_sigma: float = 1.0,
) -> TemporalFlowNetwork:
    """Temporally clustered edges: bursts over a uniform background.

    ``burst_edge_fraction`` of the edges land inside ``num_bursts`` windows
    each spanning ``burst_width_fraction`` of the horizon; the rest are
    uniform background traffic.
    """
    _check_sizes(num_nodes, num_edges, num_timestamps)
    rng = random.Random(seed)
    width = max(1, int(num_timestamps * burst_width_fraction))
    burst_starts = [
        rng.randint(1, max(1, num_timestamps - width)) for _ in range(num_bursts)
    ]
    network = TemporalFlowNetwork()
    for _ in range(num_edges):
        u, v = _distinct_pair(rng, num_nodes)
        if burst_starts and rng.random() < burst_edge_fraction:
            start = rng.choice(burst_starts)
            tau = rng.randint(start, min(num_timestamps, start + width))
        else:
            tau = rng.randint(1, num_timestamps)
        capacity = rng.lognormvariate(capacity_mu, capacity_sigma)
        network.add_edge(TemporalEdge(u, v, tau, capacity))
    return network


def planted_burst(
    network: TemporalFlowNetwork,
    source: NodeId,
    sink: NodeId,
    *,
    seed: int,
    interval: tuple[Timestamp, Timestamp],
    volume: float,
    hops: int = 3,
    num_mule_chains: int = 2,
) -> PlantedBurst:
    """Overlay a laundering-style transfer ``source -> ... -> sink``.

    ``volume`` units are split across ``num_mule_chains`` parallel chains
    of ``hops`` intermediate hand-offs, with strictly increasing timestamps
    inside ``interval`` — i.e. a genuine temporal flow of value ``volume``
    from ``source`` to ``sink`` inside the window.  The network is mutated
    in place; the returned record is the ground truth.

    Raises:
        DatasetError: when the interval is too short to fit ``hops + 1``
            strictly increasing timestamps.
    """
    lo, hi = interval
    if hi - lo < hops + 1:
        raise DatasetError(
            f"interval {interval} too short for {hops} hops "
            f"(needs length >= {hops + 1})"
        )
    if volume <= 0:
        raise DatasetError(f"volume must be positive, got {volume}")
    rng = random.Random(seed)
    share = volume / num_mule_chains
    for chain in range(num_mule_chains):
        mules: list[NodeId] = [
            f"mule_{source}_{sink}_{chain}_{i}" for i in range(hops)
        ]
        path: Sequence[NodeId] = [source, *mules, sink]
        stamps = sorted(rng.sample(range(lo, hi + 1), len(path) - 1))
        for (u, v), tau in zip(zip(path, path[1:]), stamps):
            network.add_edge(TemporalEdge(u, v, tau, share))
    return PlantedBurst(
        source=source,
        sink=sink,
        interval=interval,
        volume=volume,
        hops=hops,
    )


def _check_sizes(num_nodes: int, num_edges: int, num_timestamps: int) -> None:
    if num_nodes < 2:
        raise DatasetError(f"need at least 2 nodes, got {num_nodes}")
    if num_edges < 1:
        raise DatasetError(f"need at least 1 edge, got {num_edges}")
    if num_timestamps < 1:
        raise DatasetError(f"need at least 1 timestamp, got {num_timestamps}")


def _distinct_pair(rng: random.Random, num_nodes: int) -> tuple[str, str]:
    u = rng.randrange(num_nodes)
    v = rng.randrange(num_nodes)
    while v == u:
        v = rng.randrange(num_nodes)
    return (f"n{u}", f"n{v}")


def _preferential(
    rng: random.Random, endpoints: list[int], num_nodes: int, hub_bias: float
) -> int:
    if endpoints and rng.random() < hub_bias:
        return rng.choice(endpoints)
    return rng.randrange(num_nodes)
