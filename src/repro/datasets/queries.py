"""Query-workload generation.

The paper evaluates 20 random (source, sink) pairs per dataset, chosen
"such that there exists non-trivial temporal flows from s to t, which
contain paths from s to t having a length not less than 3", with delta set
to 3/6/9 percent of ``|T|``.  :func:`generate_queries` reproduces that
selection procedure on any network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.temporal.edge import NodeId
from repro.temporal.network import TemporalFlowNetwork
from repro.temporal.reachability import earliest_arrival, min_temporal_hops

#: The paper's default delta, as a fraction of |T|.
DEFAULT_DELTA_FRACTION = 0.03


@dataclass(frozen=True, slots=True)
class QueryWorkload:
    """A reproducible batch of (source, sink) pairs plus delta settings."""

    pairs: tuple[tuple[NodeId, NodeId], ...]
    num_timestamps: int

    def delta_for(self, fraction: float = DEFAULT_DELTA_FRACTION) -> int:
        """Delta as a fraction of ``|T|`` (>= 1), the paper's convention."""
        return max(1, int(round(self.num_timestamps * fraction)))

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


def generate_queries(
    network: TemporalFlowNetwork,
    *,
    count: int = 20,
    seed: int = 0,
    min_hops: int = 3,
    min_source_stamps: int = 1,
    max_attempts: int = 20_000,
) -> QueryWorkload:
    """Pick ``count`` non-trivial (source, sink) pairs.

    A pair qualifies when the sink is temporally reachable from the source
    through a time-respecting path of at least ``min_hops`` edges (which,
    with positive capacities, guarantees a non-trivial temporal flow).

    Args:
        min_source_stamps: require sources with at least this many distinct
            out-stamps (``|Ti(s)|``).  The paper notes its Prosper queries
            have "sources [with] tens of out-going edges", which is what
            makes the deletion-case optimisation bite; raising this knob
            builds such deletion-heavy workloads deliberately.

    Raises:
        DatasetError: if not enough qualifying pairs are found within
            ``max_attempts`` samples — usually a sign the network is too
            small or too disconnected for the requested count.
    """
    rng = random.Random(seed)
    sources = sorted(
        (str(node), node)
        for node in network.nodes
        if len(network.tistamp_out(node)) >= max(1, min_source_stamps)
    )
    if not sources:
        raise DatasetError("network has no nodes with out-going edges")
    chosen: list[tuple[NodeId, NodeId]] = []
    seen: set[tuple[NodeId, NodeId]] = set()
    attempts = 0
    while len(chosen) < count:
        attempts += 1
        if attempts > max_attempts:
            raise DatasetError(
                f"found only {len(chosen)} of {count} qualifying query pairs "
                f"after {max_attempts} attempts"
            )
        _, source = rng.choice(sources)
        arrival = earliest_arrival(network, source)
        candidates = sorted(
            (str(node), node)
            for node in arrival
            if node != source and network.tistamp_in(node)
        )
        if not candidates:
            continue
        _, sink = candidates[rng.randrange(len(candidates))]
        if (source, sink) in seen:
            continue
        seen.add((source, sink))
        hops = min_temporal_hops(network, source, sink)
        if hops is None or hops < min_hops:
            continue
        chosen.append((source, sink))
    return QueryWorkload(
        pairs=tuple(chosen), num_timestamps=network.num_timestamps
    )
