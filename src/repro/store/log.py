"""Append-only event log — the durability layer of the graph store.

The paper keeps its transaction data in a graph database (Neo4j) and
answers delta-BFlow queries memory-resident after a one-off export.  This
package reproduces that architecture with an embedded store; the log is
its write-ahead substrate: every mutation is one JSON line, fsync-able,
replayable, and cheap to tail.

Records are dicts with an ``op`` field; the log itself is schema-agnostic
(the :class:`~repro.store.graph_store.GraphStore` defines the op set).

**Logical offsets and compaction.**  Snapshot-driven compaction
(:meth:`AppendLog.truncate_prefix`) drops a durable prefix of the log
without invalidating the byte offsets callers recorded earlier: the log
addresses its contents by *logical* offset — the byte position a record
would have had if nothing had ever been compacted away.  A compacted
file carries a single meta header line::

    {"op": "__log_meta__", "base_offset": B, "base_records": K}

meaning logical bytes ``[0, B)`` (``K`` records) were truncated after a
snapshot made them redundant.  :meth:`replay` never yields the header;
:meth:`tail_offset`, :meth:`truncate_to` and ``replay(from_offset=...)``
all speak logical offsets, so a snapshot manifest recorded before a
compaction stays valid after it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro.exceptions import DatasetError, TruncatedHistoryError

#: The reserved op of the compaction meta header (never yielded by replay).
META_OP = "__log_meta__"

#: Block size for the backwards tail scan on open (no full-file reads).
_TAIL_BLOCK = 64 * 1024


class AppendLog:
    """A JSON-lines append-only log with replay and compaction support.

    Opening the log *repairs* it: a trailing partial line — the signature
    of a crash (or ``kill -9``) mid-write — is truncated away, and a final
    line that is complete JSON but lost only its newline to the crash gets
    its terminator back.  Either way the first post-crash :meth:`append`
    lands on a clean record boundary instead of concatenating onto torn
    bytes and corrupting the record (the repair runs *before* the append
    handle opens, so it holds even when :meth:`replay` is never called).
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._base_offset = 0
        self._base_records = 0
        self._header_len = 0
        self._repair_tail()
        self._read_meta()
        self._handle = self.path.open("a", encoding="utf-8")
        self._records_appended = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Append one record (one JSON line)."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._handle.write(line)
        self._handle.write("\n")
        self._records_appended += 1

    def flush(self) -> None:
        """Flush buffered writes (and fsync when configured)."""
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        self.flush()
        self._handle.close()

    def tail_offset(self) -> int:
        """The end-of-log *logical* byte offset (flushes buffered writes).

        Pass the value to :meth:`truncate_to` to roll back everything
        appended after this point, or record it in a snapshot manifest as
        the point the snapshot covers — it stays valid across
        :meth:`truncate_prefix` compactions.
        """
        self._handle.flush()
        return self._base_offset + (self.path.stat().st_size - self._header_len)

    def truncate_to(self, offset: int) -> None:
        """Roll the log back to ``offset`` (a prior :meth:`tail_offset`).

        The cluster coordinator uses this to take back a write-ahead
        record that no replica applied: the record must not replicate
        later via replay, or a client retry of the failed append would
        duplicate it.  :attr:`records_appended` drops by the number of
        records rolled back.
        """
        physical = self._physical(offset)
        self._handle.flush()
        self._handle.close()
        with self.path.open("r+b") as handle:
            handle.seek(physical)
            dropped = handle.read().count(b"\n")
            handle.truncate(physical)
            handle.flush()
            os.fsync(handle.fileno())
        self._records_appended = max(0, self._records_appended - dropped)
        self._handle = self.path.open("a", encoding="utf-8")

    def __enter__(self) -> "AppendLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def records_appended(self) -> int:
        """Records appended through *this* handle, net of rollbacks.

        :meth:`truncate_to` subtracts the records it rolls back and
        :meth:`compact` resets the counter to zero (the rewritten
        contents are a new baseline, not appends of this handle), so the
        value never over-reports what this handle actually contributed
        to the file's current contents.  It does **not** count records
        already on disk when the handle opened.
        """
        return self._records_appended

    @property
    def base_offset(self) -> int:
        """Logical offset of the first byte still physically present.

        Zero for a never-compacted log; after :meth:`truncate_prefix`
        it equals the compaction point.
        """
        return self._base_offset

    @property
    def base_records(self) -> int:
        """Records dropped by prefix compaction (before the base offset)."""
        return self._base_records

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self, from_offset: int | None = None) -> Iterator[dict]:
        """Stream records from ``from_offset`` (default: the base), oldest
        first, without ever materializing the log in memory.

        Crash-safe: a *trailing* partial line is tolerated and
        **truncated away**, so the next :meth:`append` starts a fresh
        record instead of concatenating onto the torn bytes; a final
        line that is complete JSON but lost only its newline is kept and
        the newline is **rewritten** before the record is yielded.
        (Open-time repair normally handles both — the replay-time path
        covers files torn after open.)

        Args:
            from_offset: logical byte offset to start at — a prior
                :meth:`tail_offset`, or a snapshot manifest's
                ``log_offset``.  ``None`` replays everything physically
                present.

        Raises:
            TruncatedHistoryError: ``from_offset`` falls before the
                base offset — those records were compacted away and must
                come from the covering snapshot instead.
            DatasetError: on a corrupt (non-JSON) interior line,
                reporting its number.
        """
        self.flush()
        if from_offset is None:
            start = self._header_len
        else:
            start = self._physical(from_offset)
        return self._stream(start)

    def _physical(self, offset: int) -> int:
        """Map a logical offset to a physical file position."""
        if offset < self._base_offset:
            raise TruncatedHistoryError(
                f"{self.path}: logical offset {offset} was compacted away "
                f"(base offset is {self._base_offset}); restore from the "
                f"covering snapshot instead of replaying the log"
            )
        return self._header_len + (offset - self._base_offset)

    def _stream(self, start: int) -> Iterator[dict]:
        with self.path.open(encoding="utf-8") as handle:
            handle.seek(start)
            number = 0
            pending: str | None = None
            while True:
                line = handle.readline()
                if pending is not None:
                    yield from self._emit(pending, number, last=not line)
                    if not line:
                        return
                if not line:
                    return
                number += 1
                pending = line if line.strip() else None

    def _emit(self, line: str, number: int, *, last: bool) -> Iterator[dict]:
        try:
            record = json.loads(line.strip())
        except json.JSONDecodeError as exc:
            if last and not line.endswith("\n"):
                self._truncate_torn_tail()
                return
            raise DatasetError(
                f"{self.path}:{number}: corrupt log record: {exc}"
            ) from exc
        if last and not line.endswith("\n"):
            self._restore_tail_newline()
        if record.get("op") != META_OP:
            yield record

    def _restore_tail_newline(self) -> None:
        """Re-terminate a complete final record whose trailing newline
        was lost to a crash, so the next :meth:`append` starts a fresh
        line instead of concatenating onto it."""
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _truncate_torn_tail(self) -> None:
        """Cut the file back to the last complete (newline-ended) record."""
        self._handle.close()
        keep = self._scan_last_newline()
        with self.path.open("r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = self.path.open("a", encoding="utf-8")

    def _scan_last_newline(self) -> int:
        """Offset just past the file's last newline (0 when there is none),
        found by scanning backwards in blocks — never a full read."""
        with self.path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            position = handle.tell()
            while position > 0:
                step = min(_TAIL_BLOCK, position)
                position -= step
                handle.seek(position)
                block = handle.read(step)
                found = block.rfind(b"\n")
                if found != -1:
                    return position + found + 1
        return 0

    def _repair_tail(self) -> None:
        """Open-time crash repair: truncate a torn trailing line, or
        re-terminate a complete final record that lost its newline.

        Runs before the append handle opens, so an ``append()`` issued
        before any ``replay()`` still lands on a clean record boundary.
        Reads only the tail, never the whole file.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with self.path.open("rb") as handle:
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            keep = self._scan_last_newline()
            handle.seek(keep)
            tail = handle.read()
        try:
            json.loads(tail)
        except json.JSONDecodeError:
            with self.path.open("r+b") as handle:
                handle.truncate(keep)
                handle.flush()
                os.fsync(handle.fileno())
        else:
            with self.path.open("ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())

    def _read_meta(self) -> None:
        """Load the compaction meta header, if the file carries one."""
        try:
            with self.path.open("rb") as handle:
                first = handle.readline()
        except FileNotFoundError:
            return
        if META_OP.encode() not in first:
            return
        try:
            record = json.loads(first)
        except json.JSONDecodeError:
            return
        if isinstance(record, dict) and record.get("op") == META_OP:
            self._base_offset = int(record.get("base_offset", 0))
            self._base_records = int(record.get("base_records", 0))
            self._header_len = len(first)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def truncate_prefix(self, upto_offset: int) -> int:
        """Atomically drop logical bytes ``[base_offset, upto_offset)``.

        The snapshot-driven compaction: once a durable snapshot covers
        the log up to ``upto_offset`` (a prior :meth:`tail_offset`), the
        covered prefix is redundant and recovery becomes *snapshot load
        + suffix replay*.  The surviving suffix is written to a temp
        file behind a ``{"op": "__log_meta__", ...}`` header recording
        the new base, fsynced, and swapped in with ``os.replace`` — a
        crash at any point leaves either the old file or the new one,
        never a mix.  Logical offsets recorded earlier stay valid.

        Returns the number of records dropped (0 when ``upto_offset``
        does not advance the base).
        """
        self.flush()
        if upto_offset <= self._base_offset:
            return 0
        cut = self._physical(upto_offset)
        size = self.path.stat().st_size
        if cut > size:
            raise DatasetError(
                f"{self.path}: cannot compact to logical offset {upto_offset} "
                f"past the end of the log (tail is {self.tail_offset()})"
            )
        tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
        dropped = 0
        with self.path.open("rb") as source:
            source.seek(self._header_len)
            remaining = cut - self._header_len
            while remaining > 0:
                block = source.read(min(_TAIL_BLOCK, remaining))
                if not block:
                    break
                dropped += block.count(b"\n")
                remaining -= len(block)
            header = json.dumps(
                {
                    "op": META_OP,
                    "base_offset": upto_offset,
                    "base_records": self._base_records + dropped,
                },
                separators=(",", ":"),
                sort_keys=True,
            ).encode("utf-8") + b"\n"
            with tmp_path.open("wb") as target:
                target.write(header)
                while True:
                    block = source.read(_TAIL_BLOCK)
                    if not block:
                        break
                    target.write(block)
                target.flush()
                os.fsync(target.fileno())
        self._handle.close()
        os.replace(tmp_path, self.path)
        self._fsync_directory()
        self._base_records += dropped
        self._base_offset = upto_offset
        self._header_len = len(header)
        self._handle = self.path.open("a", encoding="utf-8")
        return dropped

    def compact(self, records: Iterator[dict] | list[dict]) -> None:
        """Atomically replace the log's contents with ``records``.

        This is *full* rewrite compaction (the :class:`GraphStore` uses
        it to shrink to the canonical record set): it resets the logical
        offset space — the base returns to zero and previously recorded
        offsets become meaningless.  Snapshot-driven callers that need
        stable offsets use :meth:`truncate_prefix` instead.
        """
        self.flush()
        tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp_path, self.path)
        self._fsync_directory()
        self._base_offset = 0
        self._base_records = 0
        self._header_len = 0
        self._records_appended = 0
        self._handle = self.path.open("a", encoding="utf-8")

    def _fsync_directory(self) -> None:
        """Make an ``os.replace`` in the log's directory durable."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
