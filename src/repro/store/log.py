"""Append-only event log — the durability layer of the graph store.

The paper keeps its transaction data in a graph database (Neo4j) and
answers delta-BFlow queries memory-resident after a one-off export.  This
package reproduces that architecture with an embedded store; the log is
its write-ahead substrate: every mutation is one JSON line, fsync-able,
replayable, and cheap to tail.

Records are dicts with an ``op`` field; the log itself is schema-agnostic
(the :class:`~repro.store.graph_store.GraphStore` defines the op set).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro.exceptions import DatasetError


class AppendLog:
    """A JSON-lines append-only log with replay and compaction support."""

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._records_appended = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Append one record (one JSON line)."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._handle.write(line)
        self._handle.write("\n")
        self._records_appended += 1

    def flush(self) -> None:
        """Flush buffered writes (and fsync when configured)."""
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        self.flush()
        self._handle.close()

    def tail_offset(self) -> int:
        """The end-of-log byte offset (flushes buffered writes first).

        Pass the value to :meth:`truncate_to` to roll back everything
        appended after this point.
        """
        self._handle.flush()
        return self.path.stat().st_size

    def truncate_to(self, offset: int) -> None:
        """Roll the log back to ``offset`` (a prior :meth:`tail_offset`).

        The cluster coordinator uses this to take back a write-ahead
        record that no replica applied: the record must not replicate
        later via replay, or a client retry of the failed append would
        duplicate it.
        """
        self._handle.close()
        with self.path.open("r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = self.path.open("a", encoding="utf-8")

    def __enter__(self) -> "AppendLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def records_appended(self) -> int:
        """Records appended through *this* handle (not total on disk)."""
        return self._records_appended

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[dict]:
        """Yield every record currently on disk, oldest first.

        Crash-safe: a *trailing* partial line — the signature of a crash
        (or ``kill -9``) mid-write — is tolerated and **truncated away**,
        so the next :meth:`append` starts a fresh record instead of
        concatenating onto the torn bytes and corrupting the log.  A
        final line that is complete JSON but lost only its newline to
        the crash is kept, and the newline is **rewritten** before the
        record is yielded, for the same reason.

        Raises:
            DatasetError: on a corrupt (non-JSON) interior line,
                reporting its number.
        """
        self.flush()
        with self.path.open(encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                if number == len(lines) and not line.endswith("\n"):
                    self._truncate_torn_tail()
                    return
                raise DatasetError(
                    f"{self.path}:{number}: corrupt log record: {exc}"
                ) from exc
            if number == len(lines) and not line.endswith("\n"):
                self._restore_tail_newline()
            yield record

    def _restore_tail_newline(self) -> None:
        """Re-terminate a complete final record whose trailing newline
        was lost to a crash, so the next :meth:`append` starts a fresh
        line instead of concatenating onto it."""
        self._handle.write("\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _truncate_torn_tail(self) -> None:
        """Cut the file back to the last complete (newline-ended) record."""
        self._handle.close()
        data = self.path.read_bytes()
        keep = data.rfind(b"\n") + 1  # 0 when no complete record survives
        with self.path.open("r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = self.path.open("a", encoding="utf-8")

    def compact(self, records: Iterator[dict] | list[dict]) -> None:
        """Atomically replace the log's contents with ``records``."""
        self.flush()
        tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp_path, self.path)
        self._handle = self.path.open("a", encoding="utf-8")
