"""Embedded temporal graph store (the paper's Neo4j-backend role).

Transactions land durably as they happen; analysis performs a one-off
export into a :class:`~repro.temporal.network.TemporalFlowNetwork` and
answers delta-BFlow queries memory-resident.
"""

from repro.store.graph_store import GraphStore, StoredRelationship
from repro.store.log import AppendLog
from repro.store.snapshot import SnapshotManifest, SnapshotStore

__all__ = [
    "GraphStore",
    "StoredRelationship",
    "AppendLog",
    "SnapshotManifest",
    "SnapshotStore",
]
