"""Atomic point-in-time snapshots of replayed graph state.

The write-ahead :class:`~repro.store.AppendLog` makes every mutation
durable, but replaying it from genesis makes recovery cost grow with
*history*, not with *state* — exactly backwards for the append-dominated
temporal-interaction streams the paper targets.  A
:class:`SnapshotStore` bounds recovery: it persists a JSON payload of
the fully-replayed state together with a manifest recording the log
position the payload covers, so recovery becomes *snapshot load + log
suffix replay* and the covered log prefix can be compacted away
(:meth:`AppendLog.truncate_prefix`).

Every write is crash-atomic — temp file, ``fsync``, ``os.replace``,
directory ``fsync`` — and the manifest is replaced strictly *after* the
snapshot payload it points at, so a crash at any interleaving leaves a
directory that loads either the previous snapshot or the new one, never
a torn mix:

1. crash before the payload's ``os.replace`` — the manifest still names
   the old payload; the orphaned temp file is pruned on the next save;
2. crash between payload and manifest replace — same: the new payload
   file is unreferenced and harmless;
3. crash after the manifest replace but before the log compaction — the
   manifest names the new payload and its ``log_offset`` still falls
   inside the (uncompacted) log, so suffix replay simply starts there.

The payload checksum (sha256) in the manifest turns silent corruption
into a loud :class:`~repro.exceptions.DatasetError` at load time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import DatasetError

#: File name of the manifest inside a snapshot directory.
MANIFEST_NAME = "MANIFEST.json"


@dataclass(frozen=True, slots=True)
class SnapshotManifest:
    """What the durable manifest records about the current snapshot.

    Attributes:
        snapshot: payload file name, relative to the snapshot directory.
        log_offset: the *logical* :meth:`AppendLog.tail_offset` the
            payload covers — replay resumes from here.
        records: absolute count of log records (since genesis) the
            payload covers; rejoin asserts it replays fewer than this.
        epoch: the replayed network's mutation epoch at the snapshot
            point (restored verbatim, keeping epoch a pure function of
            the applied history).
        checksum: sha256 hex digest of the payload file's bytes.
    """

    snapshot: str
    log_offset: int
    records: int
    epoch: int
    checksum: str


class SnapshotStore:
    """Crash-atomic snapshot persistence for one log's replayed state.

    A store is a directory holding at most one *referenced* payload file
    plus ``MANIFEST.json``; older payloads and temp files are pruned
    opportunistically.  Creating the object touches nothing on disk —
    the directory appears on the first :meth:`save`.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(
        self,
        payload: Mapping[str, Any],
        *,
        log_offset: int,
        records: int,
        epoch: int,
    ) -> SnapshotManifest:
        """Persist ``payload`` atomically; returns the durable manifest.

        The payload lands first (temp + fsync + ``os.replace`` + dir
        fsync), the manifest second with the same discipline — the
        ordering that makes every crash interleaving recoverable.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
        name = f"snapshot-{records:012d}.json"
        self._write_atomic(name, data)
        manifest = SnapshotManifest(
            snapshot=name,
            log_offset=int(log_offset),
            records=int(records),
            epoch=int(epoch),
            checksum=hashlib.sha256(data).hexdigest(),
        )
        self._write_atomic(
            MANIFEST_NAME,
            json.dumps(asdict(manifest), separators=(",", ":"), sort_keys=True).encode(
                "utf-8"
            ),
        )
        self._prune(keep=name)
        return manifest

    def _write_atomic(self, name: str, data: bytes) -> None:
        final = self.directory / name
        tmp = self.directory / (name + ".tmp")
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune(self, keep: str) -> None:
        """Drop unreferenced payloads and stale temp files (best-effort)."""
        for path in self.directory.glob("snapshot-*.json"):
            if path.name != keep:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def manifest(self) -> SnapshotManifest | None:
        """The durable manifest, or ``None`` when no snapshot exists.

        Raises:
            DatasetError: the manifest file exists but does not parse —
                ``os.replace`` makes a torn manifest impossible, so this
                signals real external damage, never a crash artifact.
        """
        path = self.directory / MANIFEST_NAME
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            record = json.loads(raw)
            return SnapshotManifest(
                snapshot=str(record["snapshot"]),
                log_offset=int(record["log_offset"]),
                records=int(record["records"]),
                epoch=int(record["epoch"]),
                checksum=str(record["checksum"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"{path}: corrupt snapshot manifest: {exc}") from exc

    def load(self) -> tuple[dict, SnapshotManifest] | None:
        """The payload + manifest pair, or ``None`` when no snapshot exists.

        Raises:
            DatasetError: the manifest names a missing payload, or the
                payload's bytes fail the manifest checksum.
        """
        manifest = self.manifest()
        if manifest is None:
            return None
        path = self.directory / manifest.snapshot
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise DatasetError(
                f"{path}: manifest names a missing snapshot payload"
            ) from None
        digest = hashlib.sha256(data).hexdigest()
        if digest != manifest.checksum:
            raise DatasetError(
                f"{path}: snapshot payload fails its checksum "
                f"(manifest {manifest.checksum[:12]}…, file {digest[:12]}…)"
            )
        return json.loads(data), manifest
