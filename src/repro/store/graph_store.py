"""An embedded temporal property-graph store.

Plays the role Neo4j plays in the paper's deployment: transactions land in
a durable store as they happen; analysis exports a temporal flow network
*once* and answers every delta-BFlow query memory-resident ("all the
evaluated delta-BFlow queries can be answered by a one-off data export").

Capabilities (deliberately scoped to what the paper's pipeline needs):

* nodes with a free-form property dict;
* directed *temporal* relationships ``(u, v, tau)`` with an ``amount`` and
  optional properties (labels, currency, ...);
* durability through an append-only JSON-lines log with crash-tolerant
  replay and compaction;
* secondary indexes: by timestamp (range scans) and by endpoint
  (per-account ledgers);
* the one-off export: :meth:`export_network` produces a
  :class:`~repro.temporal.network.TemporalFlowNetwork` (optionally
  filtered to a time range / predicate) plus a timestamp codec when
  compaction is requested.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

from repro.exceptions import DatasetError, UnknownNodeError
from repro.store.log import AppendLog
from repro.temporal.builder import TemporalFlowNetworkBuilder, TimestampCodec
from repro.temporal.network import TemporalFlowNetwork


@dataclass(frozen=True, slots=True)
class StoredRelationship:
    """One temporal relationship as stored."""

    rel_id: int
    u: str
    v: str
    tau: float
    amount: float
    properties: Mapping[str, object] = field(default_factory=dict)


class GraphStore:
    """An embedded, optionally durable temporal graph store.

    Args:
        path: log file for durability; ``None`` keeps the store in memory
            only.
        fsync: fsync the log on every flush (durability vs speed).
    """

    def __init__(self, path: str | Path | None = None, *, fsync: bool = False) -> None:
        self._log = AppendLog(path, fsync=fsync) if path is not None else None
        self._nodes: dict[str, dict] = {}
        self._rels: dict[int, StoredRelationship] = {}
        self._next_rel_id = 1
        # Indexes.
        self._by_tau: list[tuple[float, int]] = []  # sorted (tau, rel_id)
        self._out: dict[str, list[int]] = defaultdict(list)
        self._in: dict[str, list[int]] = defaultdict(list)
        if self._log is not None:
            self._replay()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, **properties) -> None:
        """Create or update a node (properties merge)."""
        node_id = str(node_id)
        merged = {**self._nodes.get(node_id, {}), **properties}
        self._nodes[node_id] = merged
        self._journal({"op": "node", "id": node_id, "props": merged})

    def add_relationship(
        self,
        u: str,
        v: str,
        tau: float,
        amount: float,
        **properties,
    ) -> int:
        """Record a transfer ``u -> v`` of ``amount`` at time ``tau``.

        Endpoints are auto-created.  Returns the relationship id.

        Raises:
            DatasetError: for non-positive amounts or ``u == v``.
        """
        u, v = str(u), str(v)
        if u == v:
            raise DatasetError(f"self transfer not allowed: {u!r}")
        if amount <= 0:
            raise DatasetError(f"amount must be positive, got {amount}")
        for node in (u, v):
            if node not in self._nodes:
                self.add_node(node)
        rel_id = self._next_rel_id
        record = StoredRelationship(
            rel_id=rel_id, u=u, v=v, tau=float(tau), amount=float(amount),
            properties=dict(properties),
        )
        self._apply_relationship(record)
        self._journal(
            {
                "op": "rel",
                "id": rel_id,
                "u": u,
                "v": v,
                "tau": float(tau),
                "amount": float(amount),
                "props": dict(properties),
            }
        )
        return rel_id

    def flush(self) -> None:
        """Flush the durability log (no-op for in-memory stores)."""
        if self._log is not None:
            self._log.flush()

    def compact(self) -> None:
        """Rewrite the log to the minimal record set for the live state."""
        if self._log is None:
            return
        self._log.compact(self._canonical_records())

    def close(self) -> None:
        """Flush and close the durability log."""
        if self._log is not None:
            self._log.close()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of stored nodes."""
        return len(self._nodes)

    @property
    def num_relationships(self) -> int:
        """Number of stored relationships."""
        return len(self._rels)

    def node(self, node_id: str) -> Mapping[str, object]:
        """A node's property dict (UnknownNodeError when absent)."""
        try:
            return self._nodes[str(node_id)]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def has_node(self, node_id: str) -> bool:
        """Whether the node exists in the store."""
        return str(node_id) in self._nodes

    def relationship(self, rel_id: int) -> StoredRelationship:
        """Look a relationship up by id (DatasetError when absent)."""
        try:
            return self._rels[rel_id]
        except KeyError:
            raise DatasetError(f"unknown relationship id {rel_id}") from None

    def relationships(self) -> Iterator[StoredRelationship]:
        """All relationships in insertion order."""
        return iter(sorted(self._rels.values(), key=lambda r: r.rel_id))

    def relationships_between(
        self, tau_lo: float, tau_hi: float
    ) -> Iterator[StoredRelationship]:
        """Relationships with ``tau_lo <= tau <= tau_hi`` in time order."""
        lo = bisect.bisect_left(self._by_tau, (tau_lo, -1))
        hi = bisect.bisect_right(self._by_tau, (tau_hi, float("inf")))
        for _, rel_id in self._by_tau[lo:hi]:
            yield self._rels[rel_id]

    def outgoing(self, node_id: str) -> Iterator[StoredRelationship]:
        """A node's out-ledger, in insertion order."""
        self.node(node_id)
        for rel_id in self._out.get(str(node_id), []):
            yield self._rels[rel_id]

    def incoming(self, node_id: str) -> Iterator[StoredRelationship]:
        """A node's in-ledger, in insertion order."""
        self.node(node_id)
        for rel_id in self._in.get(str(node_id), []):
            yield self._rels[rel_id]

    def total_volume(self, node_id: str, *, direction: str = "out") -> float:
        """Sum of transfer amounts leaving/entering a node."""
        ledger = self.outgoing if direction == "out" else self.incoming
        return sum(rel.amount for rel in ledger(node_id))

    # ------------------------------------------------------------------
    # The one-off export
    # ------------------------------------------------------------------
    def export_network(
        self,
        *,
        tau_lo: float | None = None,
        tau_hi: float | None = None,
        predicate: Callable[[StoredRelationship], bool] | None = None,
        compact_timestamps: bool = True,
    ) -> tuple[TemporalFlowNetwork, TimestampCodec | None]:
        """Export the store as a temporal flow network (the paper's step).

        Args:
            tau_lo / tau_hi: optional inclusive time range (the case study
                exports "the transactions having the largest 1% of
                timestamps"; callers compute the cut and pass it here).
            predicate: optional relationship filter (e.g. by label).
            compact_timestamps: renumber event times into dense sequence
                numbers 1..n and return the codec (the paper's convention).

        Returns:
            ``(network, codec)``; ``codec`` is ``None`` when
            ``compact_timestamps`` is false (then raw times must already be
            integers).
        """
        builder = TemporalFlowNetworkBuilder()
        if tau_lo is None and tau_hi is None:
            selected: Iterator[StoredRelationship] = self.relationships()
        else:
            lo = tau_lo if tau_lo is not None else float("-inf")
            hi = tau_hi if tau_hi is not None else float("inf")
            selected = self.relationships_between(lo, hi)
        exported = 0
        for rel in selected:
            if predicate is not None and not predicate(rel):
                continue
            builder.edge(rel.u, rel.v, rel.tau, rel.amount)
            exported += 1
        if exported == 0:
            return (TemporalFlowNetwork(), TimestampCodec([]) if compact_timestamps else None)
        if compact_timestamps:
            network, codec = builder.build_compacted()
            return (network, codec)
        return (builder.build(), None)

    def timestamp_quantile(self, fraction: float) -> float:
        """The time below which ``fraction`` of relationships fall.

        Used to reproduce the case study's "largest 1% of timestamps"
        export: ``store.timestamp_quantile(0.99)`` is the cut.
        """
        if not self._by_tau:
            raise DatasetError("store has no relationships")
        if not 0.0 <= fraction <= 1.0:
            raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
        index = min(
            len(self._by_tau) - 1, int(fraction * len(self._by_tau))
        )
        return self._by_tau[index][0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply_relationship(self, record: StoredRelationship) -> None:
        self._rels[record.rel_id] = record
        bisect.insort(self._by_tau, (record.tau, record.rel_id))
        self._out[record.u].append(record.rel_id)
        self._in[record.v].append(record.rel_id)
        self._next_rel_id = max(self._next_rel_id, record.rel_id + 1)

    def _journal(self, record: dict) -> None:
        if self._log is not None:
            self._log.append(record)

    def _replay(self) -> None:
        assert self._log is not None
        for record in self._log.replay():
            op = record.get("op")
            if op == "node":
                self._nodes[record["id"]] = dict(record.get("props", {}))
            elif op == "rel":
                self._apply_relationship(
                    StoredRelationship(
                        rel_id=int(record["id"]),
                        u=record["u"],
                        v=record["v"],
                        tau=float(record["tau"]),
                        amount=float(record["amount"]),
                        properties=dict(record.get("props", {})),
                    )
                )
            else:
                raise DatasetError(f"unknown log op: {op!r}")

    def _canonical_records(self) -> list[dict]:
        records: list[dict] = [
            {"op": "node", "id": node_id, "props": props}
            for node_id, props in sorted(self._nodes.items())
        ]
        for rel in self.relationships():
            records.append(
                {
                    "op": "rel",
                    "id": rel.rel_id,
                    "u": rel.u,
                    "v": rel.v,
                    "tau": rel.tau,
                    "amount": rel.amount,
                    "props": dict(rel.properties),
                }
            )
        return records
