"""Figure-style reporting: series containers, CSV export, ASCII plots."""

from repro.report.series import FigureData, Series, summarise_ratios

__all__ = ["FigureData", "Series", "summarise_ratios"]
