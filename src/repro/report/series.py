"""Figure-style series: the data behind the paper's plots.

The benchmark harness regenerates the paper's figures as *series* —
ordered (x, y) points per labelled line.  This module gives those series a
proper type with CSV export (for external plotting) and quick ASCII
rendering (for terminal inspection), so EXPERIMENTS.md can cite both the
numbers and their shape.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence


@dataclass(slots=True)
class Series:
    """One labelled line of a figure."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.points.append((float(x), float(y)))

    def sorted_points(self) -> list[tuple[float, float]]:
        """The points in ascending-x order."""
        return sorted(self.points)

    @property
    def ys(self) -> list[float]:
        """The y values, in insertion order."""
        return [y for _, y in self.points]

    def speedup_over(self, other: "Series") -> list[tuple[float, float]]:
        """Pointwise x-aligned ratio ``other.y / self.y`` (self the faster)."""
        mine = dict(self.points)
        ratios = []
        for x, y in other.sorted_points():
            if x in mine and mine[x] > 0:
                ratios.append((x, y / mine[x]))
        return ratios


@dataclass(slots=True)
class FigureData:
    """A figure: several series over a shared x axis."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        """Create, register and return a new labelled series."""
        line = Series(label)
        self.series.append(line)
        return line

    def get(self, label: str) -> Series:
        """Look a series up by label (KeyError when absent)."""
        for line in self.series:
            if line.label == label:
                return line
        raise KeyError(label)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path | None = None) -> str:
        """Long-format CSV (series,x,y); optionally written to ``path``."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["series", self.x_label, self.y_label])
        for line in self.series:
            for x, y in line.sorted_points():
                writer.writerow([line.label, x, y])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_ascii(self, *, width: int = 60, height: int = 12) -> str:
        """A quick ASCII scatter of all series (log-y when spread is wide)."""
        points = [
            (x, y, index)
            for index, line in enumerate(self.series)
            for x, y in line.points
        ]
        if not points:
            return f"{self.title}\n(no data)"
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        y_positive = [y for y in ys if y > 0]
        log_scale = (
            bool(y_positive)
            and min(y_positive) > 0
            and max(y_positive) / min(y_positive) > 100
        )

        def y_transform(value: float) -> float:
            if log_scale and value > 0:
                return math.log10(value)
            return value

        tys = [y_transform(y) for y in ys]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(tys), max(tys)
        x_span = x_hi - x_lo or 1.0
        y_span = y_hi - y_lo or 1.0
        grid = [[" "] * width for _ in range(height)]
        markers = "ox+*#@%&"
        for x, y, index in points:
            column = int((x - x_lo) / x_span * (width - 1))
            row = int((y_transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][column] = markers[index % len(markers)]
        legend = "  ".join(
            f"{markers[i % len(markers)]}={line.label}"
            for i, line in enumerate(self.series)
        )
        scale_note = " (log y)" if log_scale else ""
        body = "\n".join("|" + "".join(row) for row in grid)
        return (
            f"{self.title}{scale_note}\n{body}\n+{'-' * width}\n"
            f"x: {self.x_label} [{x_lo:g}, {x_hi:g}]  "
            f"y: {self.y_label}\n{legend}"
        )


def summarise_ratios(ratios: Sequence[float]) -> dict[str, float]:
    """Min / geometric-mean / max of a ratio series (speedup summaries)."""
    positives = [r for r in ratios if r > 0]
    if not positives:
        return {"min": 0.0, "geomean": 0.0, "max": 0.0}
    product = 1.0
    for ratio in positives:
        product *= ratio
    return {
        "min": min(positives),
        "geomean": product ** (1.0 / len(positives)),
        "max": max(positives),
    }
