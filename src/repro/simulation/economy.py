"""An agent-based payment-economy simulator.

The paper motivates delta-BFlow with digital-payment fraud; realistic
*background* traffic is what makes detection non-trivial, and real
transaction logs cannot ship with this repository.  The simulator
generates that background with the structural features that matter for
flow queries:

* **account roles** — consumers, merchants, corporates — with asymmetric
  flow patterns (salaries fan out, purchases fan in, settlements sweep
  up), producing the degree and amount skew of Table 2's real datasets;
* **daily rhythm** — salary spikes on paydays, shopping peaking around
  configurable hours, settlement sweeps at day end — so the timeline has
  genuine temporal texture (benign short-interval activity the delta
  filter must not confuse with bursts);
* **determinism** — everything derives from one seed.

Fraud is deliberately *not* generated here; :mod:`repro.simulation.fraud`
injects labelled scenarios on top, keeping ground truth exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import DatasetError

#: One simulated event: (payer, payee, tick, amount).
PaymentEvent = tuple[str, str, int, float]


@dataclass(frozen=True, slots=True)
class EconomyConfig:
    """Knobs of the simulated economy (defaults: a small retail economy)."""

    num_consumers: int = 60
    num_merchants: int = 12
    num_corporates: int = 3
    days: int = 5
    ticks_per_day: int = 288  # 5-minute ticks
    payday_every_days: int = 5
    salary: float = 2_000.0
    purchase_mean: float = 35.0
    purchases_per_consumer_per_day: float = 1.6
    p2p_per_day: float = 10.0
    shopping_peaks: tuple[float, ...] = (0.5, 0.78)  # midday + evening
    peak_width: float = 0.08

    def __post_init__(self) -> None:
        if min(self.num_consumers, self.num_merchants, self.num_corporates) < 1:
            raise DatasetError("economy needs at least one account of each role")
        if self.days < 1 or self.ticks_per_day < 4:
            raise DatasetError("economy needs at least one day of >= 4 ticks")

    @property
    def horizon(self) -> int:
        """Total number of ticks simulated."""
        return self.days * self.ticks_per_day


@dataclass(slots=True)
class Accounts:
    """The account population, grouped by role."""

    consumers: list[str] = field(default_factory=list)
    merchants: list[str] = field(default_factory=list)
    corporates: list[str] = field(default_factory=list)

    def all(self) -> list[str]:
        """Every account id, all roles concatenated."""
        return [*self.consumers, *self.merchants, *self.corporates]


def build_accounts(config: EconomyConfig) -> Accounts:
    """Materialise the account population for a config."""
    return Accounts(
        consumers=[f"consumer_{i:03d}" for i in range(config.num_consumers)],
        merchants=[f"merchant_{i:02d}" for i in range(config.num_merchants)],
        corporates=[f"corp_{i}" for i in range(config.num_corporates)],
    )


def simulate_economy(
    config: EconomyConfig, *, seed: int
) -> tuple[list[PaymentEvent], Accounts]:
    """Generate the background payment stream, time-ordered.

    Returns the events plus the account population (so fraud injectors and
    detectors can sample realistic endpoints).
    """
    rng = random.Random(seed)
    accounts = build_accounts(config)
    events: list[PaymentEvent] = []
    for day in range(config.days):
        day_start = day * config.ticks_per_day + 1
        _salaries(config, rng, accounts, day, day_start, events)
        _purchases(config, rng, accounts, day_start, events)
        _p2p(config, rng, accounts, day_start, events)
        _settlements(config, rng, accounts, day_start, events)
    events.sort(key=lambda event: event[2])
    return events, accounts


# ----------------------------------------------------------------------
# Event generators (one per economic activity)
# ----------------------------------------------------------------------
def _salaries(config, rng, accounts, day, day_start, events) -> None:
    if (day + 1) % config.payday_every_days != 0:
        return
    morning = day_start + int(config.ticks_per_day * 0.35)
    for consumer in accounts.consumers:
        corporate = rng.choice(accounts.corporates)
        tick = morning + rng.randint(0, max(1, config.ticks_per_day // 20))
        amount = config.salary * rng.uniform(0.8, 1.25)
        events.append((corporate, consumer, tick, round(amount, 2)))


def _purchases(config, rng, accounts, day_start, events) -> None:
    expected = config.purchases_per_consumer_per_day * len(accounts.consumers)
    count = _poissonish(rng, expected)
    for _ in range(count):
        consumer = rng.choice(accounts.consumers)
        merchant = rng.choice(accounts.merchants)
        tick = day_start + _peaked_tick(config, rng)
        amount = max(1.0, rng.lognormvariate(0, 0.9) * config.purchase_mean)
        events.append((consumer, merchant, tick, round(amount, 2)))


def _p2p(config, rng, accounts, day_start, events) -> None:
    count = _poissonish(rng, config.p2p_per_day)
    for _ in range(count):
        payer, payee = rng.sample(accounts.consumers, 2)
        tick = day_start + rng.randint(0, config.ticks_per_day - 1)
        amount = max(1.0, rng.lognormvariate(0, 1.1) * 25.0)
        events.append((payer, payee, tick, round(amount, 2)))


def _settlements(config, rng, accounts, day_start, events) -> None:
    sweep = day_start + config.ticks_per_day - rng.randint(1, 4)
    for merchant in accounts.merchants:
        corporate = rng.choice(accounts.corporates)
        # Settle an approximation of the day's takings.
        amount = max(
            10.0,
            rng.uniform(0.5, 1.1)
            * config.purchase_mean
            * config.purchases_per_consumer_per_day
            * len(accounts.consumers)
            / len(accounts.merchants),
        )
        events.append((merchant, corporate, min(sweep, day_start + config.ticks_per_day - 1), round(amount, 2)))


def _peaked_tick(config, rng) -> int:
    """A tick drawn from the shopping-peak mixture (fraction of a day)."""
    if rng.random() < 0.75:
        peak = rng.choice(config.shopping_peaks)
        fraction = rng.gauss(peak, config.peak_width)
    else:
        fraction = rng.random()
    fraction = min(0.999, max(0.0, fraction))
    return int(fraction * config.ticks_per_day)


def _poissonish(rng: random.Random, expected: float) -> int:
    """A cheap Poisson approximation adequate for workload generation."""
    if expected <= 0:
        return 0
    # Sum of 4 uniforms ~ normal; clamp at zero.
    noise = sum(rng.random() for _ in range(4)) - 2.0
    return max(0, int(round(expected + noise * (expected ** 0.5))))
