"""Labelled fraud-scenario injectors.

Each injector appends events realising a classic laundering typology to a
payment stream and returns exact ground truth — the (source, sink) pair, the
time window, and the moved volume — which is what the detection tests and
benchmarks score against.

Typologies (all produce genuine temporal flows of the stated volume, so a
delta-BFlow query over the window must recover at least that value):

* **smurfing** (structuring): the volume is split into many sub-threshold
  slices, each routed through its own throwaway account;
* **layering**: the volume moves through several layers of intermediaries
  with splits and merges between layers;
* **round-tripping**: the *same* funds cycle between two colluding
  accounts to fake turnover — each direction of the cycle carries the full
  per-lap amount repeatedly inside a short window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.simulation.economy import PaymentEvent


@dataclass(frozen=True, slots=True)
class FraudGroundTruth:
    """What a scenario injected (the label the detector must recover)."""

    kind: str
    source: str
    sink: str
    window: tuple[int, int]
    volume: float
    accomplices: tuple[str, ...]

    @property
    def density(self) -> float:
        """Ground-truth density: volume over window length."""
        lo, hi = self.window
        return self.volume / max(1, hi - lo)


def inject_smurfing(
    events: list[PaymentEvent],
    source: str,
    sink: str,
    *,
    volume: float,
    num_smurfs: int,
    window: tuple[int, int],
    seed: int,
) -> FraudGroundTruth:
    """Structuring: split ``volume`` across ``num_smurfs`` mule accounts."""
    lo, hi = _check_window(window, minimum_length=2)
    if num_smurfs < 1:
        raise DatasetError("need at least one smurf")
    rng = random.Random(seed)
    slice_amount = volume / num_smurfs
    smurfs = tuple(f"smurf_{source}_{i:02d}" for i in range(num_smurfs))
    midpoint = (lo + hi) // 2
    for i, smurf in enumerate(smurfs):
        deposit_tick = rng.randint(lo, max(lo, midpoint - 1))
        payout_tick = rng.randint(min(hi, midpoint + 1), hi)
        if payout_tick <= deposit_tick:
            payout_tick = min(hi, deposit_tick + 1)
        events.append((source, smurf, deposit_tick, round(slice_amount, 2)))
        events.append((smurf, sink, payout_tick, round(slice_amount, 2)))
    events.sort(key=lambda event: event[2])
    return FraudGroundTruth(
        kind="smurfing",
        source=source,
        sink=sink,
        window=window,
        volume=round(slice_amount, 2) * num_smurfs,
        accomplices=smurfs,
    )


def inject_layering(
    events: list[PaymentEvent],
    source: str,
    sink: str,
    *,
    volume: float,
    depth: int,
    width: int,
    window: tuple[int, int],
    seed: int,
) -> FraudGroundTruth:
    """Layering: ``depth`` layers of ``width`` intermediaries with shuffles.

    Every layer fully forwards what it received, with the split across the
    next layer re-randomised — the classic audit-trail obfuscation.
    """
    lo, hi = _check_window(window, minimum_length=depth + 1)
    if depth < 1 or width < 1:
        raise DatasetError("layering needs depth >= 1 and width >= 1")
    rng = random.Random(seed)
    layers = [
        tuple(f"layer_{source}_{level}_{i}" for i in range(width))
        for level in range(depth)
    ]
    ticks = sorted(rng.sample(range(lo, hi + 1), depth + 1))

    def random_split(total: float, parts: int) -> list[float]:
        cuts = sorted(rng.uniform(0.2, 0.8) for _ in range(parts - 1))
        shares = []
        previous = 0.0
        for cut in cuts + [1.0]:
            shares.append(total * (cut - previous))
            previous = cut
        return shares

    # Source -> first layer.
    holdings = {}
    for account, share in zip(layers[0], random_split(volume, width)):
        events.append((source, account, ticks[0], round(share, 2)))
        holdings[account] = round(share, 2)
    # Layer -> layer.
    for level in range(1, depth):
        new_holdings: dict[str, float] = {a: 0.0 for a in layers[level]}
        for account, amount in holdings.items():
            for receiver, share in zip(
                layers[level], random_split(amount, width)
            ):
                share = round(share, 2)
                if share <= 0:
                    continue
                events.append((account, receiver, ticks[level], share))
                new_holdings[receiver] += share
        holdings = {a: v for a, v in new_holdings.items() if v > 0}
    # Last layer -> sink.
    for account, amount in holdings.items():
        events.append((account, sink, ticks[depth], round(amount, 2)))
    events.sort(key=lambda event: event[2])
    moved = sum(v for v in holdings.values())
    accomplices = tuple(a for layer in layers for a in layer)
    return FraudGroundTruth(
        kind="layering",
        source=source,
        sink=sink,
        window=window,
        volume=round(moved, 2),
        accomplices=accomplices,
    )


def inject_round_tripping(
    events: list[PaymentEvent],
    a: str,
    b: str,
    *,
    lap_amount: float,
    laps: int,
    window: tuple[int, int],
    seed: int,
) -> FraudGroundTruth:
    """Round-tripping: the same funds cycle ``a -> b -> a`` repeatedly.

    Each direction carries ``lap_amount * laps`` in total, so a delta-BFlow
    query for either direction sees a dense flow even though no net value
    moved — exactly the fake-turnover pattern.
    """
    lo, hi = _check_window(window, minimum_length=2 * laps)
    if laps < 1:
        raise DatasetError("need at least one lap")
    rng = random.Random(seed)
    ticks = sorted(rng.sample(range(lo, hi + 1), 2 * laps))
    for lap in range(laps):
        events.append((a, b, ticks[2 * lap], round(lap_amount, 2)))
        events.append((b, a, ticks[2 * lap + 1], round(lap_amount, 2)))
    events.sort(key=lambda event: event[2])
    return FraudGroundTruth(
        kind="round-tripping",
        source=a,
        sink=b,
        window=window,
        volume=round(lap_amount, 2) * laps,
        accomplices=(),
    )


def _check_window(window: tuple[int, int], *, minimum_length: int) -> tuple[int, int]:
    lo, hi = window
    if hi - lo < minimum_length:
        raise DatasetError(
            f"window {window} too short (needs length >= {minimum_length})"
        )
    return lo, hi
