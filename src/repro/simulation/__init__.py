"""Agent-based payment-economy simulation with labelled fraud injection.

The substrate behind realistic fraud-detection demos: a background economy
(salaries, purchases, settlements, P2P) plus classic laundering typologies
(smurfing, layering, round-tripping) with exact ground truth.
"""

from repro.simulation.economy import (
    Accounts,
    EconomyConfig,
    PaymentEvent,
    build_accounts,
    simulate_economy,
)
from repro.simulation.fraud import (
    FraudGroundTruth,
    inject_layering,
    inject_round_tripping,
    inject_smurfing,
)
from repro.simulation.scenario import SimulatedScenario, simulate_scenario

__all__ = [
    "EconomyConfig",
    "Accounts",
    "PaymentEvent",
    "build_accounts",
    "simulate_economy",
    "FraudGroundTruth",
    "inject_smurfing",
    "inject_layering",
    "inject_round_tripping",
    "SimulatedScenario",
    "simulate_scenario",
]
