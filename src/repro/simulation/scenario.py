"""Scenario assembly: economy + injected frauds -> network + ground truth."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulation.economy import (
    Accounts,
    EconomyConfig,
    PaymentEvent,
    simulate_economy,
)
from repro.simulation.fraud import (
    FraudGroundTruth,
    inject_layering,
    inject_round_tripping,
    inject_smurfing,
)
from repro.temporal.network import TemporalFlowNetwork


@dataclass(slots=True)
class SimulatedScenario:
    """A complete simulation: the network plus exact labels."""

    network: TemporalFlowNetwork
    events: list[PaymentEvent]
    accounts: Accounts
    frauds: list[FraudGroundTruth] = field(default_factory=list)

    @property
    def fraud_pairs(self) -> list[tuple[str, str]]:
        """The injected (source, sink) pairs, in injection order."""
        return [(fraud.source, fraud.sink) for fraud in self.frauds]

    def benign_pairs(self, count: int, *, seed: int = 0) -> list[tuple[str, str]]:
        """Random consumer->merchant pairs not involved in any fraud."""
        rng = random.Random(seed)
        tainted = {
            node
            for fraud in self.frauds
            for node in (fraud.source, fraud.sink, *fraud.accomplices)
        }
        clean_consumers = [c for c in self.accounts.consumers if c not in tainted]
        clean_merchants = [m for m in self.accounts.merchants if m not in tainted]
        pairs = []
        while len(pairs) < count and clean_consumers and clean_merchants:
            pair = (rng.choice(clean_consumers), rng.choice(clean_merchants))
            if pair not in pairs:
                pairs.append(pair)
        return pairs


def simulate_scenario(
    *,
    config: EconomyConfig | None = None,
    seed: int = 0,
    with_smurfing: bool = True,
    with_layering: bool = True,
    with_round_tripping: bool = False,
) -> SimulatedScenario:
    """One-call scenario: a background economy with labelled frauds on top.

    Fraud endpoints are fresh accounts (mirroring shell companies) so the
    ground truth is unambiguous; windows are placed in the final third of
    the horizon, where the case study focuses ("the most recent periods").
    """
    config = config or EconomyConfig()
    events, accounts = simulate_economy(config, seed=seed)
    frauds: list[FraudGroundTruth] = []
    horizon = config.horizon
    late = int(horizon * 0.7)

    if with_smurfing:
        frauds.append(
            inject_smurfing(
                events,
                "shell_alpha",
                "shell_beta",
                volume=60_000.0,
                num_smurfs=8,
                window=(late, late + max(6, horizon // 50)),
                seed=seed + 1,
            )
        )
    if with_layering:
        frauds.append(
            inject_layering(
                events,
                "shell_gamma",
                "shell_delta",
                volume=45_000.0,
                depth=3,
                width=3,
                window=(late + horizon // 20, late + horizon // 20 + max(8, horizon // 40)),
                seed=seed + 2,
            )
        )
    if with_round_tripping:
        frauds.append(
            inject_round_tripping(
                events,
                "shell_eps",
                "shell_zeta",
                lap_amount=9_000.0,
                laps=4,
                window=(late + horizon // 10, late + horizon // 10 + max(10, horizon // 30)),
                seed=seed + 3,
            )
        )

    network = TemporalFlowNetwork.from_tuples(events)
    return SimulatedScenario(
        network=network, events=events, accounts=accounts, frauds=frauds
    )
